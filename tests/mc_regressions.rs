//! Model-checker regressions: committed counterexample fixtures replay
//! deterministically as `FaultPlan`s against the plain simulator, green
//! certificates reproduce byte-for-byte, and the checker's fault-free
//! exploration cross-validates against an ordinary simulation run.
//!
//! The red fixture is the checker's own find: under a healing bound of
//! 10 s, crashing node 3 of `sparse7` — the *only* head candidate of its
//! deliberately under-dense east cell — leaves the orphaned associates
//! uncovered long past the bound, because no candidate can take over and
//! they must time out, fall back to bootup, and be absorbed by the
//! stretched central cell. The coverage hole becomes *visible* ~14 s
//! after the crash (until then the orphans' stale state still reads as
//! covered) and clears at ~19 s. Replaying the committed plan must
//! reproduce exactly that window: violated at +17 s (where the checker's
//! horizon caught it), healed by +25 s (the default `heal_window`).

use gs3::core::harness::Network;
use gs3::core::{FaultKind, FaultPlan};
use gs3::mc::{Budgets, McStrategy, ModelChecker, Scenario};
use gs3::sim::SimDuration;

const CE_SPARSE7: &str = include_str!("fixtures/mc/ce-sparse7-healing_converges-0.json");
const PLAN_SPARSE7: &str = include_str!("fixtures/mc/ce-sparse7-healing_converges-0.plan.json");
const CERT_PAIR5: &str = include_str!("fixtures/mc/cert-pair5.json");
const CERT_SPARSE7: &str = include_str!("fixtures/mc/cert-sparse7.json");

/// Apply a model-checker plan to a converged scenario network: fault
/// offsets are relative to the moment replay starts, exactly as
/// `choices_to_plan` recorded them relative to the converged root.
fn replay_plan(net: &mut Network, plan: &FaultPlan) {
    let start = net.now();
    for ev in plan.events() {
        let target = start + ev.after;
        net.run_for(target.saturating_since(net.now()));
        match &ev.kind {
            FaultKind::CrashNode { id } => net.kill(*id),
            FaultKind::SetScript { ops } => {
                net.engine_mut().faults_mut().install_script(ops.iter().cloned());
            }
            other => panic!("unexpected fault kind in an mc fixture: {}", other.name()),
        }
    }
}

#[test]
fn committed_counterexample_replays_as_a_failing_fault_plan() {
    let plan = FaultPlan::from_json(PLAN_SPARSE7).expect("committed plan fixture parses");
    assert!(!plan.is_empty(), "the fixture must schedule at least one fault");

    let mut net = Scenario::by_name("sparse7").unwrap().build();
    assert!(net.check_invariants().is_empty(), "root state is legal");
    replay_plan(&mut net, &plan);

    // The violation the checker minimized to: 17 s after the crash the
    // orphaned east-cell associates are visibly uncovered — far past the
    // 10 s healing bound the red run was checked under.
    net.run_for(SimDuration::from_secs(17));
    let at_bound = net.check_invariants();
    assert!(
        !at_bound.is_empty(),
        "replaying the committed plan must reproduce the violation 17 s after the crash"
    );
    assert!(
        at_bound.iter().any(|v| v.to_string().contains("Coverage")),
        "the reproduced violation is the recorded coverage hole, got: {at_bound:?}"
    );

    // ...and it is a slow-healing path, not divergence: the default 25 s
    // window (absorption into the stretched central cell) clears it.
    net.run_for(SimDuration::from_secs(8));
    assert!(
        net.check_invariants().is_empty(),
        "the sparse7 coverage hole must heal by +25 s via central-cell absorption"
    );
}

#[test]
fn counterexample_fixture_embeds_its_plan_verbatim() {
    // `gs3 chaos --plan` accepts either file; they must stay in sync.
    let embedded = format!("\"plan\":{}", PLAN_SPARSE7.trim());
    assert!(
        CE_SPARSE7.contains(&embedded),
        "the counterexample fixture must embed the standalone plan fixture verbatim"
    );
    assert!(CE_SPARSE7.contains("\"property\":\"healing_converges\""));
    assert!(gs3::core::json::parse(CE_SPARSE7).is_ok());
}

#[test]
fn green_certificates_reproduce_byte_for_byte() {
    // The committed certificates are full default-budget exhaustive runs;
    // regenerating them must yield identical bytes (determinism is part
    // of the report contract, so CI can diff two runs directly).
    for (scenario, cert) in [("pair5", CERT_PAIR5), ("sparse7", CERT_SPARSE7)] {
        let report = ModelChecker {
            scenario: Scenario::by_name(scenario).unwrap(),
            strategy: McStrategy::Bfs,
            budgets: Budgets::default(),
        }
        .run();
        assert!(report.exhaustive, "{scenario} must be exhaustive under default budgets");
        assert!(!report.has_violations(), "{scenario} is green under default budgets");
        assert_eq!(
            report.to_json(),
            cert.trim(),
            "{scenario} certificate drifted — regenerate tests/fixtures/mc/cert-{scenario}.json \
             and explain the state-space change in the PR"
        );
    }
}

#[test]
fn fault_free_bfs_cross_validates_against_plain_simulation() {
    // With a zero fault budget the checker explores exactly one path —
    // the seed-deterministic schedule — so its single terminal state must
    // be structurally identical to just running the simulator.
    let horizon = SimDuration::from_secs(12);
    let budgets = Budgets {
        max_fates: 0,
        max_crashes: 0,
        max_path_faults: 0,
        horizon,
        ..Budgets::default()
    };
    let report = ModelChecker {
        scenario: Scenario::by_name("pair5").unwrap(),
        strategy: McStrategy::Bfs,
        budgets,
    }
    .run();
    assert!(report.exhaustive);
    assert_eq!(report.terminal_signatures.len(), 1, "deterministic system, one terminal");

    let mut plain = Scenario::by_name("pair5").unwrap().build();
    plain.run_for(horizon);
    let sig = plain.structural_signature();
    assert_eq!(
        report.terminal_signatures.iter().next().copied(),
        Some(sig),
        "the checker's terminal structure must equal the plain simulator's"
    );
}

#[test]
fn fingerprint_is_stable_and_discriminating() {
    // Same scenario, two independent builds: identical canonical state.
    let a = Scenario::by_name("pair5").unwrap().build();
    let b = Scenario::by_name("pair5").unwrap().build();
    assert_eq!(a.fingerprint(), b.fingerprint(), "rebuilds must not perturb the fingerprint");

    // Different scenarios must not collide (no false dedup across roots).
    let c = Scenario::by_name("rel7").unwrap().build();
    assert_ne!(a.fingerprint(), c.fingerprint(), "distinct fields, distinct fingerprints");

    // Advancing the schedule changes the canonical state.
    let mut d = Scenario::by_name("pair5").unwrap().build();
    d.run_for(SimDuration::from_secs(2));
    assert_ne!(a.fingerprint(), d.fingerprint(), "stepping must move the fingerprint");
}
