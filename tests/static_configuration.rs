//! End-to-end tests of GS³-S: the one-shot diffusing computation on
//! static networks (paper Section 3, Theorems 1–4).

use gs3::core::harness::NetworkBuilder;
use gs3::core::invariants::{self, Strictness};
use gs3::core::{Mode, RoleView};
use gs3::geometry::Point;
use gs3::sim::SimTime;

fn static_builder(seed: u64) -> NetworkBuilder {
    NetworkBuilder::new()
        .mode(Mode::Static)
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(200.0)
        .expected_nodes(600)
        .seed(seed)
}

const DEADLINE: SimTime = SimTime::from_micros(600_000_000);

#[test]
fn diffusion_terminates_and_invariants_hold() {
    for seed in [1, 2, 3] {
        let mut net = static_builder(seed).build().unwrap();
        let quiesced = net.engine_mut().run_until_quiescent(DEADLINE);
        assert!(quiesced.is_some(), "seed {seed}: static diffusion must terminate");

        let snap = net.snapshot();
        let violations = invariants::check_all(&snap, Strictness::Static);
        assert!(
            violations.is_empty(),
            "seed {seed}: {} violations, first: {}",
            violations.len(),
            violations[0]
        );
        assert!(snap.heads().count() >= 7, "seed {seed}: central cell + first band");
        assert_eq!(snap.bootup_count(), 0, "seed {seed}: full coverage");
    }
}

#[test]
fn configuration_is_deterministic_per_seed() {
    let run = || {
        let mut net = static_builder(42).build().unwrap();
        net.engine_mut().run_until_quiescent(DEADLINE).unwrap();
        net.snapshot().structural_signature()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let mut net = static_builder(seed).build().unwrap();
        net.engine_mut().run_until_quiescent(DEADLINE).unwrap();
        net.snapshot().structural_signature()
    };
    assert_ne!(run(10), run(11));
}

#[test]
fn heads_sit_within_tolerance_of_their_ideal_locations() {
    let mut net = static_builder(5).build().unwrap();
    net.engine_mut().run_until_quiescent(DEADLINE).unwrap();
    let snap = net.snapshot();
    for h in snap.heads() {
        let RoleView::Head { il, .. } = &h.role else { unreachable!() };
        assert!(
            h.pos.distance(*il) <= snap.r_t + 1e-6,
            "head {} strayed {:.1} from IL",
            h.id,
            h.pos.distance(*il)
        );
    }
}

#[test]
fn children_bounded_by_three_for_small_heads() {
    let mut net = static_builder(6).build().unwrap();
    net.engine_mut().run_until_quiescent(DEADLINE).unwrap();
    let snap = net.snapshot();
    for h in snap.heads() {
        let RoleView::Head { children, .. } = &h.role else { unreachable!() };
        let cap = if h.is_big { 6 } else { 3 };
        assert!(children.len() <= cap, "head {} has {} children", h.id, children.len());
    }
}

#[test]
fn deployment_gap_is_absorbed_by_neighbors() {
    // Clear an R_t-gap exactly over the +x first-band ideal location
    // (distance √3·R from the big node). That cell cannot form; its area's
    // nodes must join neighboring cells and coverage must still hold.
    let spacing = gs3::geometry::head_spacing(80.0);
    let gap_center = Point::new(spacing, 0.0);
    let mut net = static_builder(7).with_gap(gap_center, 30.0).build().unwrap();
    net.engine_mut().run_until_quiescent(DEADLINE).unwrap();
    let snap = net.snapshot();
    assert_eq!(snap.bootup_count(), 0, "gap-adjacent nodes must be absorbed");
    // No head within the gap itself.
    for h in snap.heads() {
        assert!(h.pos.distance(gap_center) > 25.0, "no head can exist inside the gap");
    }
    // Coverage invariant holds even with the gap (boundary-cell slack).
    let violations = invariants::check_coverage(&snap);
    assert!(violations.is_empty(), "first: {:?}", violations.first());
}

#[test]
fn disconnected_island_stays_unconfigured() {
    // Nodes beyond radio reach of the big node's component must remain in
    // bootup (requirement c: in a cell iff connected to the big node).
    let mut net = static_builder(8).build().unwrap();
    let island = net.join_node(Point::new(5000.0, 0.0));
    let _ = net.join_node(Point::new(5030.0, 0.0));
    net.engine_mut().run_until_quiescent(DEADLINE).unwrap();
    let snap = net.snapshot();
    assert!(
        matches!(snap.node(island).unwrap().role, RoleView::Bootup),
        "island node must stay unconfigured in static mode"
    );
}

#[test]
fn head_graph_hops_increase_with_distance() {
    let mut net = static_builder(9).build().unwrap();
    net.engine_mut().run_until_quiescent(DEADLINE).unwrap();
    let snap = net.snapshot();
    let big_pos = snap.node(net.big_id()).unwrap().pos;
    let spacing = gs3::geometry::head_spacing(80.0);
    for h in snap.heads() {
        let RoleView::Head { hops, .. } = &h.role else { unreachable!() };
        let lattice_distance = (big_pos.distance(h.pos) / spacing).round() as u32;
        assert_eq!(*hops, lattice_distance, "head {} at {:.0}m", h.id, big_pos.distance(h.pos));
    }
}
