//! Chaos-harness integration: bit-reproducibility of fault-injected runs,
//! the combined-adversity acceptance scenario, and convergence under
//! honest unicast loss.

use gs3::core::harness::NetworkBuilder;
use gs3::core::invariants::{self, Strictness};
use gs3::core::{ChaosOptions, Corruption, FaultKind, FaultPlan};
use gs3::geometry::{Point, Vec2};
use gs3::sim::faults::{BurstLoss, FaultConfig};
use gs3::sim::SimDuration;

fn builder(seed: u64) -> NetworkBuilder {
    NetworkBuilder::new()
        .ideal_radius(40.0)
        .radius_tolerance(14.0)
        .area_radius(200.0)
        .expected_nodes(400)
        .seed(seed)
}

/// A plan exercising every fault axis at once.
fn combined_plan() -> FaultPlan {
    let channel = FaultConfig {
        burst: BurstLoss::bursty(0.02, 4.0),
        unicast_loss: 0.02,
        ..FaultConfig::none()
    };
    FaultPlan::new()
        .at(SimDuration::ZERO, FaultKind::SetChannel { config: channel })
        .at(
            SimDuration::from_secs(5),
            FaultKind::StartJam { label: 0, center: Point::new(100.0, 0.0), radius: 70.0 },
        )
        .at(SimDuration::from_secs(10), FaultKind::CrashRandom { count: 10 })
        .at(
            SimDuration::from_secs(20),
            FaultKind::CorruptState {
                near: Point::new(-60.0, 50.0),
                corruption: Corruption::Il { offset: Vec2::new(150.0, 90.0) },
            },
        )
        .at(SimDuration::from_secs(45), FaultKind::StopJam { label: 0 })
}

fn chaos_run(seed: u64) -> (gs3::core::ChaosReport, u64) {
    let mut net = builder(seed).build().unwrap();
    net.run_to_fixpoint().unwrap();
    let report = net.run_chaos(&combined_plan());
    let signature = net.snapshot().structural_signature();
    (report, signature)
}

#[test]
fn same_seed_chaos_runs_are_bit_identical() {
    let (a, sig_a) = chaos_run(11);
    let (b, sig_b) = chaos_run(11);
    assert_eq!(a.digest, b.digest, "same seed must replay the same delivery sequence");
    assert_eq!(sig_a, sig_b, "same seed must land in the same final structure");
    assert_eq!(a.to_json(), b.to_json(), "the whole report must be reproducible");
}

#[test]
fn different_seed_chaos_runs_diverge() {
    let (a, _) = chaos_run(11);
    let (b, _) = chaos_run(12);
    assert_ne!(a.digest, b.digest, "different seeds must explore different schedules");
}

/// The acceptance scenario from the issue: burst loss (mean ≥ 3), one jam
/// disk, a 10-node crash wave, and one `CorruptState` — the structure must
/// come back to zero `Dynamic` violations, with a healing latency recorded
/// for every fault.
#[test]
fn combined_adversity_heals_clean() {
    let (report, _) = chaos_run(11);
    assert!(
        report.healed(),
        "combined chaos must heal: final={} unhealed={:?}",
        report.final_violations,
        report
            .outcomes
            .iter()
            .filter(|o| o.heal_latency.is_none())
            .map(|o| o.kind)
            .collect::<Vec<_>>()
    );
    assert_eq!(report.outcomes.len(), 5);
    for o in &report.outcomes {
        assert!(o.heal_latency.is_some(), "{} has no healing latency", o.kind);
    }
    // The channel really was adversarial.
    assert!(report.dropped_by_burst > 0, "burst loss never fired");
    assert!(report.dropped_by_jam > 0, "the jam disk never dropped anything");
    assert!(report.dropped_unicast > 0, "unicast loss never fired");
}

/// Oracle polling is observation only: running the same plan with a
/// different poll period must not change the delivery schedule.
#[test]
fn oracle_polling_does_not_perturb_the_run() {
    // Two runs that differ only in the oracle poll period, both advanced to
    // the same simulated horizon afterwards: the delivery schedules must be
    // bit-identical, because polling snapshots state without consuming RNG.
    let horizon = SimDuration::from_secs(600);
    let run = |poll_ms: u64| {
        let mut net = builder(11).build().unwrap();
        net.run_to_fixpoint().unwrap();
        let opts = ChaosOptions {
            poll: SimDuration::from_millis(poll_ms),
            settle: SimDuration::from_secs(300),
        };
        let rep = net.run_chaos_with(&combined_plan(), opts, |snap| {
            invariants::check_all(snap, Strictness::Dynamic).len()
        });
        let elapsed = net.now().since(gs3::sim::SimTime::ZERO);
        net.run_for(horizon - elapsed);
        (rep, net.engine().trace().digest())
    };
    let (rep_coarse, digest_coarse) = run(2000);
    let (rep_fine, digest_fine) = run(700);
    assert!(rep_fine.polls > rep_coarse.polls, "the finer poll clock must poll more often");
    assert_eq!(digest_coarse, digest_fine, "polling must never consume simulation RNG");
}

/// Satellite regression: 5% honest unicast loss (acks, org replies, and
/// handshakes all at risk) must still converge to a clean static structure.
#[test]
fn five_percent_unicast_loss_still_converges() {
    let mut net = builder(51).unicast_loss(0.05).build().unwrap();
    net.run_for(SimDuration::from_secs(240));
    let snap = net.snapshot();
    assert!(snap.heads().count() >= 7, "only {} heads formed", snap.heads().count());
    let violations = invariants::check_all(&snap, Strictness::Static);
    assert!(
        violations.is_empty(),
        "unicast loss left {} violations: {}",
        violations.len(),
        violations.first().map(ToString::to_string).unwrap_or_default()
    );
    assert!(
        net.engine().trace().dropped_unicast() > 0,
        "the unicast-loss knob never fired"
    );
}
