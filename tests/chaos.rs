//! Chaos-harness integration: bit-reproducibility of fault-injected runs,
//! the combined-adversity acceptance scenario, and convergence under
//! honest unicast loss.

use gs3::core::harness::NetworkBuilder;
use gs3::core::invariants::{self, Strictness};
use gs3::core::state::Role;
use gs3::core::{ChaosOptions, Corruption, FaultKind, FaultPlan, ReliabilityConfig};
use gs3::geometry::{Point, Vec2};
use gs3::sim::faults::{BurstLoss, FaultConfig};
use gs3::sim::{NodeId, SimDuration};

fn builder(seed: u64) -> NetworkBuilder {
    NetworkBuilder::new()
        .ideal_radius(40.0)
        .radius_tolerance(14.0)
        .area_radius(200.0)
        .expected_nodes(400)
        .seed(seed)
}

/// A plan exercising every fault axis at once.
fn combined_plan() -> FaultPlan {
    let channel = FaultConfig {
        burst: BurstLoss::bursty(0.02, 4.0),
        unicast_loss: 0.02,
        ..FaultConfig::none()
    };
    FaultPlan::new()
        .at(SimDuration::ZERO, FaultKind::SetChannel { config: channel })
        .at(
            SimDuration::from_secs(5),
            FaultKind::StartJam { label: 0, center: Point::new(100.0, 0.0), radius: 70.0 },
        )
        .at(SimDuration::from_secs(10), FaultKind::CrashRandom { count: 10 })
        .at(
            SimDuration::from_secs(20),
            FaultKind::CorruptState {
                near: Point::new(-60.0, 50.0),
                corruption: Corruption::Il { offset: Vec2::new(150.0, 90.0) },
            },
        )
        .at(SimDuration::from_secs(45), FaultKind::StopJam { label: 0 })
}

fn chaos_run(seed: u64) -> (gs3::core::ChaosReport, u64) {
    let mut net = builder(seed).build().unwrap();
    net.run_to_fixpoint().unwrap();
    let report = net.run_chaos(&combined_plan());
    let signature = net.snapshot().structural_signature();
    (report, signature)
}

#[test]
fn same_seed_chaos_runs_are_bit_identical() {
    let (a, sig_a) = chaos_run(11);
    let (b, sig_b) = chaos_run(11);
    assert_eq!(a.digest, b.digest, "same seed must replay the same delivery sequence");
    assert_eq!(sig_a, sig_b, "same seed must land in the same final structure");
    assert_eq!(a.to_json(), b.to_json(), "the whole report must be reproducible");
}

#[test]
fn different_seed_chaos_runs_diverge() {
    let (a, _) = chaos_run(11);
    let (b, _) = chaos_run(12);
    assert_ne!(a.digest, b.digest, "different seeds must explore different schedules");
}

/// The acceptance scenario from the issue: burst loss (mean ≥ 3), one jam
/// disk, a 10-node crash wave, and one `CorruptState` — the structure must
/// come back to zero `Dynamic` violations, with a healing latency recorded
/// for every fault.
#[test]
fn combined_adversity_heals_clean() {
    let (report, _) = chaos_run(11);
    assert!(
        report.healed(),
        "combined chaos must heal: final={} unhealed={:?}",
        report.final_violations,
        report
            .outcomes
            .iter()
            .filter(|o| o.heal_latency.is_none())
            .map(|o| o.kind)
            .collect::<Vec<_>>()
    );
    assert_eq!(report.outcomes.len(), 5);
    for o in &report.outcomes {
        assert!(o.heal_latency.is_some(), "{} has no healing latency", o.kind);
    }
    // The channel really was adversarial.
    assert!(report.dropped_by_burst > 0, "burst loss never fired");
    assert!(report.dropped_by_jam > 0, "the jam disk never dropped anything");
    assert!(report.dropped_unicast > 0, "unicast loss never fired");
}

/// Oracle polling is observation only: running the same plan with a
/// different poll period must not change the delivery schedule.
#[test]
fn oracle_polling_does_not_perturb_the_run() {
    // Two runs that differ only in the oracle poll period, both advanced to
    // the same simulated horizon afterwards: the delivery schedules must be
    // bit-identical, because polling snapshots state without consuming RNG.
    let horizon = SimDuration::from_secs(600);
    let run = |poll_ms: u64| {
        let mut net = builder(11).build().unwrap();
        net.run_to_fixpoint().unwrap();
        let opts = ChaosOptions {
            poll: SimDuration::from_millis(poll_ms),
            settle: SimDuration::from_secs(300),
        };
        let rep = net.run_chaos_with(&combined_plan(), opts, |snap| {
            invariants::check_all(snap, Strictness::Dynamic).len()
        });
        let elapsed = net.now().since(gs3::sim::SimTime::ZERO);
        net.run_for(horizon - elapsed);
        (rep, net.engine().trace().digest())
    };
    let (rep_coarse, digest_coarse) = run(2000);
    let (rep_fine, digest_fine) = run(700);
    assert!(rep_fine.polls > rep_coarse.polls, "the finer poll clock must poll more often");
    assert_eq!(digest_coarse, digest_fine, "polling must never consume simulation RNG");
}

/// Tentpole acceptance: the flight recorder is pure observation — a full
/// chaos run with the ring capturing every event replays the exact
/// delivery schedule of a counters-only run — and the episode reducer
/// reports per-perturbation healing latency, message cost, and spatial
/// radius (the empirical face of the paper's locality theorems 8–13).
#[test]
fn flight_recorder_is_digest_inert_and_episodes_reduce() {
    let run = |record: bool| {
        let mut b = builder(11);
        if record {
            b = b.flight_recorder(200_000);
        }
        let mut net = b.build().unwrap();
        net.run_to_fixpoint().unwrap();
        let rep = net.run_chaos(&combined_plan());
        let ring_len = net.engine().telemetry().recorder.len();
        (rep, ring_len)
    };
    let (off_rep, off_ring) = run(false);
    let (on_rep, on_ring) = run(true);
    assert_eq!(off_ring, 0, "counters-only mode must store nothing");
    assert!(on_ring > 0, "full mode must capture events");
    assert_eq!(off_rep.digest, on_rep.digest, "recording shifted the delivery stream");
    assert_eq!(off_rep.to_json(), on_rep.to_json(), "the report must not depend on recording");

    // The episode reducer: the two structural faults in the combined plan
    // (crash wave, state corruption) each opened an episode; the
    // channel-shaping faults did not.
    let episodic: Vec<_> = on_rep.outcomes.iter().filter(|o| o.episode.is_some()).collect();
    assert_eq!(episodic.len(), 2);
    assert!(on_rep
        .outcomes
        .iter()
        .filter(|o| matches!(o.kind, "start_jam" | "stop_jam" | "set_channel"))
        .all(|o| o.episode.is_none()));
    for o in &episodic {
        let ep = on_rep
            .episodes
            .iter()
            .find(|e| e.id == o.episode.unwrap())
            .expect("outcome episode must be in the report");
        assert_eq!(ep.label, o.kind);
        assert!(ep.heal_latency_us().is_some(), "{} episode never closed", o.kind);
        assert!(ep.messages > 0, "{} episode has no message cost", o.kind);
        assert!(ep.tainted > 0, "{} episode tainted nobody", o.kind);
        assert!(
            ep.radius_m.is_finite() && ep.radius_m < 400.0,
            "{} episode radius {} is not local",
            o.kind,
            ep.radius_m
        );
    }
}

/// The reliability layer's RNG-inertness contract: with the layer
/// disabled (the default), no envelopes flow, no reliability counters
/// move, and the delivery schedule is bit-identical to a build that never
/// routes through the layer's code paths — the explicit `disabled()`
/// config and the default must replay the same digest, delivery for
/// delivery. With the layer enabled the wire traffic legitimately
/// changes.
#[test]
fn disabled_reliability_layer_is_rng_inert() {
    let run = |rc: Option<ReliabilityConfig>| {
        let mut b = builder(11);
        if let Some(rc) = rc {
            b = b.reliability(rc);
        }
        let mut net = b.build().unwrap();
        net.run_to_fixpoint().unwrap();
        let rep = net.run_chaos(&combined_plan());
        let sent = net.engine().trace().proto("reliable_sent");
        (rep, sent)
    };
    let (default_rep, default_sent) = run(None);
    let (off_rep, off_sent) = run(Some(ReliabilityConfig::disabled()));
    assert_eq!(default_sent, 0, "a disabled layer must never wrap a message");
    assert_eq!(off_sent, 0);
    assert_eq!(off_rep.reliability, Default::default(), "disabled layer moved a counter");
    assert_eq!(default_rep.digest, off_rep.digest, "disabled layer must not shift the RNG stream");
    assert_eq!(default_rep.to_json(), off_rep.to_json());

    let (on_rep, on_sent) = run(Some(ReliabilityConfig::on()));
    assert!(on_sent > 0, "the enabled layer never wrapped a control message");
    assert_ne!(on_rep.digest, off_rep.digest, "the enabled layer must change the wire traffic");
    assert!(on_rep.healed(), "chaos with reliability on must still heal: {}", on_rep.to_json());
}

/// Quarantine-mode graceful degradation under a 100%-loss partition: a
/// head cut off from every other head keeps serving its cell (intra-cell
/// invariants stay green), buffers upward aggregates behind a bounded
/// buffer, and drains the buffer once the partition heals and it
/// re-attaches.
#[test]
fn quarantined_head_serves_its_cell_and_drains_after_heal() {
    let mut rc = ReliabilityConfig::on();
    rc.quarantine_buffer = 4; // small cap so boundedness is observable
    let mut net = builder(31)
        .traffic(SimDuration::from_secs(5))
        .reliability(rc)
        .build()
        .unwrap();
    net.run_to_fixpoint().unwrap();

    // The victim: the serving head farthest from the big node — far
    // enough that no surviving head is within coordination range once the
    // field between them is dead.
    let snap = net.snapshot();
    let big = snap.big;
    let big_pos = snap.nodes[big.raw() as usize].pos;
    let (victim, victim_pos) = snap
        .heads()
        .filter(|h| !h.is_big && h.alive)
        .map(|h| (h.id, h.pos))
        .max_by(|a, b| big_pos.distance(a.1).total_cmp(&big_pos.distance(b.1)))
        .expect("a configured network has small heads");
    assert!(
        big_pos.distance(victim_pos) > net.config().coord_radius(),
        "scenario needs the victim beyond the big node's coordination range"
    );

    // Partition: kill everything except the victim's cell and the big
    // node's cell. For the victim this is a 100%-loss partition — every
    // head it could re-attach to is gone.
    let keep = net.config().r + net.config().r_t + 6.0;
    let corpses: Vec<NodeId> = snap
        .nodes
        .iter()
        .filter(|n| {
            n.alive
                && n.id != big
                && n.pos.distance(victim_pos) > keep
                && n.pos.distance(big_pos) > keep
        })
        .map(|n| n.id)
        .collect();
    for id in corpses {
        net.kill(id);
    }
    let members_before = snap
        .nodes
        .iter()
        .filter(|n|

            matches!(n.role, gs3::core::RoleView::Associate { head, .. } if head == victim)
                && n.alive
                && n.pos.distance(victim_pos) <= keep)
        .count();
    assert!(members_before > 0, "the victim cell must have members to serve");

    // Let the partition bite: parent loss, exhausted seeks, quarantine.
    net.run_for(SimDuration::from_secs(240));
    let trace = net.engine().trace();
    assert!(trace.proto("quarantine_entries") >= 1, "the victim never quarantined");
    assert!(trace.proto("quarantine_buffered") > 4, "quarantine never buffered aggregates");
    assert!(trace.proto("quarantine_drops") >= 1, "the bounded buffer never dropped");
    {
        let node = net.engine().node(victim).unwrap();
        let Role::Head(h) = node.role() else {
            panic!("the quarantined victim must keep its head role");
        };
        assert!(h.quarantined, "victim head must be in quarantine");
        assert!(h.quarantine_buf.len() <= 4, "buffer exceeded its bound");
        assert!(!h.associates.is_empty(), "quarantined head stopped serving its cell");
    }
    // Intra-cell invariants stay green: members still attached, within
    // the boundary-cell radius bound (I₂, Theorem 5) — the victim has no
    // live lattice neighbors, so it serves as a boundary head.
    let mid = net.snapshot();
    let r_bound = 3f64.sqrt() * net.config().r + 2.0 * net.config().r_t + 1e-6;
    let served = mid
        .nodes
        .iter()
        .filter(|n| {
            n.alive
                && matches!(
                    n.role,
                    gs3::core::RoleView::Associate { head, surrogate: false, .. } if head == victim
                )
        })
        .inspect(|n| {
            let head_pos = mid.nodes[victim.raw() as usize].pos;
            assert!(
                n.pos.distance(head_pos) <= r_bound,
                "quarantined cell member {} strayed out of range",
                n.id
            );
        })
        .count();
    assert!(served > 0, "the quarantined cell lost all members");

    // Heal the partition: blanket the dead corridor between the big node
    // and the victim with fresh nodes. Boundary re-organization then grows
    // new cells ring by ring toward the victim until one head beats within
    // the victim's coordination range; the victim re-attaches and drains.
    let u = Point::new(
        (victim_pos.x - big_pos.x) / big_pos.distance(victim_pos),
        (victim_pos.y - big_pos.y) / big_pos.distance(victim_pos),
    );
    let v = Point::new(-u.y, u.x);
    let corridor = big_pos.distance(victim_pos);
    let mut k = 0u32;
    let mut t = 35.0;
    while t < corridor - 12.0 {
        for j in -2i32..=2 {
            let s = f64::from(j) * 18.0;
            let p = Point::new(
                big_pos.x + u.x * t + v.x * s,
                big_pos.y + u.y * t + v.y * s,
            );
            net.join_node(p);
            k += 1;
        }
        t += 18.0;
    }
    assert!(k >= 40, "corridor blanket too sparse");
    net.run_for(SimDuration::from_secs(600));

    let trace = net.engine().trace();
    assert!(trace.proto("quarantine_exits") >= 1, "the victim never left quarantine");
    assert!(trace.proto("quarantine_drained") >= 1, "the buffer never drained upward");
    let node = net.engine().node(victim).unwrap();
    if let Role::Head(h) = node.role() {
        assert!(!h.quarantined, "victim still quarantined after the partition healed");
        assert!(h.quarantine_buf.is_empty(), "drained buffer must be empty");
    }
}

/// Satellite regression: 5% honest unicast loss (acks, org replies, and
/// handshakes all at risk) must still converge to a clean static structure.
#[test]
fn five_percent_unicast_loss_still_converges() {
    let mut net = builder(51).unicast_loss(0.05).build().unwrap();
    net.run_for(SimDuration::from_secs(240));
    let snap = net.snapshot();
    assert!(snap.heads().count() >= 7, "only {} heads formed", snap.heads().count());
    let violations = invariants::check_all(&snap, Strictness::Static);
    assert!(
        violations.is_empty(),
        "unicast loss left {} violations: {}",
        violations.len(),
        violations.first().map(ToString::to_string).unwrap_or_default()
    );
    assert!(
        net.engine().trace().dropped_unicast() > 0,
        "the unicast-loss knob never fired"
    );
}
