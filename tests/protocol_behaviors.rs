//! Targeted tests of individual protocol behaviors that the end-to-end
//! suites only exercise implicitly.

use gs3::core::harness::{Network, NetworkBuilder, RunOutcome};
use gs3::core::{Mode, RoleView};
use gs3::geometry::Point;
use gs3::sim::SimDuration;

fn settled(seed: u64) -> Network {
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(320.0)
        .expected_nodes(1400)
        .seed(seed)
        .build()
        .unwrap();
    assert!(matches!(net.run_to_fixpoint().unwrap(), RunOutcome::Fixpoint { .. }));
    net
}

#[test]
fn surrogate_then_real_head() {
    // A node beyond every head's coordination radius but within radio
    // range of associates becomes a *surrogate* associate; when the
    // boundary re-organization creates a real head nearby, it upgrades.
    let mut net = settled(401);
    // Place the newcomer beyond the outermost cells' coordination reach
    // but still inside some associate's radio range: walk outward from
    // the east-most associate until every head is out of coordination
    // reach. Deriving the spot from the snapshot keeps the scenario
    // valid for any deployment draw.
    let coord = net.config().coord_radius();
    let radio = net.engine().radio().max_range;
    let spot = {
        let snap = net.snapshot();
        let anchor = snap
            .nodes
            .iter()
            .filter(|n| n.alive && matches!(n.role, RoleView::Associate { .. }))
            .max_by(|a, b| a.pos.x.total_cmp(&b.pos.x))
            .expect("an associate exists")
            .pos;
        let heads: Vec<Point> = snap.heads().map(|h| h.pos).collect();
        let mut spot = None;
        let mut d = coord * 0.5;
        while d < radio {
            let p = Point::new(anchor.x + d, anchor.y);
            if heads.iter().all(|hp| hp.distance(p) > coord + 1.0) {
                spot = Some(p);
                break;
            }
            d += 2.0;
        }
        spot.expect("a spot out of head reach but in associate radio range")
    };
    let lonely = net.join_node(spot);
    net.run_for(SimDuration::from_secs(40));
    let snap = net.snapshot();
    match &snap.node(lonely).unwrap().role {
        RoleView::Associate { surrogate, .. } => {
            assert!(
                *surrogate,
                "a node out of head range joined through an associate must be a surrogate"
            );
        }
        RoleView::Bootup => {} // also acceptable: nobody in reach yet
        other => panic!("unexpected role {other:?}"),
    }

    // Now populate a candidate area around the newcomer so the boundary
    // re-organization can claim the nearest outer IL and produce a real
    // head in reach.
    for i in 0..20 {
        let ang = gs3::geometry::Angle::from_degrees(f64::from(i) * 31.0);
        net.join_node(spot.offset(ang, f64::from(i % 5) * 7.0));
    }
    net.run_for(SimDuration::from_secs(120));
    let snap = net.snapshot();
    let view = snap.node(lonely).unwrap();
    if let RoleView::Associate { surrogate, head, .. } = &view.role {
        if !surrogate {
            // Upgraded: its head must be a real head now.
            assert!(snap.node(*head).unwrap().is_head());
        }
    }
}

#[test]
fn election_produces_exactly_one_successor() {
    // Kill a head and freeze right after the election window: exactly one
    // member of the cell must have promoted itself.
    let mut net = settled(402);
    let snap = net.snapshot();
    let (victim, il, members) = snap
        .heads()
        .filter(|h| !h.is_big)
        .find_map(|h| match &h.role {
            RoleView::Head { il, associates, .. } if associates.len() >= 8 => {
                Some((h.id, *il, associates.clone()))
            }
            _ => None,
        })
        .expect("a populated cell exists");

    net.kill(victim);
    // Detection (3 × 2 s heartbeats) + stagger: freeze at 20 s.
    net.run_for(SimDuration::from_secs(20));
    let snap = net.snapshot();
    let successors: Vec<_> = members
        .iter()
        .filter(|m| snap.node(**m).is_some_and(|v| v.alive && v.is_head()))
        .collect();
    assert_eq!(
        successors.len(),
        1,
        "exactly one candidate must promote, got {successors:?}"
    );
    // And at the same IL.
    let s = snap.node(*successors[0]).unwrap();
    let RoleView::Head { il: new_il, .. } = &s.role else { unreachable!() };
    assert!(new_il.distance(il) <= net.config().r_t + 1e-6);
}

#[test]
fn boundary_reorg_never_duplicates_heads() {
    // Boundary heads re-run HEAD_ORG every ~20 s forever; across many
    // rounds no two heads may ever claim ILs within half a lattice
    // spacing of each other.
    let mut net = settled(403);
    for _ in 0..6 {
        net.run_for(SimDuration::from_secs(30));
        let snap = net.snapshot();
        let ils: Vec<Point> = snap
            .heads()
            .filter_map(|h| match &h.role {
                RoleView::Head { il, .. } => Some(*il),
                _ => None,
            })
            .collect();
        let spacing = net.config().spacing();
        for (i, a) in ils.iter().enumerate() {
            for b in &ils[i + 1..] {
                assert!(
                    a.distance(*b) > spacing / 2.0,
                    "duplicate cells: ILs {a} and {b}"
                );
            }
        }
    }
}

#[test]
fn cell_abandonment_when_candidate_area_dies_out() {
    // Kill every node within R_t of a cell's IL (head + all candidates).
    // With nobody to elect, the cell's members re-join neighbors after the
    // failure windows; nodes near the IL were all killed so no successor
    // can appear at it immediately.
    let mut net = settled(404);
    let snap = net.snapshot();
    let inner = gs3::core::invariants::inner_heads(&snap);
    let (il, _) = snap
        .heads()
        .filter(|h| !h.is_big && inner.contains(&h.id))
        .find_map(|h| match &h.role {
            RoleView::Head { il, .. } => Some((*il, h.id)),
            _ => None,
        })
        .expect("inner head exists");
    let killed = net.kill_disk(il, net.config().r_t + 2.0);
    assert!(!killed.is_empty());

    net.run_for(SimDuration::from_secs(90));
    let snap = net.snapshot();
    // Every surviving ex-member found a home (associate of some alive
    // head) — the cell dissolved into its neighbors or re-formed via
    // boundary re-organization with newly moved-in... (static positions:
    // re-formation requires a node within R_t of the IL, all of which are
    // dead, so dissolution is the only path).
    let cov = gs3::core::invariants::check_coverage(&snap);
    assert!(cov.is_empty(), "survivors must re-home: {:?}", cov.first());
    let near_il_heads = snap
        .heads()
        .filter(|h| h.pos.distance(il) <= net.config().r_t)
        .count();
    assert_eq!(near_il_heads, 0, "nobody left to head the dead candidate area");
}

#[test]
fn static_mode_schedules_no_maintenance() {
    // GS³-S is a one-shot computation: after quiescence the engine has no
    // pending events at all (no heartbeats, no boundary ticks).
    let mut net = NetworkBuilder::new()
        .mode(Mode::Static)
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(200.0)
        .expected_nodes(500)
        .seed(405)
        .build()
        .unwrap();
    let deadline = net.now() + SimDuration::from_secs(600);
    net.engine_mut().run_until_quiescent(deadline).expect("terminates");
    assert!(net.engine().is_quiescent(), "GS³-S must leave no recurring machinery");
}

#[test]
fn dynamic_mode_keeps_beating_forever() {
    let mut net = settled(406);
    let before = net.engine().trace().sent_of_kind("head_intra_alive");
    net.run_for(SimDuration::from_secs(60));
    let after = net.engine().trace().sent_of_kind("head_intra_alive");
    assert!(after > before, "intra-cell heartbeats must keep flowing");
}

#[test]
fn associate_switches_to_closer_head_after_reorganization() {
    // F₃ (cell optimality) as a dynamic process: force a dead head's cell to
    // re-form, then verify every nearby associate ends at its closest
    // head again.
    let mut net = settled(407);
    let snap = net.snapshot();
    let inner = gs3::core::invariants::inner_heads(&snap);
    let victim = snap
        .heads()
        .find(|h| !h.is_big && inner.contains(&h.id))
        .map(|h| h.id)
        .unwrap();
    net.kill(victim);
    let _ = net.run_to_fixpoint().unwrap();
    let snap = net.snapshot();
    let best = gs3::core::invariants::check_best_head(&snap, true);
    assert!(best.is_empty(), "F3 must be restored: {:?}", best.first());
}

#[test]
fn stale_parent_seek_ack_is_ignored() {
    // Regression: a delayed or duplicated `parent_seek_ack` from a round
    // the head is no longer waiting on must not re-parent it. Forge an
    // irresistible ack (hops = 0) from a non-parent head; the settled
    // victim has no seek pending, so the ack is stale by definition.
    use gs3::core::messages::Msg;

    let mut net = settled(408);
    let snap = net.snapshot();
    let (victim, parent) = snap
        .heads()
        .filter(|h| !h.is_big && h.alive)
        .find_map(|h| match &h.role {
            RoleView::Head { parent, .. } if *parent != h.id => Some((h.id, *parent)),
            _ => None,
        })
        .expect("a settled network has a child head");
    let victim_children: Vec<_> = match &snap.node(victim).unwrap().role {
        RoleView::Head { children, .. } => children.clone(),
        _ => unreachable!(),
    };
    let forger = snap
        .heads()
        .find(|h| h.id != victim && h.id != parent && !victim_children.contains(&h.id))
        .expect("another head exists");
    let (forger_il, forger_pos) = match &snap.node(forger.id).unwrap().role {
        RoleView::Head { il, .. } => (*il, forger.pos),
        _ => unreachable!(),
    };
    net.engine_mut()
        .inject_message(
            forger.id,
            victim,
            Msg::ParentSeekAck { hops: 0, il: forger_il, pos: forger_pos, round: 7 },
            SimDuration::from_millis(5),
        )
        .unwrap();
    net.run_for(SimDuration::from_secs(10));

    assert!(
        net.engine().trace().proto("parent_seek_stale_acks") >= 1,
        "the stale ack was never flagged"
    );
    let snap = net.snapshot();
    match &snap.node(victim).unwrap().role {
        RoleView::Head { parent: now_parent, .. } => {
            assert_eq!(*now_parent, parent, "a stale ack must never re-parent a head");
        }
        other => panic!("victim left head role: {other:?}"),
    }
}
