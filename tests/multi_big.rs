//! The paper's Section 7 extension: networks with multiple big nodes.
//!
//! "GS³ enables each small node to choose the best (e.g. closest) big node
//! to communicate" — the diffusions from each gateway grow toward each
//! other, frontier cells belong to whichever structure claimed them first,
//! and the head graphs form a forest with one tree per gateway.

use gs3::core::harness::{NetworkBuilder, RunOutcome};
use gs3::core::invariants::{self, head_roots};
use gs3::core::RoleView;
use gs3::geometry::Point;
use gs3::sim::NodeId;

#[test]
fn two_gateways_partition_the_field() {
    let second_big_pos = Point::new(520.0, 0.0);
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(450.0)
        .expected_nodes(2600)
        .seed(71)
        .big_position(Point::new(-260.0, 0.0))
        .with_extra_big(Point::new(260.0, 0.0))
        .build()
        .unwrap();
    let _ = second_big_pos;
    assert_eq!(net.big_ids().len(), 2);
    let outcome = net.run_to_fixpoint().unwrap();
    assert!(matches!(outcome, RunOutcome::Fixpoint { .. }), "two diffusions must settle");

    let snap = net.snapshot();
    // The head graph is a two-tree forest rooted at the two gateways.
    let forest = invariants::check_head_graph_forest(&snap, 2);
    assert!(forest.is_empty(), "first: {:?}", forest.first());
    let roots = head_roots(&snap);
    let distinct: std::collections::BTreeSet<NodeId> =
        roots.values().flatten().copied().collect();
    for big in net.big_ids() {
        assert!(
            distinct.contains(big),
            "gateway {big} must root one of the trees ({distinct:?})"
        );
    }

    // Both structures have grown several cells.
    let mut per_root: std::collections::BTreeMap<NodeId, usize> = Default::default();
    for root in roots.values().flatten() {
        *per_root.entry(*root).or_default() += 1;
    }
    for (root, cells) in &per_root {
        assert!(*cells >= 5, "structure at {root} has only {cells} cells");
    }

    // Coverage: every connected node is in some cell.
    let cov = invariants::check_coverage(&snap);
    assert!(cov.is_empty(), "first: {:?}", cov.first());

    // Frontier sanity: heads of *different* structures never stack on top
    // of each other (HEAD_SELECT's ownership suppression works across
    // structures).
    let heads: Vec<_> = snap.heads().collect();
    for (i, a) in heads.iter().enumerate() {
        for b in &heads[i + 1..] {
            let d = a.pos.distance(b.pos);
            assert!(
                d > 0.4 * net.config().spacing(),
                "heads {} and {} are only {d:.0} m apart",
                a.id,
                b.id
            );
        }
    }
}

#[test]
fn nodes_join_the_structure_of_the_nearest_gateway() {
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(420.0)
        .expected_nodes(2300)
        .seed(72)
        .big_position(Point::new(-240.0, 0.0))
        .with_extra_big(Point::new(240.0, 0.0))
        .build()
        .unwrap();
    let _ = net.run_to_fixpoint().unwrap();
    let snap = net.snapshot();
    let roots = head_roots(&snap);

    let big_a = net.big_ids()[0];
    let big_b = net.big_ids()[1];
    let pos_a = snap.node(big_a).unwrap().pos;
    let pos_b = snap.node(big_b).unwrap().pos;

    // Nodes deep inside either half (≥ one full cell from the frontier)
    // belong to the near gateway's structure.
    let margin = net.config().spacing();
    let mut checked = 0;
    for n in snap.associates() {
        let RoleView::Associate { head, surrogate: false, .. } = &n.role else {
            continue;
        };
        let da = n.pos.distance(pos_a);
        let db = n.pos.distance(pos_b);
        if (da - db).abs() < 2.0 * margin {
            continue; // frontier zone: either owner is legitimate
        }
        let expected = if da < db { big_a } else { big_b };
        let Some(Some(root)) = roots.get(head) else {
            continue;
        };
        assert_eq!(
            *root, expected,
            "node {} at {} is {da:.0}/{db:.0} from the gateways but joined {root}",
            n.id, n.pos
        );
        checked += 1;
    }
    assert!(checked > 200, "only {checked} interior nodes checked");
}
