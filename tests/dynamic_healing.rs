//! End-to-end tests of GS³-D: self-healing under node joins, leaves,
//! deaths, and state corruption (paper Section 4).

use gs3::analysis::locality::{changed_nodes, measure_impact};
use gs3::core::harness::{Network, NetworkBuilder, RunOutcome};
use gs3::core::invariants::{self, Strictness};
use gs3::core::{FaultKind, FaultPlan, RoleView};
use gs3::geometry::{Point, Vec2};
use gs3::sim::{NodeId, SimDuration};

fn settled(seed: u64) -> Network {
    // Area radius 320 holds the central cell plus two full bands, so
    // band-1 heads are *inner* cells (all six lattice neighbors present).
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(320.0)
        .expected_nodes(1400)
        .seed(seed)
        .build()
        .unwrap();
    match net.run_to_fixpoint().unwrap() {
        RunOutcome::Fixpoint { .. } => net,
        RunOutcome::TimedOut { at } => panic!("initial configuration timed out at {at}"),
    }
}

fn assert_clean(net: &Network, context: &str) {
    let snap = net.snapshot();
    let violations = invariants::check_all(&snap, Strictness::Dynamic);
    assert!(violations.is_empty(), "{context}: first violation: {}", violations[0]);
}

/// A non-big head together with its IL, away from the deployment edge.
fn pick_inner_head(net: &Network) -> (NodeId, Point) {
    let snap = net.snapshot();
    let inner = invariants::inner_heads(&snap);
    let found = snap
        .heads()
        .filter(|h| !h.is_big && inner.contains(&h.id))
        .filter_map(|h| match &h.role {
            RoleView::Head { il, .. } => Some((h.id, *il)),
            _ => None,
        })
        .next();
    found.expect("an inner small head exists")
}

#[test]
fn head_failure_is_healed_by_head_shift() {
    let mut net = settled(101);
    let (victim, il) = pick_inner_head(&net);

    net.kill(victim);
    let outcome = net.run_to_fixpoint().unwrap();
    assert!(matches!(outcome, RunOutcome::Fixpoint { .. }), "healing must re-stabilize");

    // A successor head exists for the same cell (same IL within R_t).
    let snap = net.snapshot();
    let successor = snap.heads().find(|h| match &h.role {
        RoleView::Head { il: new_il, .. } => new_il.distance(il) <= net.config().r_t + 1e-6,
        _ => false,
    });
    assert!(successor.is_some(), "head shift must produce a successor at the same IL");
    assert_ne!(successor.unwrap().id, victim);
    assert_clean(&net, "after head shift");
}

#[test]
fn head_failure_impact_is_local() {
    let mut net = settled(102);
    let (victim, il) = pick_inner_head(&net);
    let report = measure_impact(
        &mut net,
        il,
        SimDuration::from_millis(500),
        SimDuration::from_secs(300),
        |net| net.kill(victim),
    );
    assert!(report.heal_time.is_some(), "must heal");
    // All changes confined to the coordination neighborhood of the cell:
    // the cell itself plus its direct lattice neighbors.
    let bound = 2.0 * net.config().coord_radius();
    assert!(
        report.impact_radius <= bound,
        "impact radius {:.0} exceeds locality bound {:.0} (changed: {:?})",
        report.impact_radius,
        bound,
        report.changed
    );
}

#[test]
fn disk_kill_heals_and_recovers_coverage() {
    let mut net = settled(103);
    let plan = FaultPlan::new().at(
        SimDuration::ZERO,
        FaultKind::CrashDisk { center: Point::new(100.0, 60.0), radius: 60.0 },
    );
    let report = net.run_chaos(&plan);
    assert!(report.outcomes[0].killed > 10, "the disk must actually kill a crowd");
    assert!(report.healed(), "must re-stabilize after disk kill");

    let snap = net.snapshot();
    // Every surviving connected node is re-covered.
    let cov = invariants::check_coverage(&snap);
    assert!(cov.is_empty(), "coverage after disk kill: {:?}", cov.first());
    // The head graph is still a tree.
    let tree = invariants::check_head_graph_tree(&snap);
    assert!(tree.is_empty(), "tree after disk kill: {:?}", tree.first());
}

#[test]
fn joined_node_becomes_associate_of_nearest_head() {
    let mut net = settled(104);
    let (_, il) = pick_inner_head(&net);
    let newcomer = net.join_node(Point::new(il.x + 20.0, il.y + 10.0));
    let _ = net.run_to_fixpoint().unwrap();

    let snap = net.snapshot();
    let view = snap.node(newcomer).unwrap();
    let RoleView::Associate { head, .. } = &view.role else {
        panic!("joined node must become an associate, is {:?}", view.role);
    };
    // Its head is the nearest one.
    let head_pos = snap.node(*head).unwrap().pos;
    let nearest = snap
        .heads()
        .map(|h| view.pos.distance(h.pos))
        .fold(f64::INFINITY, f64::min);
    assert!(view.pos.distance(head_pos) <= nearest + 2.0 * net.config().r_t);
}

#[test]
fn join_near_cell_center_can_take_over_headship_eventually() {
    // The paper: "the cell structure remains unchanged except that the
    // head of some cell may be replaced if the new node better serves as
    // head". A node joining exactly at the IL is the best candidate; it
    // need not replace immediately, but it must become a candidate.
    let mut net = settled(105);
    let (_, il) = pick_inner_head(&net);
    let newcomer = net.join_node(il);
    let _ = net.run_to_fixpoint().unwrap();
    let snap = net.snapshot();
    match &snap.node(newcomer).unwrap().role {
        RoleView::Associate { is_candidate, .. } => {
            assert!(is_candidate, "node at the IL must be a head candidate");
        }
        RoleView::Head { .. } => {} // already took over — also fine
        other => panic!("unexpected role {other:?}"),
    }
}

#[test]
fn mass_join_extends_the_structure() {
    // Populate a blob around a band-3 ideal location, just beyond the
    // deployment edge; the band-2 boundary head's periodic HEAD_ORG must
    // organize a new cell there.
    let mut net = settled(106);
    let heads_before = net.snapshot().heads().count();
    let spacing = gs3::geometry::head_spacing(80.0);
    let band3_il = Point::new(3.0 * spacing, 0.0);
    let mut joiners = Vec::new();
    for i in 0..30 {
        let ang = gs3::geometry::Angle::from_degrees(f64::from(i) * 47.0);
        let dist = f64::from(i % 6) * 6.0;
        joiners.push(net.join_node(band3_il.offset(ang, dist)));
    }
    // Boundary re-organization fires on a 20 s period by default; allow a
    // few periods plus join delays.
    net.run_for(SimDuration::from_secs(120));
    let snap = net.snapshot();
    let heads_after = snap.heads().count();
    assert!(
        heads_after > heads_before,
        "expansion must create new cells ({heads_before} → {heads_after})"
    );
    // The new cell's head sits within R_t of the band-3 lattice point.
    let new_head = snap.heads().find(|h| match &h.role {
        RoleView::Head { il, .. } => il.distance(band3_il) <= net.config().r_t + 1e-6,
        _ => false,
    });
    assert!(new_head.is_some(), "a head must appear at the band-3 IL");
    let uncovered = joiners
        .iter()
        .filter(|id| matches!(snap.node(**id).unwrap().role, RoleView::Bootup))
        .count();
    assert!(
        uncovered * 10 <= joiners.len(),
        "most of the {} joiners must be absorbed, {uncovered} still in bootup",
        joiners.len()
    );
}

#[test]
fn corrupted_head_is_demoted_by_sanity_check() {
    let mut net = settled(107);
    let (victim, il) = pick_inner_head(&net);
    // Push the stored IL far off the lattice: the hexagonal relation
    // breaks for the victim but stays intact for every neighbor.
    assert!(net.corrupt_head_il(victim, Vec2::new(150.0, 90.0)));

    // Sanity ticks fire every 30 s by default; allow several periods.
    net.run_for(SimDuration::from_secs(150));
    let snap = net.snapshot();
    // The corrupted IL must be purged from the structure. (The original
    // node may legitimately serve again — after demotion it re-joins and
    // can win re-election at the *sound* IL.)
    let corrupt_il = il + Vec2::new(150.0, 90.0);
    let still_corrupt = snap.heads().any(|h| match &h.role {
        RoleView::Head { il: cur, .. } => cur.distance(corrupt_il) <= 1.0,
        _ => false,
    });
    assert!(!still_corrupt, "the corrupted IL must not survive sanity checking");
    // The cell recovered a sound head at the original lattice IL.
    let recovered = snap.heads().any(|h| match &h.role {
        RoleView::Head { il: new_il, .. } => new_il.distance(il) <= net.config().r_t + 1e-6,
        _ => false,
    });
    assert!(recovered, "cell must regain a sound head");
    assert_clean(&net, "after corruption healing");
}

#[test]
fn random_churn_keeps_structure_stable() {
    let mut net = settled(108);
    let mut plan = FaultPlan::new();
    for round in 0..5u64 {
        let t = SimDuration::from_secs(round * 30);
        plan = plan.at(t, FaultKind::CrashRandom { count: 8 });
        for i in 0..4 {
            let ang = gs3::geometry::Angle::from_degrees(f64::from(round as u32 * 90 + i * 17));
            let pos = Point::ORIGIN.offset(ang, 40.0 + f64::from(i) * 35.0);
            plan = plan.at(t, FaultKind::Join { pos });
        }
    }
    let report = net.run_chaos(&plan);
    assert!(report.healed(), "churn must settle, final={}", report.final_violations);
    let snap = net.snapshot();
    let tree = invariants::check_head_graph_tree(&snap);
    assert!(tree.is_empty(), "after churn: {:?}", tree.first());
    let cov = invariants::check_coverage(&snap);
    assert!(cov.is_empty(), "after churn: {:?}", cov.first());
}

#[test]
fn associate_death_is_masked_within_cell() {
    let mut net = settled(109);
    let snap = net.snapshot();
    let victim = snap
        .associates()
        .find(|n| matches!(n.role, RoleView::Associate { is_candidate: false, .. }))
        .map(|n| n.id)
        .expect("a plain associate exists");
    let before = net.snapshot();
    net.kill(victim);
    net.run_for(SimDuration::from_secs(60));
    let after = net.snapshot();
    let changed = changed_nodes(&before, &after);
    assert!(changed.is_empty(), "associate death must be masked, changed {changed:?}");
}

/// Sanity recovery, observable mechanics: a corrupted head actually runs
/// the distributed check (requests out, a majority of valid verdicts
/// back), leaves via `head_retreat_corrupted` — not via the ordinary
/// retreat used for planned handoffs — and its orphaned associates are
/// re-absorbed, leaving the structure clean.
#[test]
fn sanity_demotion_runs_the_check_and_reabsorbs_associates() {
    let mut net = settled(109);
    let (victim, _il) = pick_inner_head(&net);
    let members: Vec<NodeId> = {
        let snap = net.snapshot();
        snap.nodes
            .iter()
            .filter(|n| {
                n.alive && matches!(n.role, RoleView::Associate { head, .. } if head == victim)
            })
            .map(|n| n.id)
            .collect()
    };
    assert!(!members.is_empty(), "an inner head serves associates");
    let reqs_before = net.engine().trace().sent_of_kind("sanity_check_req");
    assert!(net.corrupt_head_il(victim, Vec2::new(150.0, 90.0)));
    net.run_for(SimDuration::from_secs(150));

    let trace = net.engine().trace();
    assert!(
        trace.sent_of_kind("sanity_check_req") > reqs_before,
        "the corrupted head never started a sanity round"
    );
    assert!(
        trace.sent_of_kind("sanity_check_valid") > 0,
        "neighbors never answered the sanity round"
    );
    assert!(
        trace.sent_of_kind("head_retreat_corrupted") >= 1,
        "demotion must go through the corrupted-retreat path"
    );
    // Every orphaned associate found a live head (or was re-elected head).
    let snap = net.snapshot();
    for id in members {
        let n = snap.node(id).expect("member still deployed");
        if !n.alive {
            continue;
        }
        match &n.role {
            RoleView::Associate { head, .. } => {
                let h = snap.node(*head).expect("head exists");
                assert!(h.alive && h.is_head(), "member {id} points at a dead head");
            }
            RoleView::Head { .. } => {}
            other => panic!("member {id} stranded as {other:?}"),
        }
    }
    assert_clean(&net, "after sanity demotion");
}

/// A corrupted *parent pointer* (head points at itself, masquerading as a
/// root) is repaired in place by the inter-cell machinery — the head
/// re-attaches to the real tree without ever being demoted. The sanity
/// check is for geometric corruption; tree corruption heals cheaper.
#[test]
fn corrupt_parent_pointer_heals_without_demotion() {
    let mut net = settled(110);
    let (victim, il) = pick_inner_head(&net);
    let retreats_before = net.engine().trace().sent_of_kind("head_retreat_corrupted");
    assert!(net.corrupt_head_parent(victim));
    net.run_for(SimDuration::from_secs(120));

    let snap = net.snapshot();
    let healed = snap.node(victim).is_some_and(|n| match &n.role {
        RoleView::Head { parent, il: cur, .. } => {
            *parent != victim && cur.distance(il) <= 1e-6
        }
        _ => false,
    });
    assert!(healed, "the self-parented head must re-attach at its own IL");
    assert_eq!(
        net.engine().trace().sent_of_kind("head_retreat_corrupted"),
        retreats_before,
        "parent repair must not escalate to sanity demotion"
    );
    assert_clean(&net, "after parent-pointer repair");
}
