//! Robustness under degraded conditions: lossy broadcasts (the paper's
//! model allows destination-unaware transmission to be unreliable) and
//! imperfect localization (the paper assumes signal-strength ranging, so
//! positions carry error).

use gs3::core::harness::{NetworkBuilder, RunOutcome};
use gs3::core::invariants::{self, Strictness};
use gs3::core::{ChaosOptions, FaultKind, FaultPlan};
use gs3::sim::SimDuration;

#[test]
fn configuration_survives_lossy_broadcasts() {
    // 10% of every broadcast copy is dropped. Unicast (org replies, acks,
    // head handshakes) stays reliable per the paper's model; the periodic
    // re-broadcasts (boundary checks, heartbeats) must make the structure
    // converge anyway.
    for loss in [0.05, 0.10, 0.20] {
        let mut net = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(250.0)
            .expected_nodes(850)
            .seed(81)
            .broadcast_loss(loss)
            .build()
            .unwrap();
        // Lossy runs converge more slowly (missed HeadSets are repaired by
        // the 20 s boundary ticks); allow several rounds.
        net.run_for(SimDuration::from_secs(240));
        let snap = net.snapshot();
        assert!(
            snap.heads().count() >= 7,
            "loss {loss}: only {} heads formed",
            snap.heads().count()
        );
        let cov = invariants::check_coverage(&snap);
        // Allow stragglers still joining under heavy loss, but the bulk
        // must be covered.
        let alive = snap.nodes.iter().filter(|n| n.alive).count();
        assert!(
            cov.len() * 20 <= alive,
            "loss {loss}: {} of {alive} nodes uncovered",
            cov.len()
        );
        let tree = invariants::check_head_graph_tree(&snap);
        assert!(tree.is_empty(), "loss {loss}: {:?}", tree.first());
    }
}

#[test]
fn lossless_structure_also_heals_with_loss_enabled() {
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(250.0)
        .expected_nodes(850)
        .seed(82)
        .broadcast_loss(0.1)
        .build()
        .unwrap();
    net.run_for(SimDuration::from_secs(180));
    // Kill a head (a pinpoint crash disk at its position); head shift must
    // still work over a lossy channel. The oracle only watches the head
    // graph — under 10% broadcast loss stragglers may still be joining, but
    // the tree must knit back together.
    let victim_pos = net
        .snapshot()
        .heads()
        .find(|h| !h.is_big)
        .map(|h| h.pos)
        .expect("a small head exists");
    let plan = FaultPlan::new()
        .at(SimDuration::ZERO, FaultKind::CrashDisk { center: victim_pos, radius: 0.1 });
    let opts = ChaosOptions {
        poll: SimDuration::from_secs(2),
        settle: SimDuration::from_secs(120),
    };
    let report = net.run_chaos_with(&plan, opts, |snap| {
        invariants::check_head_graph_tree(snap).len()
    });
    assert_eq!(report.outcomes[0].killed, 1, "the pinpoint disk kills exactly the head");
    assert!(report.healed(), "head shift must heal the tree over a lossy channel");
}

#[test]
fn moderate_localization_noise_is_absorbed_by_the_tolerance() {
    // σ = R_t/6 of Gaussian position error: head placement and candidacy
    // decisions wobble but stay inside the R_t envelope the algorithm is
    // designed around.
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(250.0)
        .expected_nodes(850)
        .seed(83)
        .position_noise(3.0)
        .build()
        .unwrap();
    let outcome = net.run_to_fixpoint().unwrap();
    assert!(matches!(outcome, RunOutcome::Fixpoint { .. }));
    let snap = net.snapshot();
    assert!(snap.heads().count() >= 7);
    // Geometry checks still hold: the noise is folded into the node
    // positions themselves (the protocol never sees "true" positions), so
    // all bounds apply to what the nodes believe.
    let violations = invariants::check_all(&snap, Strictness::Dynamic);
    assert!(violations.is_empty(), "first: {}", violations[0]);
}
