//! The sensing workload: data aggregation along the head graph, and its
//! interaction with energy-driven self-healing (the paper's motivating
//! traffic model).

use gs3::core::harness::NetworkBuilder;
use gs3::sim::radio::EnergyModel;
use gs3::sim::SimDuration;

#[test]
fn reports_flow_and_aggregate_up_the_tree() {
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(200.0)
        .expected_nodes(500)
        .seed(91)
        .traffic(SimDuration::from_secs(2))
        .build()
        .unwrap();
    let _ = net.run_to_fixpoint().unwrap();
    let trace = net.engine().trace();
    let reports = trace.sent_of_kind("sensor_report");
    let aggregates = trace.sent_of_kind("aggregate_report");
    assert!(reports > 1000, "associates must report ({reports})");
    assert!(aggregates > 50, "heads must relay aggregates ({aggregates})");
    // Aggregation compresses: far fewer upstream messages than raw
    // reports (the in-network processing the paper's uniform-load argument
    // relies on).
    assert!(
        aggregates * 5 < reports,
        "aggregation must compress traffic ({aggregates} vs {reports})"
    );
}

#[test]
fn traffic_makes_head_dissipation_dominant() {
    // With the workload on and energy accounted, heads must drain faster
    // than associates — the asymmetry cell shift exploits.
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(20.0)
        .area_radius(150.0)
        .expected_nodes(320)
        .seed(92)
        .traffic(SimDuration::from_secs(1))
        .energy(EnergyModel::normalized(160.0), 2000.0)
        .build()
        .unwrap();
    let _ = net.run_to_fixpoint().unwrap();
    let snap = net.snapshot();
    let heads: Vec<_> = snap.heads().map(|h| h.id).collect();

    net.run_for(SimDuration::from_secs(120));
    let mut head_drain = Vec::new();
    let mut assoc_drain = Vec::new();
    for n in &net.snapshot().nodes {
        if !n.alive || n.is_big {
            continue;
        }
        let spent = 2000.0 - net.engine().energy(n.id).unwrap();
        if heads.contains(&n.id) {
            head_drain.push(spent);
        } else {
            assoc_drain.push(spent);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&head_drain) > 2.0 * mean(&assoc_drain),
        "heads must dissipate much faster: {:.1} vs {:.1}",
        mean(&head_drain),
        mean(&assoc_drain)
    );
}

#[test]
fn stepping_down_heads_flush_buffered_reports() {
    // Satellite regression: a head that steps down mid-period (energy
    // retreat, cell shift, replacement) must flush its buffered report
    // count upstream instead of silently dropping it. Under sustained
    // drain-driven rotation the flush path must fire.
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(20.0)
        .area_radius(150.0)
        .expected_nodes(320)
        .seed(94)
        .traffic(SimDuration::from_secs(2))
        .energy(EnergyModel::normalized(160.0), 600.0)
        .build()
        .unwrap();
    let _ = net.run_to_fixpoint().unwrap();
    net.run_for(SimDuration::from_secs(600));
    let trace = net.engine().trace();
    assert!(
        trace.proto("reports_flushed") >= 1,
        "no stepping-down head ever flushed its pending reports"
    );
}

#[test]
fn workload_survives_head_rotation() {
    // Under drain, headship rotates; the report stream must keep flowing
    // to the (current) heads without interruption-induced losses piling
    // up: unicast failures stay a tiny fraction of reports sent.
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(20.0)
        .area_radius(150.0)
        .expected_nodes(320)
        .seed(93)
        .traffic(SimDuration::from_secs(2))
        .energy(EnergyModel::normalized(160.0), 600.0)
        .build()
        .unwrap();
    let _ = net.run_to_fixpoint().unwrap();
    net.run_for(SimDuration::from_secs(600));
    let trace = net.engine().trace();
    let reports = trace.sent_of_kind("sensor_report") + trace.sent_of_kind("aggregate_report");
    let failures = trace.unicast_failures();
    assert!(reports > 5_000, "stream must be substantial ({reports})");
    // Failures happen (heads die mid-period; that's the point), but the
    // structure repairs fast enough that they stay rare.
    assert!(
        failures * 10 < reports,
        "failures must stay rare: {failures} of {reports}"
    );
}
