//! Shared-medium contention: RNG-inertness of the disabled layer, the
//! collision/backoff machinery under load, and congestion-adaptive
//! graceful degradation.
//!
//! The inertness tests are the PR-boundary contract: a build carrying the
//! contention code but leaving it disabled must replay byte-identical
//! digests to a build that never had it, so every pre-existing pinned
//! digest (see `trace_digest_is_pinned_across_queue_implementations` in
//! gs3-core) keeps holding without edits.

use gs3::core::harness::NetworkBuilder;
use gs3::core::{CongestionConfig, FaultKind, FaultPlan};
use gs3::sim::{ContentionConfig, SimDuration};

fn builder(seed: u64) -> NetworkBuilder {
    NetworkBuilder::new()
        .ideal_radius(40.0)
        .radius_tolerance(14.0)
        .area_radius(140.0)
        .expected_nodes(200)
        .seed(seed)
}

fn crash_plan() -> FaultPlan {
    FaultPlan::new().at(SimDuration::from_secs(5), FaultKind::CrashRandom { count: 5 })
}

/// The digest a default (contention-free) build of this scenario replays.
/// Pinned at the PR boundary that introduced the contention layer: any
/// later change to this value means a disabled layer shifted the RNG
/// stream or the delivery schedule.
const PINNED_CONTENTION_OFF_DIGEST: u64 = 0xE455_163D_3737_F5BC;

#[test]
fn disabled_contention_and_congestion_are_rng_inert() {
    let run = |explicit: bool| {
        let mut b = builder(11);
        if explicit {
            b = b.contention(ContentionConfig::disabled()).congestion(CongestionConfig::disabled());
        }
        let mut net = b.build().unwrap();
        net.run_to_fixpoint().unwrap();
        let rep = net.run_chaos(&crash_plan());
        let t = net.engine().trace().clone();
        (rep, t)
    };
    let (default_rep, default_trace) = run(false);
    let (off_rep, off_trace) = run(true);
    assert_eq!(
        default_rep.digest, off_rep.digest,
        "explicitly disabled contention/congestion must not shift the RNG stream"
    );
    assert_eq!(default_rep.to_json(), off_rep.to_json());
    for t in [&default_trace, &off_trace] {
        assert_eq!(t.mac_collisions(), 0, "disabled contention moved a MAC counter");
        assert_eq!(t.mac_defers(), 0);
        assert_eq!(t.mac_backoff_exhausted(), 0);
        assert_eq!(t.proto("congestion_stretch"), 0, "disabled congestion layer stretched");
        assert_eq!(t.proto("suppressed_broadcast"), 0);
    }
    assert_eq!(off_rep.mac, Default::default(), "disabled layers moved a report counter");
    assert_eq!(
        default_rep.digest, PINNED_CONTENTION_OFF_DIGEST,
        "contention-off digest drifted from the pinned pre-contention value"
    );
}

#[test]
fn contended_medium_collides_defers_and_still_heals() {
    let mut net = builder(11).contention(ContentionConfig::on()).build().unwrap();
    net.run_to_fixpoint().unwrap();
    let rep = net.run_chaos(&crash_plan());
    assert!(rep.mac.collisions > 0, "a dense contended field must see collisions");
    assert!(rep.mac.defers > 0, "carrier sense must defer some transmissions");
    assert!(rep.healed(), "moderate contention must not break healing: {}", rep.to_json());
    // The JSON report carries the MAC block (mirrors the reliability
    // block) with the same numbers the report struct holds.
    let doc = rep.to_json();
    assert!(
        doc.contains(&format!("\"mac\":{{\"collisions\":{},", rep.mac.collisions)),
        "mac block missing from report JSON: {doc}"
    );
}

#[test]
fn congestion_adaptation_stretches_under_offered_load() {
    let run = |adaptive: bool| {
        let mut b = builder(23)
            .traffic(SimDuration::from_secs(4))
            .contention(ContentionConfig::on());
        if adaptive {
            b = b.congestion(CongestionConfig::on());
        }
        let mut net = b.build().unwrap();
        // A loaded contended field may converge slowly; a bounded run
        // suffices — the assertions are about the adaptation machinery,
        // not the final structure.
        net.run_for(SimDuration::from_secs(300));
        net.engine().trace().clone()
    };
    let plain = run(false);
    assert_eq!(plain.proto("congestion_stretch"), 0, "adaptation off must never stretch");
    assert_eq!(plain.proto("congestion_relax"), 0);
    let adaptive = run(true);
    assert!(
        adaptive.proto("congestion_stretch") > 0,
        "an adaptive node under load+contention must stretch"
    );
    assert!(
        adaptive.mac_collisions() < plain.mac_collisions(),
        "load shedding must reduce collisions: adaptive {} vs plain {}",
        adaptive.mac_collisions(),
        plain.mac_collisions()
    );
}
