//! End-to-end tests of the energy-driven dynamics: head shift under
//! depletion, cell shift along the intra-cell spiral, and the coherent
//! *sliding* of the whole structure (paper §4.1, §4.3.5.1).

use gs3::core::harness::NetworkBuilder;
use gs3::core::RoleView;
use gs3::geometry::spiral::IccIcp;
use gs3::sim::radio::EnergyModel;
use gs3::sim::SimDuration;

fn energy_builder(seed: u64) -> NetworkBuilder {
    NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(20.0)
        .area_radius(150.0)
        .expected_nodes(320)
        .seed(seed)
}

#[test]
fn heads_rotate_under_energy_depletion() {
    let mut net = energy_builder(301)
        .energy(EnergyModel::normalized(160.0), 600.0)
        .build()
        .unwrap();
    let _ = net.run_to_fixpoint().unwrap();
    let first_heads: Vec<_> = net.snapshot().heads().map(|h| h.id).collect();
    assert!(!first_heads.is_empty());

    // Run long enough for several head generations.
    net.run_for(SimDuration::from_secs(900));
    let snap = net.snapshot();
    let current: Vec<_> = snap.heads().map(|h| h.id).collect();
    assert!(!current.is_empty(), "structure must still be alive");
    let rotated = current.iter().filter(|id| !first_heads.contains(id)).count();
    assert!(rotated > 0, "head shift must have rotated some headships");
}

#[test]
fn cell_shift_advances_the_intra_cell_spiral() {
    let mut net = energy_builder(302)
        .energy(EnergyModel::normalized(160.0), 450.0)
        .build()
        .unwrap();
    let _ = net.run_to_fixpoint().unwrap();

    // Drain until candidate areas empty out and ILs start walking the
    // spiral.
    let mut advanced = false;
    for _ in 0..60 {
        net.run_for(SimDuration::from_secs(60));
        let snap = net.snapshot();
        if snap.heads().any(|h| matches!(&h.role, RoleView::Head { icc_icp, .. } if *icc_icp != IccIcp::ORIGIN))
        {
            advanced = true;
            break;
        }
        if snap.heads().count() == 0 {
            break;
        }
    }
    assert!(advanced, "some cell must have shifted its IL along the spiral");
}

#[test]
fn maintained_structure_outlives_first_head_death() {
    let mut net = energy_builder(303)
        .energy(EnergyModel::normalized(160.0), 500.0)
        .build()
        .unwrap();
    let _ = net.run_to_fixpoint().unwrap();
    let first_heads: Vec<_> = net.snapshot().heads().map(|h| h.id).collect();

    let mut first_death = None;
    let mut structure_dead = None;
    for _ in 0..80 {
        net.run_for(SimDuration::from_secs(60));
        if first_death.is_none()
            && first_heads.iter().any(|id| !net.engine().is_alive(*id).unwrap())
        {
            first_death = Some(net.now());
        }
        let heads_now = net.snapshot().heads().count();
        if heads_now == 0 {
            structure_dead = Some(net.now());
            break;
        }
    }
    let first = first_death.expect("initial heads must eventually die");
    // Either the structure survived the whole horizon, or it died well
    // after the first head did — maintenance lengthened its life.
    match structure_dead {
        None => {}
        Some(dead) => {
            assert!(
                dead.as_secs_f64() >= 1.5 * first.as_secs_f64(),
                "maintained lifetime {dead} vs first head death {first}"
            );
        }
    }
}

#[test]
fn energy_disabled_structure_is_immortal() {
    let mut net = energy_builder(304).build().unwrap();
    let _ = net.run_to_fixpoint().unwrap();
    let sig = net.snapshot().structural_signature();
    net.run_for(SimDuration::from_secs(600));
    assert_eq!(net.snapshot().structural_signature(), sig, "no energy ⇒ no churn");
}
