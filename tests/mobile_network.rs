//! End-to-end tests of GS³-M: big-node mobility with the proxy mechanism
//! (paper Section 5, Theorem 11).

use gs3::core::harness::{Network, NetworkBuilder, RunOutcome};
use gs3::core::invariants;
use gs3::core::{Mode, RoleView};
use gs3::geometry::{head_spacing, Point};
use gs3::sim::SimDuration;

fn settled_mobile(seed: u64) -> Network {
    let mut net = NetworkBuilder::new()
        .mode(Mode::Mobile)
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(200.0)
        .expected_nodes(600)
        .seed(seed)
        .build()
        .unwrap();
    match net.run_to_fixpoint().unwrap() {
        RunOutcome::Fixpoint { .. } => net,
        RunOutcome::TimedOut { at } => panic!("initial configuration timed out at {at}"),
    }
}

#[test]
fn big_node_wandering_releases_and_reclaims_headship() {
    let mut net = settled_mobile(201);
    let big = net.big_id();

    // Step the big node away from its IL in small hops (mobility model:
    // movement = a sequence of position updates).
    let spacing = head_spacing(80.0);
    for i in 1..=6 {
        net.move_big(Point::new(f64::from(i) * spacing / 6.0, 0.0));
        net.run_for(SimDuration::from_secs(5));
    }
    // Now exactly at a first-band ideal location: the big node must
    // reclaim headship there.
    net.run_for(SimDuration::from_secs(60));
    let snap = net.snapshot();
    let view = snap.node(big).unwrap();
    assert!(
        matches!(view.role, RoleView::Head { .. }),
        "big node at an IL must serve as head, is {:?}",
        view.role
    );
    let RoleView::Head { hops, .. } = &view.role else { unreachable!() };
    assert_eq!(*hops, 0, "the big node is always the root");
}

#[test]
fn big_node_away_designates_closest_proxy() {
    let mut net = settled_mobile(202);
    let big = net.big_id();
    // Park the big node between ILs (more than R_t from every lattice
    // point): it must retreat and appoint a proxy.
    let spacing = head_spacing(80.0);
    net.move_big(Point::new(spacing / 2.0, 25.0));
    net.run_for(SimDuration::from_secs(45));

    let snap = net.snapshot();
    let view = snap.node(big).unwrap();
    let RoleView::BigAway { proxy, mobile } = &view.role else {
        panic!("big node between ILs must be away from head duty, is {:?}", view.role);
    };
    assert!(*mobile, "GS³-M away-state is big_move");
    let proxy = proxy.expect("a proxy must be designated");
    // The proxy is the closest head (fixpoint F₅) and advertises hops 0.
    let proxy_view = snap.node(proxy).unwrap();
    let RoleView::Head { is_proxy, hops, .. } = &proxy_view.role else {
        panic!("proxy must be a head");
    };
    assert!(is_proxy);
    assert_eq!(*hops, 0, "proxy advertises distance 0 to the big node");
    let d_proxy = view.pos.distance(proxy_view.pos);
    for h in snap.heads() {
        assert!(
            d_proxy <= view.pos.distance(h.pos) + 2.0 * net.config().r_t,
            "proxy must be (nearly) the closest head"
        );
    }
    // The head graph re-rooted at the proxy is still a tree.
    let tree = invariants::check_head_graph_tree(&snap);
    assert!(tree.is_empty(), "{:?}", tree.first());
}

#[test]
fn big_move_impact_is_contained() {
    // Theorem 11: moving the big node a distance d affects the head graph
    // only within radius √3·d/2 of the move's midpoint. Our measured
    // containment allows one coordination radius of slack for the
    // proxy-handoff edge flips at the rim.
    let mut net = settled_mobile(203);
    let spacing = head_spacing(80.0);
    let from = Point::ORIGIN;
    let to = Point::new(spacing, 0.0); // d = one lattice spacing
    let before = net.snapshot();

    for i in 1..=4 {
        net.move_big(Point::new(to.x * f64::from(i) / 4.0, 0.0));
        net.run_for(SimDuration::from_secs(5));
    }
    let _ = net.run_to_fixpoint().unwrap();
    let after = net.snapshot();

    let changed = gs3::analysis::locality::changed_head_edges(&before, &after);
    let midpoint = from.midpoint(to);
    let d = from.distance(to);
    let bound = 3.0f64.sqrt() * d / 2.0 + net.config().coord_radius();
    for id in &changed {
        let pos = after.node(*id).or_else(|| before.node(*id)).unwrap().pos;
        assert!(
            midpoint.distance(pos) <= bound,
            "head {id} at {:.0}m from midpoint changed its edge (bound {bound:.0})",
            midpoint.distance(pos)
        );
    }
    // And the move must have changed *something* (the big node re-rooted).
    assert!(!changed.is_empty(), "a full-spacing move must re-root at least one edge");
}

#[test]
fn small_node_movement_rejoins_closest_cell() {
    let mut net = settled_mobile(204);
    let snap = net.snapshot();
    // Take a plain associate and teleport it two cells away.
    let victim = snap
        .associates()
        .find(|n| matches!(n.role, RoleView::Associate { is_candidate: false, .. }))
        .map(|n| n.id)
        .expect("a plain associate exists");
    let spacing = head_spacing(80.0);
    let dest = Point::new(-spacing, 30.0);
    net.move_node(victim, dest);
    net.run_for(SimDuration::from_secs(90));

    let snap = net.snapshot();
    let view = snap.node(victim).unwrap();
    let RoleView::Associate { head, .. } = &view.role else {
        panic!("moved node must re-associate, is {:?}", view.role);
    };
    let head_pos = snap.node(*head).unwrap().pos;
    let nearest = snap.heads().map(|h| view.pos.distance(h.pos)).fold(f64::INFINITY, f64::min);
    assert!(
        view.pos.distance(head_pos) <= nearest + 2.0 * net.config().r_t,
        "moved node must end up with (nearly) the closest head"
    );
}
