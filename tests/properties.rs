//! Randomized property tests: the GS³ invariants hold across randomized
//! deployments, parameters, and perturbation schedules.
//!
//! Formerly written against `proptest`; the build environment has no
//! registry access, so the same properties run as seeded random-case
//! loops over the in-repo `rand` shim (same case counts as the proptest
//! configs used: 12 simulation cases per property, 24 for the cheap gap
//! check).

use gs3::core::harness::NetworkBuilder;
use gs3::core::invariants::{self, Strictness};
use gs3::core::Mode;
use gs3::geometry::Point;
use gs3::sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GS³-S: for random seeds, densities, and tolerances, the diffusing
/// computation terminates with all static invariants intact.
#[test]
fn static_invariants_hold_for_random_deployments() {
    let mut rng = StdRng::seed_from_u64(0x5747_4101);
    for _ in 0..12 {
        let seed = rng.gen_range(0u64..10_000);
        let nodes = rng.gen_range(250usize..700);
        let r_t_frac = rng.gen_range(0.15f64..0.25);
        let r = 80.0;
        let mut net = NetworkBuilder::new()
            .mode(Mode::Static)
            .ideal_radius(r)
            .radius_tolerance(r_t_frac * r)
            .area_radius(180.0)
            .expected_nodes(nodes)
            .seed(seed)
            .build()
            .unwrap();
        let quiesced = net
            .engine_mut()
            .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(600));
        assert!(quiesced.is_some(), "diffusion must terminate");
        let snap = net.snapshot();
        // GS³-S assumes no R_t-gaps (Section 3.1); random low-density
        // draws do contain gaps, whose pockets legitimately stay
        // unconfigured. Check every geometric invariant, and coverage
        // only for nodes within coordination reach of some head (those
        // the diffusion could possibly claim).
        let mut violations = invariants::check_head_graph_tree(&snap);
        violations.extend(invariants::check_head_graph_physical(&snap));
        violations.extend(invariants::check_neighbor_distances(&snap));
        violations.extend(invariants::check_children_counts(&snap, Strictness::Static));
        violations.extend(invariants::check_cell_radius(&snap, 0.0));
        violations.extend(invariants::check_best_head(&snap, true));
        violations.extend(invariants::check_heads_on_ideal(&snap));
        assert!(
            violations.is_empty(),
            "seed {} nodes {} r_t {:.1}: {}",
            seed,
            nodes,
            r_t_frac * r,
            violations[0]
        );
        let coord = net.config().coord_radius();
        let head_positions: Vec<Point> = snap.heads().map(|h| h.pos).collect();
        for n in &snap.nodes {
            if n.alive && matches!(n.role, gs3::core::RoleView::Bootup) {
                let reachable = head_positions.iter().any(|hp| hp.distance(n.pos) <= coord);
                assert!(
                    !reachable,
                    "seed {seed}: node {} in head reach but unconfigured",
                    n.id
                );
            }
        }
    }
}

/// GS³-D: random kill/join churn always re-stabilizes with the dynamic
/// invariants intact.
#[test]
fn dynamic_invariants_hold_under_random_churn() {
    let mut rng = StdRng::seed_from_u64(0x5747_4102);
    for _ in 0..12 {
        let seed = rng.gen_range(0u64..10_000);
        let kills = rng.gen_range(1usize..12);
        let joins = rng.gen_range(0usize..8);
        let mut net = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(170.0)
            .expected_nodes(420)
            .seed(seed)
            .build()
            .unwrap();
        let _ = net.run_to_fixpoint().unwrap();
        let _ = net.kill_random(kills);
        for i in 0..joins {
            let ang = gs3::geometry::Angle::from_degrees((seed % 360) as f64 + i as f64 * 49.0);
            net.join_node(Point::ORIGIN.offset(ang, 30.0 + i as f64 * 18.0));
        }
        net.run_for(SimDuration::from_secs(120));
        let snap = net.snapshot();
        let tree = invariants::check_head_graph_tree(&snap);
        assert!(tree.is_empty(), "seed {seed}: {}", tree[0]);
        let cov = invariants::check_coverage(&snap);
        assert!(cov.is_empty(), "seed {seed}: {}", cov[0]);
        let radius = invariants::check_cell_radius(&snap, 0.0);
        assert!(radius.is_empty(), "seed {seed}: {}", radius[0]);
    }
}

/// Deployment gaps never break coverage: nodes around a gap are absorbed
/// by neighboring cells.
#[test]
fn gaps_never_break_coverage() {
    let mut rng = StdRng::seed_from_u64(0x5747_4103);
    let mut checked = 0;
    while checked < 24 {
        let seed = rng.gen_range(0u64..10_000);
        let gap_x = rng.gen_range(-150.0f64..150.0);
        let gap_y = rng.gen_range(-150.0f64..150.0);
        let gap_r = rng.gen_range(20.0f64..45.0);
        // A gap over the big node removes nothing (the big node is placed
        // explicitly), but can isolate it; skip that degenerate case.
        if Point::new(gap_x, gap_y).distance(Point::ORIGIN) <= gap_r + 20.0 {
            continue;
        }
        checked += 1;
        let mut net = NetworkBuilder::new()
            .mode(Mode::Static)
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(170.0)
            .expected_nodes(420)
            .seed(seed)
            .with_gap(Point::new(gap_x, gap_y), gap_r)
            .build()
            .unwrap();
        let quiesced = net
            .engine_mut()
            .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(600));
        assert!(quiesced.is_some());
        let snap = net.snapshot();
        let cov = invariants::check_coverage(&snap);
        assert!(
            cov.is_empty(),
            "seed {seed} gap ({gap_x:.0},{gap_y:.0})r{gap_r:.0}: {}",
            cov[0]
        );
    }
}

/// Reliable-delivery dedup is idempotent: delivering a forged reliable
/// envelope once vs `k` times (`k` ≤ the dedup window) leaves the network
/// in the same structural state — the inner message is dispatched exactly
/// once, and the `k−1` extra copies only bump the dedup counter.
#[test]
fn dedup_window_makes_redelivery_idempotent() {
    use gs3::core::messages::Msg;
    use gs3::core::{ReliabilityConfig, RoleView};

    let mut rng = StdRng::seed_from_u64(0x5747_4104);
    for _ in 0..6 {
        let seed = rng.gen_range(0u64..10_000);
        let window = ReliabilityConfig::on().dedup_window;
        let k = rng.gen_range(2usize..=window);
        let run = |copies: usize| {
            let mut net = NetworkBuilder::new()
                .ideal_radius(40.0)
                .radius_tolerance(14.0)
                .area_radius(160.0)
                .expected_nodes(300)
                .seed(seed)
                .reliability(ReliabilityConfig::on())
                .build()
                .unwrap();
            let _ = net.run_to_fixpoint().unwrap();
            // Forge a `child_retire` from a head's parent — the eviction
            // path, whose single dispatch breaks the parent link and
            // forces a re-seek. Redelivered copies must be absorbed by
            // the window, not re-break the healed link.
            let snap = net.snapshot();
            let (victim, parent) = snap
                .heads()
                .filter(|h| !h.is_big && h.alive)
                .find_map(|h| match &h.role {
                    RoleView::Head { parent, .. } if *parent != h.id => {
                        Some((h.id, *parent))
                    }
                    _ => None,
                })
                .expect("a settled network has a child head");
            drop(snap);
            for _ in 0..copies {
                net.engine_mut()
                    .inject_message(
                        parent,
                        victim,
                        Msg::Reliable { seq: 999_999, inner: Box::new(Msg::ChildRetire) },
                        SimDuration::from_millis(5),
                    )
                    .unwrap();
            }
            net.run_for(SimDuration::from_secs(120));
            let dedups = net.engine().trace().proto("reliable_dedup_hits");
            (net.snapshot().structural_signature(), dedups)
        };
        let (sig_once, dedup_once) = run(1);
        let (sig_k, dedup_k) = run(k);
        assert_eq!(
            sig_once, sig_k,
            "seed {seed}: {k} deliveries diverged from 1 delivery"
        );
        assert_eq!(
            dedup_k - dedup_once,
            (k - 1) as u64,
            "seed {seed}: every extra copy must be a dedup hit"
        );
    }
}
