//! A self-contained, dependency-free stand-in for the subset of the
//! `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few primitives it needs: a seedable deterministic generator
//! ([`rngs::StdRng`], here xoshiro256++ seeded through SplitMix64) and the
//! [`Rng`] convenience methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`, but
//! every guarantee the simulator relies on is preserved: identical seeds
//! produce identical streams, distinct seeds produce independent-looking
//! streams, and the output passes the statistical checks in
//! `gs3-sim::rng`. Swapping upstream `rand` back in requires no source
//! changes beyond the manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the argument type of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: uniform over `[0, span)`.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                match (end - start).checked_add(1) {
                    None => rng.next_u64() as $t, // the full integer range
                    Some(span) => start + bounded(rng, span as u64) as $t,
                }
            }
        }
    )*};
}

int_range_impls!(u64, usize, u32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A value drawn from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator upstream `rand` uses, but an equally
    /// deterministic, statistically solid PRNG with a 256-bit state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion — the seeding scheme xoshiro's authors
            // recommend; guarantees a non-zero state for any seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// The raw 256-bit generator state, for canonical state
        /// fingerprinting (the model checker folds it into its
        /// visited-state hash so two states that would draw different
        /// random streams are never merged). Shim-only API: callers must
        /// gate on this crate if upstream `rand` is ever restored.
        #[must_use]
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.005);
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let z = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&z));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(10);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(11);
        let dynrng: &mut dyn RngCore = &mut rng;
        assert!((0.0..1.0).contains(&draw(dynrng)));
    }
}
