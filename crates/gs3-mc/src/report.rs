//! The machine-readable result of one model-checking run.

use std::collections::BTreeSet;

use crate::counterexample::Counterexample;
use crate::properties::Property;
use crate::strategy::McStrategy;

/// Per-property verification tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyStat {
    /// The property.
    pub property: Property,
    /// How many times the predicate was evaluated (terminal states for
    /// terminal properties, search edges for path properties).
    pub checked: u64,
    /// How many evaluations violated it (before dedup/minimization).
    pub violations: u64,
}

/// Everything `gs3 mc` reports, in a shape CI can gate on.
///
/// `to_json` is deterministic: the same `(scenario, seed, strategy,
/// budgets)` produce a byte-identical document, so CI can diff two runs
/// directly.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Frontier discipline used.
    pub strategy: McStrategy,
    /// States expanded (cloned, stepped, and checked).
    pub states_explored: u64,
    /// Candidate child states discarded because their fingerprint was
    /// already visited.
    pub states_deduped: u64,
    /// Peak frontier length.
    pub frontier_peak: u64,
    /// Paths that reached the horizon (terminal states checked).
    pub terminals: u64,
    /// Paths cut short by `max_depth` (forced to run to the horizon).
    pub depth_capped: u64,
    /// True when `max_states` tripped before the frontier drained: the
    /// run is sound but not exhaustive.
    pub state_budget_exhausted: bool,
    /// True when every reachable state within the fault budget was
    /// visited (the frontier drained).
    pub exhaustive: bool,
    /// Distinct structural signatures across terminal states. With zero
    /// fault budget on a deterministic system this has exactly one
    /// element — the cross-validation anchor against the plain simulator.
    pub terminal_signatures: BTreeSet<u64>,
    /// Per-property tallies, in [`Property::all`] order.
    pub properties: Vec<PropertyStat>,
    /// Minimized, deduplicated counterexamples (capped; the per-property
    /// `violations` counters are not).
    pub counterexamples: Vec<Counterexample>,
}

impl McReport {
    /// Serialize to the deterministic report document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"version\":1");
        out.push_str(&format!(",\"scenario\":{}", json_string(&self.scenario)));
        out.push_str(&format!(",\"seed\":{}", self.seed));
        out.push_str(&format!(",\"strategy\":\"{}\"", self.strategy.name()));
        out.push_str(&format!(",\"states_explored\":{}", self.states_explored));
        out.push_str(&format!(",\"states_deduped\":{}", self.states_deduped));
        out.push_str(&format!(",\"frontier_peak\":{}", self.frontier_peak));
        out.push_str(&format!(",\"terminals\":{}", self.terminals));
        out.push_str(&format!(",\"depth_capped\":{}", self.depth_capped));
        out.push_str(&format!(",\"state_budget_exhausted\":{}", self.state_budget_exhausted));
        out.push_str(&format!(",\"exhaustive\":{}", self.exhaustive));
        out.push_str(",\"terminal_signatures\":[");
        for (i, sig) in self.terminal_signatures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&sig.to_string());
        }
        out.push_str("],\"properties\":{");
        for (i, stat) in self.properties.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"checked\":{},\"violations\":{}}}",
                stat.property.name(),
                stat.checked,
                stat.violations
            ));
        }
        out.push_str("},\"counterexamples\":[");
        for (i, ce) in self.counterexamples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ce.to_json());
        }
        out.push_str("]}");
        out
    }

    /// True when at least one property was violated.
    #[must_use]
    pub fn has_violations(&self) -> bool {
        self.properties.iter().any(|p| p.violations > 0)
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_serializes_deterministically() {
        let report = McReport {
            scenario: "pair5".into(),
            seed: 11,
            strategy: McStrategy::Bfs,
            states_explored: 0,
            states_deduped: 0,
            frontier_peak: 1,
            terminals: 0,
            depth_capped: 0,
            state_budget_exhausted: false,
            exhaustive: true,
            terminal_signatures: BTreeSet::new(),
            properties: Property::all()
                .iter()
                .map(|p| PropertyStat { property: *p, checked: 0, violations: 0 })
                .collect(),
            counterexamples: Vec::new(),
        };
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.contains("\"healing_converges\":{\"checked\":0,\"violations\":0}"));
        assert!(gs3_core::json::parse(&json).is_ok());
        assert!(!report.has_violations());
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
