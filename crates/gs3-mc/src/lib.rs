//! # gs3-mc
//!
//! A bounded model checker for the GS³ protocol core.
//!
//! Simulation certifies the protocol along the *one* schedule a seed
//! produces; this crate certifies it along **every** schedule a bounded
//! adversary can produce on a small field. Starting from a converged 5–15
//! node network it explores a tree of forked simulations: at each step the
//! checker branches on the fate of every pending delivery attempt
//! (deliver / drop / duplicate / delay — the pluggable delivery-decision
//! point threaded through `gs3-sim` as per-attempt [`gs3_sim::Fate`]
//! scripts) and on crashing each small node, dedups visited states by the
//! canonical [`gs3_core::harness::Network::fingerprint`], and checks
//! safety properties along every path and convergence properties at every
//! horizon-terminal state.
//!
//! The adversary is *bounded*: each path may contain at most
//! [`Budgets::max_fates`] scripted fates and [`Budgets::max_crashes`]
//! crashes. Once a path's fault budget is spent it runs deterministically
//! to the horizon (the protocol itself is deterministic per seed), so the
//! state space is the set of all placements of ≤ budget faults across the
//! schedule — exhaustively enumerable, and exhaustively enumerated unless
//! a budget trips (the report says which).
//!
//! Every violation is emitted as a minimized [`Counterexample`] whose
//! choice trace converts to an ordinary [`gs3_core::chaos::FaultPlan`]
//! (a `SetScript` of absolute attempt indices plus `CrashNode` events),
//! so counterexamples replay deterministically through `gs3 chaos
//! --plan` and under `cargo test` — no model checker required to
//! reproduce a bug it found.
//!
//! ```rust
//! use gs3_mc::{Budgets, McStrategy, ModelChecker, Scenario};
//!
//! let mut budgets = Budgets::default();
//! budgets.max_states = 300; // keep the doctest fast
//! budgets.max_fates = 0;
//! budgets.max_crashes = 0;
//! let mc = ModelChecker {
//!     scenario: Scenario::by_name("pair5").unwrap(),
//!     strategy: McStrategy::Bfs,
//!     budgets,
//! };
//! let report = mc.run();
//! // Fault-free exploration of a deterministic system: one terminal.
//! assert_eq!(report.terminal_signatures.len(), 1);
//! assert!(report.counterexamples.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counterexample;
pub mod executor;
pub mod properties;
pub mod report;
pub mod scenario;
pub mod strategy;

pub use counterexample::{Choice, Counterexample};
pub use executor::ModelChecker;
pub use properties::Property;
pub use report::{McReport, PropertyStat};
pub use scenario::Scenario;
pub use strategy::{Budgets, McStrategy};
