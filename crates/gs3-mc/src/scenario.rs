//! Pinned small fields for exhaustive exploration.
//!
//! Every scenario places each node explicitly (no Poisson sampling) on a
//! jitter-free ideal radio, so the only randomness left in the system is
//! the protocol's own seeded RNG — the state space is a function of
//! `(scenario, seed)` and nothing else. Fields are laid out around the
//! big node at the origin: a central cell plus one associate-backed cell
//! per occupied band-1 ideal location (`head_spacing(R) ≈ 138.6` out, at
//! multiples of 60° for the default zero reference direction).

use gs3_core::config::ReliabilityConfig;
use gs3_core::harness::{Network, NetworkBuilder, RunOutcome};
use gs3_geometry::Point;
use gs3_sim::radio::RadioModel;
use gs3_sim::telemetry::RecorderMode;
use gs3_sim::SimDuration;

/// Ideal cell radius shared by all scenarios.
const R: f64 = 80.0;
/// Radius tolerance shared by all scenarios.
const R_T: f64 = 18.0;
/// Flight-recorder ring capacity while the checker steps. Only the
/// events of a single engine step ever sit in the ring (the executor
/// drains it after each step), so it stays small.
pub(crate) const RING: usize = 512;

/// A named, fully-pinned initial field.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable name (report key, CLI argument, fixture reference).
    pub name: &'static str,
    /// Engine seed; part of the state-space identity.
    pub seed: u64,
    /// Whether the reliable control-plane (acks, dedup, detectors) is on.
    /// Required by the dedup property; off elsewhere to keep the
    /// per-step attempt fan-out small.
    pub reliability: bool,
    /// Explicit small-node positions (the big node sits at the origin).
    pub nodes: Vec<Point>,
}

impl Scenario {
    /// All shipped scenarios, smallest first. All are expected green
    /// under the default budgets; [`Scenario::sparse7`] deliberately
    /// violates the density assumption and turns red when the healing
    /// bound is tightened below its ~18 s worst case.
    #[must_use]
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::pair5(),
            Scenario::triangle9(),
            Scenario::rel7(),
            Scenario::grid15(),
            Scenario::sparse7(),
        ]
    }

    /// Look a scenario up by its stable name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name == name)
    }

    /// 5 nodes, two cells (central + east band-1), reliability off.
    /// The smallest field with a head-to-head edge to perturb.
    #[must_use]
    pub fn pair5() -> Scenario {
        Scenario {
            name: "pair5",
            seed: 11,
            reliability: false,
            nodes: vec![
                // Central cell associates.
                Point::new(10.0, 8.0),
                Point::new(-12.0, 5.0),
                // East band-1 cell: candidate pinned within R_t of the
                // ideal location (≈138.6, 0) plus two associates.
                Point::new(138.0, 0.0),
                Point::new(150.0, 10.0),
                Point::new(128.0, -14.0),
            ],
        }
    }

    /// 9 nodes, four cells in a triangle around the big node,
    /// reliability off. Every outer cell keeps at least two head
    /// candidates (nodes within `R_t` of the ideal location), so the
    /// paper's density assumption holds and every single crash is
    /// healable. Compare [`Scenario::sparse7`].
    #[must_use]
    pub fn triangle9() -> Scenario {
        Scenario {
            name: "triangle9",
            seed: 23,
            reliability: false,
            nodes: vec![
                Point::new(8.0, 6.0),
                Point::new(-10.0, -4.0),
                // East cell (OIL ≈ (138.6, 0)).
                Point::new(137.0, 5.0),
                Point::new(125.0, -10.0),
                // North-west cell (OIL ≈ (-69.3, 120)).
                Point::new(-70.0, 118.0),
                Point::new(-60.0, 110.0),
                // South-west cell (OIL ≈ (-69.3, -120)).
                Point::new(-68.0, -122.0),
                Point::new(-75.0, -110.0),
                Point::new(-52.0, -108.0),
            ],
        }
    }

    /// 7 nodes with a **deliberately sparse** east cell: exactly one
    /// node within `R_t` of the ideal location, violating the paper's
    /// density assumption. Crashing that lone candidate forces the slow
    /// healing path — no candidate can take over, so the orphaned
    /// associates must time out, fall back to bootup, and be absorbed
    /// into the (stretched) central cell, which takes ~18 s instead of
    /// the usual 2-6 s candidate takeover. The checker found exactly
    /// this (as `healing_converges` counterexamples under a tight
    /// healing bound); running sparse7 with `heal_window` below 18 s
    /// regenerates the committed counterexample fixture.
    #[must_use]
    pub fn sparse7() -> Scenario {
        Scenario {
            name: "sparse7",
            seed: 53,
            reliability: false,
            nodes: vec![
                Point::new(10.0, 8.0),
                Point::new(-12.0, 5.0),
                // East cell: one candidate, two out-of-tolerance
                // associates that depend on it.
                Point::new(138.0, 0.0),
                Point::new(120.0, -20.0),
                Point::new(155.0, 15.0),
                // North-west cell: two candidates (healable, for
                // contrast within the same run).
                Point::new(-70.0, 119.0),
                Point::new(-62.0, 112.0),
            ],
        }
    }

    /// 7 nodes, three cells, **reliability on** — the field for the
    /// dedup-window and quarantine properties.
    #[must_use]
    pub fn rel7() -> Scenario {
        Scenario {
            name: "rel7",
            seed: 37,
            reliability: true,
            nodes: vec![
                Point::new(12.0, 0.0),
                Point::new(-8.0, 10.0),
                // East cell.
                Point::new(138.0, 2.0),
                Point::new(125.0, 18.0),
                Point::new(150.0, -8.0),
                // North-west cell.
                Point::new(-70.0, 119.0),
                Point::new(-52.0, 105.0),
            ],
        }
    }

    /// 15 nodes, five cells, reliability on — the largest shipped field,
    /// at the top of the tractable range under the default budgets.
    #[must_use]
    pub fn grid15() -> Scenario {
        Scenario {
            name: "grid15",
            seed: 41,
            reliability: true,
            nodes: vec![
                Point::new(14.0, 4.0),
                Point::new(-9.0, 12.0),
                Point::new(2.0, -16.0),
                // East cell (OIL ≈ (138.6, 0)).
                Point::new(137.0, 3.0),
                Point::new(122.0, 20.0),
                Point::new(148.0, -12.0),
                // North-east cell (OIL ≈ (69.3, 120)).
                Point::new(70.0, 121.0),
                Point::new(58.0, 104.0),
                Point::new(85.0, 109.0),
                // West cell (OIL ≈ (-138.6, 0)).
                Point::new(-137.0, -4.0),
                Point::new(-120.0, 15.0),
                Point::new(-150.0, 8.0),
                // South-east cell (OIL ≈ (69.3, -120)).
                Point::new(68.0, -119.0),
                Point::new(55.0, -103.0),
                Point::new(82.0, -110.0),
            ],
        }
    }

    /// Deploy the field, run it to its configuration fixpoint, and arm
    /// the flight recorder for oracle collection. The returned network is
    /// the checker's root state.
    ///
    /// # Panics
    ///
    /// Panics if the pinned field fails to configure — that is a bug in
    /// the scenario definition, not a protocol property violation.
    #[must_use]
    pub fn build(&self) -> Network {
        // A jitter-free radio: `RadioModel::latency` draws no RNG when
        // jitter is zero, so delivery order is a pure function of
        // geometry and the checker's branching stays canonical.
        let mut radio = RadioModel::ideal(gs3_geometry::coordination_radius(R, R_T) * 1.05);
        radio.jitter = SimDuration::ZERO;

        let mut builder = NetworkBuilder::new()
            .ideal_radius(R)
            .radius_tolerance(R_T)
            .area_radius(180.0)
            .seed(self.seed)
            .radio(radio);
        if self.reliability {
            builder = builder.reliability(ReliabilityConfig::on());
        }
        for pos in &self.nodes {
            builder = builder.with_small_node(*pos);
        }
        let mut net = builder.build().expect("scenario geometry is valid");
        let outcome = net.run_to_fixpoint().expect("pinned scenario configures");
        assert!(
            matches!(outcome, RunOutcome::Fixpoint { .. }),
            "scenario {} failed to reach a configuration fixpoint: {outcome:?}",
            self.name
        );
        // Arm the recorder only now: the ring starts empty, so the first
        // drained batch contains exactly the first checked step's events.
        net.engine_mut().set_recording(RecorderMode::Full { capacity: RING });
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_every_scenario() {
        for s in Scenario::all() {
            assert_eq!(Scenario::by_name(s.name), Some(s.clone()));
        }
        assert!(Scenario::by_name("nope").is_none());
    }

    #[test]
    fn scenario_sizes_span_five_to_fifteen() {
        let sizes: Vec<usize> = Scenario::all().iter().map(|s| s.nodes.len()).collect();
        assert_eq!(sizes, vec![5, 9, 7, 15, 7]);
    }

    #[test]
    fn every_scenario_converges() {
        for s in Scenario::all() {
            let net = s.build();
            assert!(net.check_invariants().is_empty(), "{} not legal at fixpoint", s.name);
            let heads = net.snapshot().heads().filter(|h| h.alive).count();
            assert!(heads >= 2, "{} should form at least two cells, got {heads}", s.name);
        }
    }
}
