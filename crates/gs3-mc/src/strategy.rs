//! Exploration order and exploration budgets.

use std::str::FromStr;

use gs3_sim::SimDuration;

/// Frontier discipline for the bounded search.
///
/// Both strategies visit the same state set when the search runs to
/// exhaustion; they differ in which counterexample surfaces first and in
/// peak frontier memory. BFS finds a *shortest* (fewest-choice) violation
/// and is the default; DFS bounds frontier size by the path depth and
/// reaches deep terminals sooner under a tight state budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McStrategy {
    /// Breadth-first: pop the oldest frontier entry (queue).
    Bfs,
    /// Depth-first: pop the newest frontier entry (stack).
    Dfs,
}

impl McStrategy {
    /// Lowercase name, as accepted by [`FromStr`] and printed in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            McStrategy::Bfs => "bfs",
            McStrategy::Dfs => "dfs",
        }
    }
}

impl FromStr for McStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bfs" => Ok(McStrategy::Bfs),
            "dfs" => Ok(McStrategy::Dfs),
            other => Err(format!("unknown strategy `{other}` (expected bfs or dfs)")),
        }
    }
}

/// Resource bounds on a single model-checking run.
///
/// The *fault budgets* (`max_fates`, `max_crashes`) define the adversary:
/// a path may deviate from the seed-deterministic schedule at most that
/// many times. The *search budgets* (`max_states`, `max_depth`) cap the
/// exploration itself; if either trips before the frontier drains the run
/// is sound but not exhaustive, and [`crate::McReport::exhaustive`] says
/// so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budgets {
    /// Maximum states expanded (dedup-distinct forks stepped).
    pub max_states: u64,
    /// Maximum choices along one path before it is forced to run
    /// deterministically to the horizon.
    pub max_depth: u32,
    /// Maximum scripted delivery fates (drop / duplicate / delay) per path.
    pub max_fates: u32,
    /// Maximum node crashes per path.
    pub max_crashes: u32,
    /// Maximum faults of *any* kind per path. This is the knob that
    /// keeps exhaustion tractable: with the default of 1 the checker
    /// enumerates every single-fault schedule (each fate placement and
    /// each crash placement, independently), which is quadratic in
    /// schedule length rather than exponential.
    pub max_path_faults: u32,
    /// Wall-clock (simulated) horizon: paths stop branching past it and
    /// terminal properties are checked on the state reached at this time.
    pub horizon: SimDuration,
    /// The healing bound: every injected fault extends its path's
    /// deadline to at least `fault time + heal_window`, so "healing
    /// converges" always grants the protocol this much time after the
    /// *last* fault — a fault injected just before the horizon is not a
    /// free violation. The default covers the slowest single-fault
    /// healing observed on the shipped scenarios (18 s: failure
    /// detection, bootup re-scan, and boundary-cell absorption) with
    /// margin.
    pub heal_window: SimDuration,
    /// The delay applied by a `Fate::Delay` branch. One representative
    /// delay keeps the branching factor finite; it is chosen shorter than
    /// a retransmission interval so a delayed message races its own
    /// retransmit rather than vanishing.
    pub delay: SimDuration,
}

impl Default for Budgets {
    fn default() -> Self {
        Budgets {
            max_states: 50_000,
            max_depth: 4_000,
            max_fates: 1,
            max_crashes: 1,
            max_path_faults: 1,
            horizon: SimDuration::from_secs(40),
            heal_window: SimDuration::from_secs(25),
            delay: SimDuration::from_millis(800),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parses_both_cases() {
        assert_eq!("bfs".parse::<McStrategy>().unwrap(), McStrategy::Bfs);
        assert_eq!("DFS".parse::<McStrategy>().unwrap(), McStrategy::Dfs);
        assert!("dijkstra".parse::<McStrategy>().is_err());
        assert_eq!(McStrategy::Bfs.name(), "bfs");
    }

    #[test]
    fn default_budgets_are_single_fault() {
        let b = Budgets::default();
        assert_eq!(b.max_fates, 1);
        assert_eq!(b.max_crashes, 1);
        assert_eq!(b.max_path_faults, 1);
        assert!(b.delay < SimDuration::from_secs(2), "delay must race the retransmit");
    }
}
