//! Violation traces and their conversion-ready form.

use gs3_core::chaos::FaultPlan;
use gs3_sim::faults::Fate;

use crate::properties::Property;

/// One branching decision along a search path.
///
/// A path is a sequence of choices applied to the scenario's converged
/// root state; replaying the same sequence reproduces the same final
/// state bit-for-bit (the simulation is deterministic once fates are
/// scripted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Choice {
    /// Execute the next pending engine event with no interference.
    Step,
    /// Execute the next pending engine event with one delivery attempt
    /// scripted. `offset` is *relative*: the attempt scripted is the one
    /// whose global index is `attempt_count() + offset` at the moment
    /// this choice is applied. Relative encoding keeps a trace valid
    /// when minimization removes earlier choices (absolute indices
    /// would shift).
    Fate {
        /// Attempt-index offset from the live attempt counter.
        offset: u64,
        /// What happens to that attempt.
        fate: Fate,
    },
    /// Crash a node (no engine event is consumed; the crash happens at
    /// the current simulation instant, strictly before the next event).
    Crash {
        /// Raw id of the victim.
        id: u64,
    },
    /// Run deterministically to the horizon. Always the last choice of a
    /// complete path.
    Run,
}

impl Choice {
    fn push_json(&self, out: &mut String) {
        match self {
            Choice::Step => out.push_str("{\"kind\":\"step\"}"),
            Choice::Fate { offset, fate } => {
                out.push_str(&format!("{{\"kind\":\"fate\",\"offset\":{offset},"));
                match fate {
                    Fate::Deliver => out.push_str("\"fate\":\"deliver\"}"),
                    Fate::Drop => out.push_str("\"fate\":\"drop\"}"),
                    Fate::Duplicate => out.push_str("\"fate\":\"duplicate\"}"),
                    Fate::Delay(d) => {
                        out.push_str(&format!(
                            "\"fate\":\"delay\",\"delay_us\":{}}}",
                            d.as_micros()
                        ));
                    }
                    Fate::Collide => out.push_str("\"fate\":\"collide\"}"),
                }
            }
            Choice::Crash { id } => out.push_str(&format!("{{\"kind\":\"crash\",\"id\":{id}}}")),
            Choice::Run => out.push_str("{\"kind\":\"run\"}"),
        }
    }
}

/// Serialize a choice trace, run-length-encoding `Step` runs (a
/// minimized trace is typically hundreds of steps, one fault, `Run`):
/// `{"kind":"steps","n":360}`.
fn push_choices_json(out: &mut String, choices: &[Choice]) {
    out.push('[');
    let mut first = true;
    let mut i = 0;
    while i < choices.len() {
        if !first {
            out.push(',');
        }
        first = false;
        if matches!(choices[i], Choice::Step) {
            let mut n = 1usize;
            while i + n < choices.len() && matches!(choices[i + n], Choice::Step) {
                n += 1;
            }
            if n == 1 {
                out.push_str("{\"kind\":\"step\"}");
            } else {
                out.push_str(&format!("{{\"kind\":\"steps\",\"n\":{n}}}"));
            }
            i += n;
        } else {
            choices[i].push_json(out);
            i += 1;
        }
    }
    out.push(']');
}

/// A minimized, replayable property violation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated property.
    pub property: Property,
    /// Human-readable specifics of the violation.
    pub detail: String,
    /// Scenario the trace starts from (by stable name).
    pub scenario: String,
    /// Scenario seed (duplicated here so the file is self-describing).
    pub seed: u64,
    /// The minimized choice trace, for the checker's own replay.
    pub choices: Vec<Choice>,
    /// The same trace as a standalone fault plan: replays through the
    /// chaos harness with no model checker involved.
    pub plan: FaultPlan,
}

impl Counterexample {
    /// Serialize to the counterexample file format: a self-describing
    /// JSON object whose `plan` field is a verbatim [`FaultPlan`]
    /// document (loadable on its own by `FaultPlan::from_json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"version\":1");
        out.push_str(&format!(",\"scenario\":{}", crate::report::json_string(&self.scenario)));
        out.push_str(&format!(",\"seed\":{}", self.seed));
        out.push_str(&format!(",\"property\":\"{}\"", self.property.name()));
        out.push_str(&format!(",\"detail\":{}", crate::report::json_string(&self.detail)));
        out.push_str(",\"choices\":");
        push_choices_json(&mut out, &self.choices);
        out.push_str(",\"plan\":");
        out.push_str(&self.plan.to_json());
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs3_sim::SimDuration;

    #[test]
    fn counterexample_json_is_self_describing() {
        let ce = Counterexample {
            property: Property::HealingConverges,
            detail: "head 3 \"lost\"".into(),
            scenario: "pair5".into(),
            seed: 11,
            choices: vec![
                Choice::Step,
                Choice::Step,
                Choice::Step,
                Choice::Fate { offset: 2, fate: Fate::Drop },
                Choice::Step,
                Choice::Fate { offset: 0, fate: Fate::Delay(SimDuration::from_millis(800)) },
                Choice::Crash { id: 4 },
                Choice::Run,
            ],
            plan: FaultPlan::new(),
        };
        let json = ce.to_json();
        assert!(json.starts_with("{\"version\":1,\"scenario\":\"pair5\""));
        assert!(json.contains("\"property\":\"healing_converges\""));
        assert!(json.contains("{\"kind\":\"steps\",\"n\":3}"));
        assert!(json.contains("{\"kind\":\"step\"},{\"kind\":\"fate\",\"offset\":0"));
        assert!(json.contains("{\"kind\":\"fate\",\"offset\":2,\"fate\":\"drop\"}"));
        assert!(json.contains("\"fate\":\"delay\",\"delay_us\":800000}"));
        assert!(json.contains("{\"kind\":\"crash\",\"id\":4}"));
        // The embedded plan must itself be a valid FaultPlan document.
        let plan_at = json.find("\"plan\":").unwrap() + "\"plan\":".len();
        let plan_doc = &json[plan_at..json.len() - 1];
        assert!(FaultPlan::from_json(plan_doc).is_ok());
        // And the whole file parses as JSON.
        assert!(gs3_core::json::parse(&json).is_ok());
    }
}
