//! The checked properties, as predicates over forked network states.
//!
//! Two kinds:
//!
//! * **Terminal** properties are evaluated once a path reaches the
//!   horizon (or quiesces): they assert that whatever faults the path
//!   injected, the network *healed back* into a legal structure.
//! * **Path** properties are evaluated along every edge of the search
//!   tree. The only current path property, [`Property::NoDedupReadmit`],
//!   is checked by the executor itself against the `rel_apply` delivery
//!   oracle (a `(receiver, sender‖seq)` pair must be applied at most once
//!   per path), so its `check_terminal` is vacuous.

use std::collections::BTreeMap;

use gs3_core::harness::Network;
use gs3_core::snapshot::RoleView;
use gs3_core::state::Role;

/// One verifiable claim about the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Property {
    /// Every terminal state satisfies the paper's dynamic invariants —
    /// self-healing converged within the horizon, whatever the adversary
    /// did within its fault budget.
    HealingConverges,
    /// No two live heads ever claim the same cell (ideal locations equal
    /// at millimetre resolution) in a terminal state.
    SingleHeadPerCell,
    /// No live head is still quarantined in a terminal state while the
    /// big node is alive: quarantine is a transient degradation, not a
    /// stable configuration.
    QuarantineDrains,
    /// The reliable-delivery dedup window never re-admits a sequence
    /// number it already applied, under any reordering, duplication, or
    /// loss the adversary can script. Checked per-edge via the
    /// `rel_apply` oracle.
    NoDedupReadmit,
}

impl Property {
    /// All properties, in report order.
    #[must_use]
    pub fn all() -> &'static [Property] {
        &[
            Property::HealingConverges,
            Property::SingleHeadPerCell,
            Property::QuarantineDrains,
            Property::NoDedupReadmit,
        ]
    }

    /// Stable snake_case name used in reports and counterexample files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Property::HealingConverges => "healing_converges",
            Property::SingleHeadPerCell => "single_head_per_cell",
            Property::QuarantineDrains => "quarantine_drains",
            Property::NoDedupReadmit => "no_dedup_readmit",
        }
    }

    /// Whether the property is evaluated at horizon-terminal states
    /// (`true`) or along every search edge (`false`).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, Property::NoDedupReadmit)
    }

    /// Evaluate a terminal property against a terminal state. Returns a
    /// human-readable violation detail, or `None` if the property holds.
    /// Path properties always return `None` here.
    #[must_use]
    pub fn check_terminal(self, net: &Network) -> Option<String> {
        match self {
            Property::HealingConverges => {
                let violations = net.check_invariants();
                if violations.is_empty() {
                    None
                } else {
                    // The first violation is detail enough; the replayed
                    // FaultPlan reproduces the full list.
                    Some(format!(
                        "{} invariant violation(s) at horizon; first: {}",
                        violations.len(),
                        violations[0]
                    ))
                }
            }
            Property::SingleHeadPerCell => {
                let snap = net.snapshot();
                // Quantize ideal locations to millimetres, exactly as the
                // structural signature does, so float noise cannot split
                // one cell into two keys.
                let mut cells: BTreeMap<(i64, i64), Vec<u64>> = BTreeMap::new();
                for head in snap.heads().filter(|h| h.alive) {
                    if let RoleView::Head { oil, .. } = &head.role {
                        let key = (quant_mm(oil.x), quant_mm(oil.y));
                        cells.entry(key).or_default().push(head.id.raw());
                    }
                }
                cells.into_iter().find(|(_, heads)| heads.len() > 1).map(|(key, heads)| {
                    format!(
                        "cell at OIL ({:.3}, {:.3}) has {} live heads: {:?}",
                        key.0 as f64 / 1000.0,
                        key.1 as f64 / 1000.0,
                        heads.len(),
                        heads
                    )
                })
            }
            Property::QuarantineDrains => {
                let eng = net.engine();
                if !eng.is_alive(net.big_id()).unwrap_or(false) {
                    // Without a root there is nothing to re-attach to;
                    // staying quarantined is the correct behaviour.
                    return None;
                }
                for id in eng.alive_ids() {
                    let Ok(node) = eng.node(id) else { continue };
                    if let Role::Head(h) = node.role() {
                        if h.quarantined {
                            return Some(format!(
                                "head {} still quarantined at horizon with big node alive",
                                id.raw()
                            ));
                        }
                    }
                }
                None
            }
            Property::NoDedupReadmit => None,
        }
    }
}

fn quant_mm(v: f64) -> i64 {
    (v * 1000.0).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let names: Vec<_> = Property::all().iter().map(|p| p.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        assert_eq!(names[0], "healing_converges");
    }

    #[test]
    fn only_dedup_is_a_path_property() {
        for p in Property::all() {
            assert_eq!(p.is_terminal(), *p != Property::NoDedupReadmit);
        }
    }
}
