//! The bounded search itself: fork, branch, dedup, check, minimize.
//!
//! ## State-space model
//!
//! A *state* is a whole forked [`Network`] (engine, nodes, queue, RNG);
//! `Clone` is the save/restore primitive. The root is the scenario's
//! converged fixpoint. From a state the checker branches on:
//!
//! * **Step** — process the next pending engine event untouched;
//! * **Fate** — process it with exactly one delivery attempt scripted to
//!   drop / duplicate / delay (one child per attempt the event makes,
//!   per non-deliver fate), via the per-attempt script threaded through
//!   `gs3-sim`;
//! * **Crash** — fail-stop one alive small node at the current instant
//!   (only when no event is pending at exactly `now`, so the crash time
//!   replays unambiguously as a `FaultPlan` offset).
//!
//! Attempts inside a `Fate` choice are addressed *relative* to the live
//! global attempt counter (`attempt_count() + offset`), so a choice
//! trace stays valid when minimization removes other choices.
//!
//! Once a path has spent its fault budget it no longer branches: the
//! remaining schedule is deterministic, and the path leaps to the
//! horizon in one expansion. Visited-state dedup uses the canonical
//! time-shift-invariant [`Network::fingerprint`]; the search is
//! exhaustive whenever the frontier drains before `max_states` trips.

use std::collections::{BTreeSet, VecDeque};

use gs3_core::chaos::{FaultKind, FaultPlan};
use gs3_core::harness::Network;
use gs3_sim::faults::Fate;
use gs3_sim::telemetry::RecorderMode;
use gs3_sim::{NodeId, SimDuration, SimTime};

use crate::counterexample::{Choice, Counterexample};
use crate::properties::Property;
use crate::report::{McReport, PropertyStat};
use crate::scenario::{Scenario, RING};
use crate::strategy::{Budgets, McStrategy};

/// Maximum counterexamples retained in a report (violation *counters*
/// are never capped).
const MAX_COUNTEREXAMPLES: usize = 8;

/// A configured model-checking run. See the module docs.
#[derive(Debug, Clone)]
pub struct ModelChecker {
    /// The pinned field to explore.
    pub scenario: Scenario,
    /// Frontier discipline.
    pub strategy: McStrategy,
    /// Exploration and fault budgets.
    pub budgets: Budgets,
}

/// One frontier entry: a forked network plus the path that produced it.
#[derive(Debug, Clone)]
struct PathState {
    net: Network,
    depth: u32,
    fates_used: u32,
    crashes_used: u32,
    choices: Vec<Choice>,
    /// This path's terminal instant: the base horizon, extended to
    /// `fault time + heal_window` by every injected fault so late faults
    /// still get their full healing bound.
    deadline: SimTime,
    /// `(receiver, sender‖seq)` pairs the reliable layer applied along
    /// this path — the `NoDedupReadmit` oracle.
    applied: BTreeSet<(u64, u64)>,
}

/// Has this path reached its terminal instant (nothing pending, or the
/// next event is past its deadline)?
fn is_terminal(net: &Network, deadline: SimTime) -> bool {
    match net.engine().next_event_time() {
        None => true,
        Some(t) => t > deadline,
    }
}

/// Drain the flight-recorder ring, returning the `rel_apply` oracle
/// pairs it held. The ring is reset so the next step starts empty.
fn drain_oracle(net: &mut Network) -> Vec<(u64, u64)> {
    let pairs: Vec<(u64, u64)> = {
        let rec = &net.engine().telemetry().recorder;
        let mut held = rec.events().peekable();
        if held.peek().is_none() {
            return Vec::new();
        }
        held.filter(|e| e.kind == "rel_apply").map(|e| (e.node, e.data)).collect()
    };
    net.engine_mut().set_recording(RecorderMode::Counters);
    net.engine_mut().set_recording(RecorderMode::Full { capacity: RING });
    pairs
}

impl ModelChecker {
    /// Run the bounded search and produce the report.
    ///
    /// Deterministic: the same `(scenario, strategy, budgets)` produce a
    /// byte-identical report.
    #[must_use]
    pub fn run(&self) -> McReport {
        let root = self.scenario.build();
        let deadline = root.now() + self.budgets.horizon;
        Explorer::new(self, root, deadline).run()
    }
}

struct Explorer<'a> {
    mc: &'a ModelChecker,
    root: Network,
    base_deadline: SimTime,
    visited: BTreeSet<u128>,
    frontier: VecDeque<PathState>,
    states_explored: u64,
    states_deduped: u64,
    frontier_peak: u64,
    terminals: u64,
    depth_capped: u64,
    state_budget_exhausted: bool,
    terminal_signatures: BTreeSet<u64>,
    stats: Vec<PropertyStat>,
    counterexamples: Vec<Counterexample>,
    ce_seen: BTreeSet<(&'static str, String)>,
}

impl<'a> Explorer<'a> {
    fn new(mc: &'a ModelChecker, root: Network, deadline: SimTime) -> Self {
        let mut visited = BTreeSet::new();
        visited.insert(root.fingerprint());
        let mut frontier = VecDeque::new();
        frontier.push_back(PathState {
            net: root.clone(),
            depth: 0,
            fates_used: 0,
            crashes_used: 0,
            choices: Vec::new(),
            deadline,
            applied: BTreeSet::new(),
        });
        Explorer {
            mc,
            root,
            base_deadline: deadline,
            visited,
            frontier,
            states_explored: 0,
            states_deduped: 0,
            frontier_peak: 1,
            terminals: 0,
            depth_capped: 0,
            state_budget_exhausted: false,
            terminal_signatures: BTreeSet::new(),
            stats: Property::all()
                .iter()
                .map(|p| PropertyStat { property: *p, checked: 0, violations: 0 })
                .collect(),
            counterexamples: Vec::new(),
            ce_seen: BTreeSet::new(),
        }
    }

    fn stat_mut(&mut self, p: Property) -> &mut PropertyStat {
        self.stats.iter_mut().find(|s| s.property == p).expect("all properties have stats")
    }

    fn run(mut self) -> McReport {
        let budgets = self.mc.budgets;
        while let Some(mut path) = match self.mc.strategy {
            McStrategy::Bfs => self.frontier.pop_front(),
            McStrategy::Dfs => self.frontier.pop_back(),
        } {
            if self.states_explored >= budgets.max_states {
                self.state_budget_exhausted = true;
                break;
            }
            self.states_explored += 1;

            if is_terminal(&path.net, path.deadline) {
                self.on_terminal(&mut path);
                continue;
            }
            let faults_used = path.fates_used + path.crashes_used;
            let can_fate =
                path.fates_used < budgets.max_fates && faults_used < budgets.max_path_faults;
            let can_crash =
                path.crashes_used < budgets.max_crashes && faults_used < budgets.max_path_faults;
            if path.depth >= budgets.max_depth || (!can_fate && !can_crash) {
                if path.depth >= budgets.max_depth {
                    self.depth_capped += 1;
                }
                self.leap_to_horizon(&mut path);
                self.on_terminal(&mut path);
                continue;
            }
            self.expand(path, can_fate, can_crash);
        }
        let exhaustive = self.frontier.is_empty() && !self.state_budget_exhausted;
        McReport {
            scenario: self.mc.scenario.name.to_string(),
            seed: self.mc.scenario.seed,
            strategy: self.mc.strategy,
            states_explored: self.states_explored,
            states_deduped: self.states_deduped,
            frontier_peak: self.frontier_peak,
            terminals: self.terminals,
            depth_capped: self.depth_capped,
            state_budget_exhausted: self.state_budget_exhausted,
            exhaustive,
            terminal_signatures: self.terminal_signatures,
            properties: self.stats,
            counterexamples: self.counterexamples,
        }
    }

    /// Expand one live state into its Step, Fate and Crash children.
    fn expand(&mut self, path: PathState, can_fate: bool, can_crash: bool) {
        // Probe: step a fork with attempt logging on to learn which
        // delivery attempts the next event makes. With no script
        // installed every attempt gets its natural fate, so the probe
        // *is* the baseline Step child.
        let mut probe = path.clone();
        probe.net.engine_mut().faults_mut().set_attempt_logging(true);
        probe.net.engine_mut().step();
        probe.net.engine_mut().faults_mut().set_attempt_logging(false);
        let attempts = probe.net.engine_mut().faults_mut().take_attempt_log();
        let count0 = path.net.engine().faults().attempt_count();
        probe.depth += 1;
        probe.choices.push(Choice::Step);
        self.push_child(probe);

        if can_fate {
            for att in &attempts {
                let offset = att.index - count0;
                for fate in [Fate::Drop, Fate::Duplicate, Fate::Delay(self.mc.budgets.delay)] {
                    let mut child = path.clone();
                    child.net.engine_mut().faults_mut().install_script([(att.index, fate)]);
                    child.net.engine_mut().step();
                    child.depth += 1;
                    child.fates_used += 1;
                    child.deadline =
                        child.deadline.max(child.net.now() + self.mc.budgets.heal_window);
                    child.choices.push(Choice::Fate { offset, fate });
                    self.push_child(child);
                }
            }
        }

        if can_crash {
            // Only crash between events: `next_event_time() > now` makes
            // the crash instant unambiguous for FaultPlan replay.
            let now = path.net.now();
            let gap = path.net.engine().next_event_time().is_some_and(|t| t > now);
            if gap {
                let victims: Vec<NodeId> = path
                    .net
                    .engine()
                    .alive_ids()
                    .filter(|id| !path.net.big_ids().contains(id))
                    .collect();
                for id in victims {
                    let mut child = path.clone();
                    child.deadline =
                        child.deadline.max(child.net.now() + self.mc.budgets.heal_window);
                    child.net.kill(id);
                    child.depth += 1;
                    child.crashes_used += 1;
                    child.choices.push(Choice::Crash { id: id.raw() });
                    self.push_child(child);
                }
            }
        }
    }

    /// Oracle-check a freshly stepped child, dedup it, and enqueue it.
    fn push_child(&mut self, mut child: PathState) {
        // Crash children consume no event and record none; draining is a
        // no-op for them.
        let pairs = drain_oracle(&mut child.net);
        if !pairs.is_empty() {
            self.stat_mut(Property::NoDedupReadmit).checked += pairs.len() as u64;
            for pair in pairs {
                if !child.applied.insert(pair) {
                    self.stat_mut(Property::NoDedupReadmit).violations += 1;
                    let detail = format!(
                        "node {} re-applied sender/seq key {:#x}",
                        pair.0, pair.1
                    );
                    self.record_counterexample(Property::NoDedupReadmit, detail, &child.choices);
                    return; // a violating path is not explored further
                }
            }
        }
        let fp = child.net.fingerprint();
        if !self.visited.insert(fp) {
            self.states_deduped += 1;
            return;
        }
        self.frontier.push_back(child);
        self.frontier_peak = self.frontier_peak.max(self.frontier.len() as u64);
    }

    /// Deterministically run a budget-spent path to the horizon,
    /// oracle-checking every step on the way.
    fn leap_to_horizon(&mut self, path: &mut PathState) {
        path.choices.push(Choice::Run);
        while !is_terminal(&path.net, path.deadline) {
            path.net.engine_mut().step();
            let pairs = drain_oracle(&mut path.net);
            if pairs.is_empty() {
                continue;
            }
            self.stat_mut(Property::NoDedupReadmit).checked += pairs.len() as u64;
            for pair in pairs {
                if !path.applied.insert(pair) {
                    self.stat_mut(Property::NoDedupReadmit).violations += 1;
                    let detail =
                        format!("node {} re-applied sender/seq key {:#x}", pair.0, pair.1);
                    let choices = path.choices.clone();
                    self.record_counterexample(Property::NoDedupReadmit, detail, &choices);
                }
            }
        }
    }

    /// Check all terminal properties against a horizon-terminal state.
    fn on_terminal(&mut self, path: &mut PathState) {
        self.terminals += 1;
        self.terminal_signatures.insert(path.net.structural_signature());
        for p in Property::all().iter().copied().filter(|p| p.is_terminal()) {
            self.stat_mut(p).checked += 1;
            if let Some(detail) = p.check_terminal(&path.net) {
                self.stat_mut(p).violations += 1;
                let choices = path.choices.clone();
                self.record_counterexample(p, detail, &choices);
            }
        }
    }

    /// Minimize a violating trace, convert it to a fault plan, and file
    /// the counterexample (deduplicated and capped).
    fn record_counterexample(&mut self, property: Property, detail: String, choices: &[Choice]) {
        if self.counterexamples.len() >= MAX_COUNTEREXAMPLES {
            return;
        }
        if !self.ce_seen.insert((property.name(), detail.clone())) {
            return;
        }
        let minimized = self.minimize(property, choices.to_vec());
        let plan = self.choices_to_plan(&minimized);
        self.counterexamples.push(Counterexample {
            property,
            detail,
            scenario: self.mc.scenario.name.to_string(),
            seed: self.mc.scenario.seed,
            choices: minimized,
            plan,
        });
    }

    /// Greedy trace minimization: neutralize each fault choice (Fate →
    /// Step, Crash → removed) and keep the change whenever the violation
    /// persists; then collapse the trailing fault-free step run into
    /// `Run`. Step choices are never removed — they advance simulated
    /// time, which later choices' timing depends on.
    fn minimize(&self, property: Property, mut choices: Vec<Choice>) -> Vec<Choice> {
        loop {
            let mut changed = false;
            for i in 0..choices.len() {
                let candidate: Vec<Choice> = match choices[i] {
                    Choice::Fate { .. } => {
                        let mut c = choices.clone();
                        c[i] = Choice::Step;
                        c
                    }
                    Choice::Crash { .. } => {
                        let mut c = choices.clone();
                        c.remove(i);
                        c
                    }
                    Choice::Step | Choice::Run => continue,
                };
                if self.replay_violates(property, &candidate) {
                    choices = candidate;
                    changed = true;
                    break;
                }
            }
            if !changed {
                break;
            }
        }
        // Steps after the last fault replay identically under `Run`.
        let last_fault = choices
            .iter()
            .rposition(|c| matches!(c, Choice::Fate { .. } | Choice::Crash { .. }));
        if let Some(i) = last_fault {
            if choices[i + 1..].iter().any(|c| matches!(c, Choice::Step)) {
                let mut collapsed: Vec<Choice> = choices[..=i].to_vec();
                collapsed.push(Choice::Run);
                if self.replay_violates(property, &collapsed) {
                    choices = collapsed;
                }
            }
        }
        choices
    }

    /// Replay a choice trace from the root and re-evaluate the property.
    fn replay_violates(&self, property: Property, choices: &[Choice]) -> bool {
        let (net, dedup_violated) = self.replay(choices);
        match property {
            Property::NoDedupReadmit => dedup_violated,
            p => p.check_terminal(&net).is_some(),
        }
    }

    /// Deterministically re-execute a choice trace from the root state.
    /// Returns the final network and whether the dedup oracle fired.
    fn replay(&self, choices: &[Choice]) -> (Network, bool) {
        let mut net = self.root.clone();
        let mut deadline = self.base_deadline;
        let mut applied: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut dup = false;
        let check = |net: &mut Network, applied: &mut BTreeSet<(u64, u64)>, dup: &mut bool| {
            for pair in drain_oracle(net) {
                if !applied.insert(pair) {
                    *dup = true;
                }
            }
        };
        for choice in choices {
            match choice {
                Choice::Step => {
                    net.engine_mut().step();
                    check(&mut net, &mut applied, &mut dup);
                }
                Choice::Fate { offset, fate } => {
                    let abs = net.engine().faults().attempt_count() + offset;
                    net.engine_mut().faults_mut().install_script([(abs, *fate)]);
                    net.engine_mut().step();
                    deadline = deadline.max(net.now() + self.mc.budgets.heal_window);
                    check(&mut net, &mut applied, &mut dup);
                }
                Choice::Crash { id } => {
                    deadline = deadline.max(net.now() + self.mc.budgets.heal_window);
                    net.kill(NodeId::new(*id));
                }
                Choice::Run => {
                    while !is_terminal(&net, deadline) {
                        net.engine_mut().step();
                        check(&mut net, &mut applied, &mut dup);
                    }
                }
            }
        }
        (net, dup)
    }

    /// Convert a (minimized) trace into a standalone [`FaultPlan`]:
    /// scripted fates become one `SetScript` of *absolute* attempt
    /// indices at offset zero, crashes become `CrashNode` events at
    /// their exact simulated offsets. The conversion replays the trace
    /// to resolve relative attempt offsets and crash times.
    fn choices_to_plan(&self, choices: &[Choice]) -> FaultPlan {
        let mut net = self.root.clone();
        let start = net.now();
        let mut ops: Vec<(u64, Fate)> = Vec::new();
        let mut plan = FaultPlan::new();
        for choice in choices {
            match choice {
                Choice::Step => {
                    net.engine_mut().step();
                }
                Choice::Fate { offset, fate } => {
                    let abs = net.engine().faults().attempt_count() + offset;
                    ops.push((abs, *fate));
                    net.engine_mut().faults_mut().install_script([(abs, *fate)]);
                    net.engine_mut().step();
                }
                Choice::Crash { id } => {
                    let after = net.now().saturating_since(start);
                    plan = plan.at(after, FaultKind::CrashNode { id: NodeId::new(*id) });
                    net.kill(NodeId::new(*id));
                }
                Choice::Run => break,
            }
        }
        if !ops.is_empty() {
            plan = plan.at(SimDuration::ZERO, FaultKind::SetScript { ops });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(strategy: McStrategy, max_fates: u32, max_crashes: u32, max_states: u64) -> McReport {
        let budgets = Budgets {
            max_states,
            max_fates,
            max_crashes,
            horizon: SimDuration::from_secs(12),
            ..Budgets::default()
        };
        ModelChecker { scenario: Scenario::pair5(), strategy, budgets }.run()
    }

    #[test]
    fn fault_free_search_has_single_terminal() {
        let report = tiny(McStrategy::Bfs, 0, 0, 5_000);
        assert!(report.exhaustive, "fault-free pair5 must drain: {report:?}");
        assert_eq!(report.terminals, 1);
        assert_eq!(report.terminal_signatures.len(), 1);
        assert!(!report.has_violations());
        assert_eq!(report.counterexamples.len(), 0);
    }

    #[test]
    fn report_is_deterministic_across_runs() {
        let a = tiny(McStrategy::Bfs, 1, 0, 400);
        let b = tiny(McStrategy::Bfs, 1, 0, 400);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn dfs_and_bfs_visit_the_same_states_on_exhaustion() {
        let bfs = tiny(McStrategy::Bfs, 0, 1, 20_000);
        let dfs = tiny(McStrategy::Dfs, 0, 1, 20_000);
        assert!(bfs.exhaustive && dfs.exhaustive);
        assert_eq!(bfs.states_explored, dfs.states_explored);
        assert_eq!(bfs.terminal_signatures, dfs.terminal_signatures);
    }

    #[test]
    fn crash_branches_survive_healing_check() {
        // Exhaustive single-crash exploration on the smallest field: the
        // protocol must heal every single small-node crash.
        let report = tiny(McStrategy::Bfs, 0, 1, 20_000);
        assert!(report.exhaustive, "single-crash pair5 must drain");
        assert!(report.terminals > 1, "crash branches create terminals");
        let healing = &report.properties[0];
        assert_eq!(healing.property, Property::HealingConverges);
        assert!(healing.checked >= report.terminals);
        assert_eq!(
            healing.violations, 0,
            "single crash must always heal on pair5: {:?}",
            report.counterexamples.iter().map(|c| &c.detail).collect::<Vec<_>>()
        );
    }
}
