//! The structured event model: what one flight-recorder entry looks like.

/// Sentinel for [`Event::peer`] when the event has no peer node.
pub const NO_PEER: u64 = u64::MAX;

/// Coarse event class — the always-on counter granularity. Every event
/// belongs to exactly one class; in counters-only mode the recorder keeps
/// one `u64` per class and nothing else.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventClass {
    /// A message delivered to a node (engine `Deliver` path).
    Delivery,
    /// A timer fired at a node (engine `Timer` path).
    Timer,
    /// A protocol-level event emitted by a node handler via `Ctx::event`.
    Protocol,
    /// A send attempt deferred by carrier sense (engine contention path;
    /// never recorded while contention is disabled).
    MacDefer,
    /// A frame corrupted by an overlapping transmission at the receiver
    /// (engine contention path; never recorded while contention is
    /// disabled).
    MacCollision,
}

impl EventClass {
    /// Number of distinct classes (size of the per-class counter array).
    pub const COUNT: usize = 5;

    /// Dense index for per-class counter arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::Delivery => 0,
            Self::Timer => 1,
            Self::Protocol => 2,
            Self::MacDefer => 3,
            Self::MacCollision => 4,
        }
    }

    /// Stable lower-case name used in exports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Delivery => "delivery",
            Self::Timer => "timer",
            Self::Protocol => "protocol",
            Self::MacDefer => "mac_defer",
            Self::MacCollision => "mac_collision",
        }
    }
}

/// One structured flight-recorder event: *when*, *where*, *what*.
///
/// `kind` is a `&'static str` so recording never allocates; protocol
/// handlers pass string literals ("head_elected", "quarantine_enter", …).
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Simulation time in microseconds.
    pub t_us: u64,
    /// The node the event happened at.
    pub node: u64,
    /// Coarse class (delivery / timer / protocol).
    pub class: EventClass,
    /// Fine-grained kind — message kind, timer kind, or protocol label.
    pub kind: &'static str,
    /// Peer node (message sender, …) or [`NO_PEER`].
    pub peer: u64,
    /// Healing episode this event is causally attributed to; 0 = none.
    pub episode: u32,
    /// Free-form numeric payload (counter value, latency, …).
    pub data: u64,
}

impl Event {
    /// Serialize as a single JSON object (one JSONL line, no trailing
    /// newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t_us\":");
        s.push_str(&self.t_us.to_string());
        s.push_str(",\"node\":");
        s.push_str(&self.node.to_string());
        s.push_str(",\"class\":\"");
        s.push_str(self.class.name());
        s.push_str("\",\"kind\":\"");
        s.push_str(&crate::json_escape(self.kind));
        s.push('"');
        if self.peer != NO_PEER {
            s.push_str(",\"peer\":");
            s.push_str(&self.peer.to_string());
        }
        if self.episode != 0 {
            s.push_str(",\"episode\":");
            s.push_str(&self.episode.to_string());
        }
        if self.data != 0 {
            s.push_str(",\"data\":");
            s.push_str(&self.data.to_string());
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense() {
        assert_eq!(EventClass::Delivery.index(), 0);
        assert_eq!(EventClass::Timer.index(), 1);
        assert_eq!(EventClass::Protocol.index(), 2);
        assert_eq!(EventClass::MacDefer.index(), 3);
        assert_eq!(EventClass::MacCollision.index(), 4);
        assert_eq!(EventClass::MacCollision.index() + 1, EventClass::COUNT);
    }

    #[test]
    fn json_omits_absent_fields() {
        let ev = Event {
            t_us: 5,
            node: 7,
            class: EventClass::Protocol,
            kind: "head_elected",
            peer: NO_PEER,
            episode: 0,
            data: 0,
        };
        assert_eq!(
            ev.to_json(),
            "{\"t_us\":5,\"node\":7,\"class\":\"protocol\",\"kind\":\"head_elected\"}"
        );
    }

    #[test]
    fn json_includes_present_fields() {
        let ev = Event {
            t_us: 1,
            node: 2,
            class: EventClass::Delivery,
            kind: "join_request",
            peer: 3,
            episode: 4,
            data: 9,
        };
        assert!(ev.to_json().contains("\"peer\":3"));
        assert!(ev.to_json().contains("\"episode\":4"));
        assert!(ev.to_json().contains("\"data\":9"));
    }
}
