//! Bounded, deterministic flight recorder.
//!
//! Two modes:
//!
//! * [`RecorderMode::Counters`] (default, always on): only per-class
//!   `u64` counters advance — O(1), no allocation, cache-friendly. This
//!   is the mode every ordinary simulation runs in; its cost is one
//!   array increment per event.
//! * [`RecorderMode::Full`]: additionally keeps the most recent
//!   `capacity` structured [`Event`]s in a drop-oldest ring. Export
//!   paths (`gs3 trace`, `gs3 chaos --timeline`) switch this on.
//!
//! Either way, recording is pure observation: no RNG, no scheduling, no
//! feedback into the simulation.

use std::collections::VecDeque;

use crate::event::{Event, EventClass};

/// Recording mode: cheap counters only, or full ring-buffer capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecorderMode {
    /// Per-class counters only (the always-on default).
    Counters,
    /// Counters plus a drop-oldest ring of the last `capacity` events.
    Full {
        /// Maximum number of events retained; older events are dropped.
        capacity: usize,
    },
}

/// Bounded structured-event recorder. See the module docs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    recording: bool,
    capacity: usize,
    ring: VecDeque<Event>,
    total: u64,
    dropped: u64,
    per_class: [u64; EventClass::COUNT],
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self {
            recording: false,
            capacity: 0,
            ring: VecDeque::new(),
            total: 0,
            dropped: 0,
            per_class: [0; EventClass::COUNT],
        }
    }
}

impl FlightRecorder {
    /// A counters-only recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Switch modes. Entering [`RecorderMode::Full`] pre-allocates the
    /// ring; leaving it drops captured events (counters are kept).
    pub fn set_mode(&mut self, mode: RecorderMode) {
        match mode {
            RecorderMode::Counters => {
                self.recording = false;
                self.capacity = 0;
                self.ring = VecDeque::new();
            }
            RecorderMode::Full { capacity } => {
                let capacity = capacity.max(1);
                self.recording = true;
                self.capacity = capacity;
                self.ring.reserve(capacity.saturating_sub(self.ring.capacity()));
                while self.ring.len() > capacity {
                    self.ring.pop_front();
                    self.dropped += 1;
                }
            }
        }
    }

    /// Is full ring capture enabled? Call sites use this to skip even
    /// *constructing* an [`Event`] in counters-only mode.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Cheap path: count an event of `class` without materializing it.
    #[inline]
    pub fn count_only(&mut self, class: EventClass) {
        self.total += 1;
        self.per_class[class.index()] += 1;
    }

    /// Record a full event (counts it too). In counters-only mode this
    /// degenerates to [`Self::count_only`].
    pub fn record(&mut self, ev: Event) {
        self.total += 1;
        self.per_class[ev.class.index()] += 1;
        if !self.recording {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Events currently held in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Total events observed (counted) since construction.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events evicted from the ring because it was at capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of events observed for one class.
    #[must_use]
    pub fn of_class(&self, class: EventClass) -> u64 {
        self.per_class[class.index()]
    }

    /// Number of events currently retained in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_PEER;

    fn ev(t: u64) -> Event {
        Event {
            t_us: t,
            node: 1,
            class: EventClass::Protocol,
            kind: "x",
            peer: NO_PEER,
            episode: 0,
            data: 0,
        }
    }

    #[test]
    fn counters_mode_counts_but_stores_nothing() {
        let mut r = FlightRecorder::new();
        r.record(ev(1));
        r.count_only(EventClass::Delivery);
        assert_eq!(r.total(), 2);
        assert_eq!(r.of_class(EventClass::Protocol), 1);
        assert_eq!(r.of_class(EventClass::Delivery), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn full_mode_drops_oldest_at_capacity() {
        let mut r = FlightRecorder::new();
        r.set_mode(RecorderMode::Full { capacity: 3 });
        for t in 0..5 {
            r.record(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.events().map(|e| e.t_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn leaving_full_mode_clears_ring_keeps_counters() {
        let mut r = FlightRecorder::new();
        r.set_mode(RecorderMode::Full { capacity: 8 });
        r.record(ev(1));
        r.set_mode(RecorderMode::Counters);
        assert!(r.is_empty());
        assert_eq!(r.total(), 1);
    }
}
