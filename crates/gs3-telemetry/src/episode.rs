//! Causal healing-episode tracking.
//!
//! Every injected perturbation (a `FaultPlan` entry, a node kill, a
//! big-node move) opens an **episode**. The perturbation site seeds a
//! *taint set* — the nodes whose next transmissions are causally part of
//! the episode (for a crash that is the victims' radio neighborhood,
//! since a dead node sends nothing). A message sent by a tainted node
//! carries the episode tag through the engine; a **directed** (unicast)
//! delivery of it taints the receiver one causal hop deeper, up to
//! [`MAX_CAUSAL_DEPTH`]. Broadcast receptions never taint — they are
//! ambient (every radio neighbor hears a beacon), and letting them
//! propagate would flood the closure across the deployment in a few
//! hops. Unicast traffic is the *directed* repair dialogue — org
//! replies, head claims, association acks — so the closure follows the
//! actual healing wave. Together with the depth bound this keeps
//! attribution *local by construction*, matching the form of the
//! paper's locality claims (Theorems 8–13) — if healing really is
//! local, the measured radius is flat in network size, which the
//! `locality` bench demonstrates.
//!
//! Per episode the reducer accumulates: message cost (transmissions by
//! tainted nodes), deliveries, spatial radius in meters (farthest
//! tainted activity from the nearest perturbation origin), causal-hop
//! radius, and — once the chaos harness observes the invariants clean
//! and closes episodes — healing latency.

use std::collections::BTreeMap;

/// Maximum causal propagation depth (hops of message causality from the
/// perturbation site). A constant, network-size-independent bound.
pub const MAX_CAUSAL_DEPTH: u8 = 3;

/// The "no episode" tag.
pub const NO_TAG: u64 = 0;

/// Pack an episode id and causal depth into the `u64` tag that rides a
/// scheduled message. Tag 0 means "no episode" (episode ids start at 1).
#[must_use]
pub const fn pack_tag(episode: u32, depth: u8) -> u64 {
    ((episode as u64) << 8) | depth as u64
}

/// Episode id carried by a tag (0 when the tag is [`NO_TAG`]).
#[must_use]
pub const fn tag_episode(tag: u64) -> u32 {
    (tag >> 8) as u32
}

/// Causal depth carried by a tag.
#[must_use]
pub const fn tag_depth(tag: u64) -> u8 {
    (tag & 0xff) as u8
}

/// One healing episode: the measurable footprint of one perturbation.
#[derive(Clone, Debug, PartialEq)]
pub struct Episode {
    /// Episode id (≥ 1).
    pub id: u32,
    /// Perturbation label, e.g. `"crash_random"`.
    pub label: &'static str,
    /// When the perturbation was injected (µs).
    pub opened_us: u64,
    /// When the harness observed the network healed (µs), if it did.
    pub closed_us: Option<u64>,
    /// Perturbation site(s); radius is measured to the nearest origin.
    pub origins: Vec<(f64, f64)>,
    /// Transmissions causally attributed to this episode.
    pub messages: u64,
    /// Deliveries of attributed messages.
    pub deliveries: u64,
    /// Farthest attributed activity from the nearest origin, meters.
    pub radius_m: f64,
    /// Deepest causal hop reached (≤ [`MAX_CAUSAL_DEPTH`]).
    pub max_depth: u8,
    /// Number of distinct nodes tainted by this episode.
    pub tainted: u64,
}

impl Episode {
    /// Healing latency (close − open) in µs, when the episode closed.
    #[must_use]
    pub fn heal_latency_us(&self) -> Option<u64> {
        self.closed_us.map(|c| c.saturating_sub(self.opened_us))
    }

    /// Serialize as one JSON object. Shared by `gs3 chaos --json`,
    /// `chaos_sweep`, and the `locality` bench so their episode output
    /// is byte-identical for the same run.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"id\":");
        s.push_str(&self.id.to_string());
        s.push_str(",\"label\":\"");
        s.push_str(&crate::json_escape(self.label));
        s.push_str("\",\"opened_us\":");
        s.push_str(&self.opened_us.to_string());
        s.push_str(",\"heal_latency_us\":");
        match self.heal_latency_us() {
            Some(v) => s.push_str(&v.to_string()),
            None => s.push_str("null"),
        }
        s.push_str(",\"messages\":");
        s.push_str(&self.messages.to_string());
        s.push_str(",\"deliveries\":");
        s.push_str(&self.deliveries.to_string());
        s.push_str(",\"radius_m\":");
        s.push_str(&format!("{:.1}", self.radius_m));
        s.push_str(",\"max_depth\":");
        s.push_str(&self.max_depth.to_string());
        s.push_str(",\"tainted\":");
        s.push_str(&self.tainted.to_string());
        s.push('}');
        s
    }

    fn dist_to_nearest_origin(&self, pos: (f64, f64)) -> f64 {
        self.origins
            .iter()
            .map(|o| {
                let dx = o.0 - pos.0;
                let dy = o.1 - pos.1;
                (dx * dx + dy * dy).sqrt()
            })
            .fold(f64::INFINITY, f64::min)
    }

    fn touch(&mut self, pos: (f64, f64), depth: u8) {
        if !self.origins.is_empty() {
            let d = self.dist_to_nearest_origin(pos);
            if d.is_finite() && d > self.radius_m {
                self.radius_m = d;
            }
        }
        if depth > self.max_depth {
            self.max_depth = depth;
        }
    }
}

/// Tracks open episodes and the sticky per-node taint map.
#[derive(Debug, Clone, Default)]
pub struct EpisodeTracker {
    episodes: Vec<Episode>,
    /// node → (episode, causal depth). A node keeps the *first* taint it
    /// acquires for an episode; deeper re-taints don't overwrite.
    taint: BTreeMap<u64, (u32, u8)>,
    open: u32,
}

impl EpisodeTracker {
    /// A tracker with no episodes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new episode; returns its id (≥ 1).
    pub fn open(&mut self, label: &'static str, t_us: u64) -> u32 {
        let id = self.episodes.len() as u32 + 1;
        self.episodes.push(Episode {
            id,
            label,
            opened_us: t_us,
            closed_us: None,
            origins: Vec::new(),
            messages: 0,
            deliveries: 0,
            radius_m: 0.0,
            max_depth: 0,
            tainted: 0,
        });
        self.open += 1;
        id
    }

    /// Record a perturbation site for `episode` (radius is measured to
    /// the nearest origin; multi-site faults add several).
    pub fn add_origin(&mut self, episode: u32, origin: (f64, f64)) {
        if let Some(ep) = self.get_mut(episode) {
            ep.origins.push(origin);
        }
    }

    /// Seed-taint `node` at causal depth 0 (a perturbation-site node).
    pub fn taint_node(&mut self, episode: u32, node: u64) {
        if self.get_mut(episode).is_none() {
            return;
        }
        let prev = self.taint.insert(node, (episode, 0));
        let fresh = !matches!(prev, Some((p, _)) if p == episode);
        if fresh {
            if let Some(ep) = self.get_mut(episode) {
                ep.tainted += 1;
            }
        }
    }

    /// Are any episodes currently open? The engine gates the whole
    /// attribution path on this, so closed-world runs pay nothing.
    #[must_use]
    pub fn any_open(&self) -> bool {
        self.open > 0
    }

    /// The tag a transmission from `node` should carry: the node's taint
    /// if its episode is still open and its depth admits propagation.
    #[must_use]
    pub fn tag_for_sender(&self, node: u64) -> u64 {
        match self.taint.get(&node) {
            Some(&(ep, depth)) => {
                let open = self
                    .episodes
                    .get(ep as usize - 1)
                    .is_some_and(|e| e.closed_us.is_none());
                if open && depth < MAX_CAUSAL_DEPTH {
                    pack_tag(ep, depth)
                } else {
                    NO_TAG
                }
            }
            None => NO_TAG,
        }
    }

    /// The open episode `node` is currently tainted by (0 when none) —
    /// display attribution, independent of the propagation depth bound.
    #[must_use]
    pub fn episode_of(&self, node: u64) -> u32 {
        match self.taint.get(&node) {
            Some(&(ep, _))
                if self
                    .episodes
                    .get(ep as usize - 1)
                    .is_some_and(|e| e.closed_us.is_none()) =>
            {
                ep
            }
            _ => 0,
        }
    }

    /// Account one transmission by a tainted sender at `pos` carrying
    /// `tag`.
    pub fn on_send(&mut self, tag: u64, pos: (f64, f64)) {
        let (ep_id, depth) = (tag_episode(tag), tag_depth(tag));
        if let Some(ep) = self.get_mut(ep_id) {
            ep.messages += 1;
            ep.touch(pos, depth);
        }
    }

    /// Account the delivery of a tagged message to `node` at `pos`.
    ///
    /// Only a **directed** (unicast) delivery pulls the receiver into the
    /// causal closure — it taints one hop deeper (bounded) and extends
    /// the spatial radius. A broadcast reception is ambient: every radio
    /// neighbor of a tainted node hears its periodic beacons, so letting
    /// broadcasts taint would flood the closure across the whole
    /// deployment within [`MAX_CAUSAL_DEPTH`] hops and the measured
    /// radius would just track the deployment boundary. Broadcast
    /// deliveries are still *counted* (they are real attributed
    /// traffic), they just don't propagate.
    pub fn on_delivery(&mut self, tag: u64, node: u64, pos: (f64, f64), directed: bool) {
        let (ep_id, depth) = (tag_episode(tag), tag_depth(tag));
        let Some(ep) = self.get_mut(ep_id) else { return };
        if ep.closed_us.is_some() {
            return;
        }
        ep.deliveries += 1;
        if !directed {
            return;
        }
        let next_depth = depth.saturating_add(1);
        ep.touch(pos, next_depth);
        if next_depth <= MAX_CAUSAL_DEPTH {
            let fresh = match self.taint.get(&node) {
                Some(&(existing, _)) => existing != ep_id,
                None => true,
            };
            if fresh {
                self.taint.insert(node, (ep_id, next_depth));
                if let Some(ep) = self.get_mut(ep_id) {
                    ep.tainted += 1;
                }
            }
        }
    }

    /// Close every open episode at `t_us` (the harness calls this when
    /// the invariants come back clean — healing observed).
    pub fn close_all(&mut self, t_us: u64) {
        if self.open == 0 {
            return;
        }
        for ep in &mut self.episodes {
            if ep.closed_us.is_none() {
                ep.closed_us = Some(t_us);
            }
        }
        self.open = 0;
        self.taint.clear();
    }

    /// All episodes, open and closed, in id order.
    #[must_use]
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Look up one episode by id.
    #[must_use]
    pub fn episode(&self, id: u32) -> Option<&Episode> {
        if id == 0 {
            return None;
        }
        self.episodes.get(id as usize - 1)
    }

    fn get_mut(&mut self, id: u32) -> Option<&mut Episode> {
        if id == 0 {
            return None;
        }
        self.episodes.get_mut(id as usize - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trips() {
        let tag = pack_tag(7, 2);
        assert_eq!(tag_episode(tag), 7);
        assert_eq!(tag_depth(tag), 2);
        assert_eq!(tag_episode(NO_TAG), 0);
    }

    #[test]
    fn taint_propagates_and_bounds_depth() {
        let mut t = EpisodeTracker::new();
        let ep = t.open("crash", 100);
        t.add_origin(ep, (0.0, 0.0));
        t.taint_node(ep, 1);
        assert!(t.any_open());

        // Node 1 unicasts (depth 0) → node 2 tainted at depth 1.
        let tag = t.tag_for_sender(1);
        assert_eq!(tag_depth(tag), 0);
        t.on_send(tag, (0.0, 0.0));
        t.on_delivery(tag, 2, (3.0, 4.0), true);
        assert_eq!(t.episode(ep).unwrap().radius_m, 5.0);
        assert_eq!(t.episode(ep).unwrap().tainted, 2);

        // Walk depth out to the bound.
        let t2 = t.tag_for_sender(2);
        t.on_delivery(t2, 3, (0.0, 0.0), true);
        let t3 = t.tag_for_sender(3);
        t.on_delivery(t3, 4, (0.0, 0.0), true);
        // Node 4 sits at depth 3 == MAX: its sends no longer propagate.
        assert_eq!(t.tag_for_sender(4), NO_TAG);
    }

    #[test]
    fn broadcasts_count_but_never_taint() {
        let mut t = EpisodeTracker::new();
        let ep = t.open("crash", 0);
        t.add_origin(ep, (0.0, 0.0));
        t.taint_node(ep, 1);

        // A tainted node's beacon reaches a distant hearer: the delivery
        // is counted, but the hearer stays outside the causal closure
        // and the radius is untouched.
        let tag = t.tag_for_sender(1);
        t.on_delivery(tag, 2, (60.0, 80.0), false);
        let e = t.episode(ep).unwrap();
        assert_eq!(e.deliveries, 1);
        assert_eq!(e.tainted, 1);
        assert_eq!(e.radius_m, 0.0);
        assert_eq!(t.tag_for_sender(2), NO_TAG);
    }

    #[test]
    fn closing_stops_attribution() {
        let mut t = EpisodeTracker::new();
        let ep = t.open("join", 0);
        t.taint_node(ep, 9);
        t.close_all(500);
        assert!(!t.any_open());
        assert_eq!(t.tag_for_sender(9), NO_TAG);
        assert_eq!(t.episode(ep).unwrap().heal_latency_us(), Some(500));
        // Late deliveries of in-flight tagged messages are ignored.
        t.on_delivery(pack_tag(ep, 0), 10, (1.0, 1.0), true);
        assert_eq!(t.episode(ep).unwrap().deliveries, 0);
    }

    #[test]
    fn episode_json_shape() {
        let mut t = EpisodeTracker::new();
        let ep = t.open("move_big", 10);
        t.add_origin(ep, (1.0, 2.0));
        t.close_all(40);
        let j = t.episode(ep).unwrap().to_json();
        assert!(j.contains("\"label\":\"move_big\""));
        assert!(j.contains("\"heal_latency_us\":30"));
        assert!(j.contains("\"radius_m\":0.0"));
    }
}
