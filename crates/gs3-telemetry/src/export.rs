//! Flight-recorder exporters: JSONL event dump and Chrome-trace
//! (Perfetto-loadable) timeline.

use crate::episode::Episode;
use crate::event::{Event, NO_PEER};

/// Export events as JSON Lines: one event object per line.
#[must_use]
pub fn export_jsonl<'a>(events: impl Iterator<Item = &'a Event>) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Export a Chrome-trace / Perfetto JSON document.
///
/// Layout: every node gets a lane (`pid` 0, `tid` = node id) carrying
/// its events as instants (`"ph":"i"`); episodes render as duration
/// spans (`"ph":"X"`) on a separate process lane (`pid` 1, `tid` =
/// episode id) so they never collide with node 0's event lane. Open
/// episodes are drawn up to `end_us`.
#[must_use]
pub fn export_chrome_trace<'a>(
    events: impl Iterator<Item = &'a Event>,
    episodes: &[Episode],
    end_us: u64,
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        out.push_str(&crate::json_escape(ev.kind));
        out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        out.push_str(&ev.t_us.to_string());
        out.push_str(",\"pid\":0,\"tid\":");
        out.push_str(&ev.node.to_string());
        out.push_str(",\"cat\":\"");
        out.push_str(ev.class.name());
        out.push_str("\",\"args\":{");
        let mut first_arg = true;
        if ev.peer != NO_PEER {
            out.push_str("\"peer\":");
            out.push_str(&ev.peer.to_string());
            first_arg = false;
        }
        if ev.episode != 0 {
            if !first_arg {
                out.push(',');
            }
            out.push_str("\"episode\":");
            out.push_str(&ev.episode.to_string());
            first_arg = false;
        }
        if ev.data != 0 {
            if !first_arg {
                out.push(',');
            }
            out.push_str("\"data\":");
            out.push_str(&ev.data.to_string());
        }
        out.push_str("}}");
    }
    for ep in episodes {
        if !first {
            out.push(',');
        }
        first = false;
        let close = ep.closed_us.unwrap_or(end_us).max(ep.opened_us);
        out.push_str("{\"name\":\"");
        out.push_str(&crate::json_escape(ep.label));
        out.push('#');
        out.push_str(&ep.id.to_string());
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        out.push_str(&ep.opened_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&(close - ep.opened_us).to_string());
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&ep.id.to_string());
        out.push_str(",\"cat\":\"episode\",\"args\":{\"messages\":");
        out.push_str(&ep.messages.to_string());
        out.push_str(",\"deliveries\":");
        out.push_str(&ep.deliveries.to_string());
        out.push_str(",\"radius_m\":");
        out.push_str(&format!("{:.1}", ep.radius_m));
        out.push_str(",\"max_depth\":");
        out.push_str(&ep.max_depth.to_string());
        out.push_str(",\"healed\":");
        out.push_str(if ep.closed_us.is_some() { "true" } else { "false" });
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;

    fn ev() -> Event {
        Event {
            t_us: 10,
            node: 3,
            class: EventClass::Delivery,
            kind: "join_request",
            peer: 5,
            episode: 1,
            data: 0,
        }
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let evs = [ev(), ev()];
        let out = export_jsonl(evs.iter());
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn chrome_trace_has_instants_and_spans() {
        let evs = [ev()];
        let eps = [Episode {
            id: 1,
            label: "crash_random",
            opened_us: 5,
            closed_us: Some(25),
            origins: vec![(0.0, 0.0)],
            messages: 4,
            deliveries: 3,
            radius_m: 12.5,
            max_depth: 2,
            tainted: 6,
        }];
        let out = export_chrome_trace(evs.iter(), &eps, 100);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with("]}"));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"name\":\"crash_random#1\""));
        assert!(out.contains("\"dur\":20"));
        assert!(out.contains("\"radius_m\":12.5"));
    }

    #[test]
    fn open_episode_spans_to_end() {
        let eps = [Episode {
            id: 1,
            label: "join",
            opened_us: 40,
            closed_us: None,
            origins: vec![],
            messages: 0,
            deliveries: 0,
            radius_m: 0.0,
            max_depth: 0,
            tainted: 0,
        }];
        let out = export_chrome_trace([].iter(), &eps, 90);
        assert!(out.contains("\"dur\":50"));
        assert!(out.contains("\"healed\":false"));
    }
}
