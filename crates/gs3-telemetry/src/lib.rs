//! # gs3-telemetry
//!
//! Deterministic observability layer for the GS³ reproduction: a bounded
//! flight recorder for structured simulation events, causal *healing
//! episode* tracking that attributes messages / latency / spatial radius
//! to individual injected perturbations (the empirical counterpart of the
//! paper's locality theorems 8–13), a small registry of log-bucketed
//! histograms, and exporters (JSONL, Chrome-trace/Perfetto).
//!
//! ## Determinism contract
//!
//! Everything in this crate is *pure observation*: recording an event,
//! tagging a message with an episode, or bumping a histogram never draws
//! randomness, never schedules work, and never changes any simulation
//! decision. The engine's scheduled-delivery digest is bit-identical
//! whether the recorder runs in cheap [`RecorderMode::Counters`] mode
//! (the always-on default), full ring-buffer mode, or with episodes open
//! — the workspace asserts this in tests.
//!
//! All state lives in plain deterministic containers (`Vec`, `VecDeque`,
//! `BTreeMap`), so two runs of the same seed produce byte-identical
//! exports, at any thread count of the experiment runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod episode;
pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;

pub use episode::{
    pack_tag, tag_depth, tag_episode, Episode, EpisodeTracker, MAX_CAUSAL_DEPTH, NO_TAG,
};
pub use event::{Event, EventClass, NO_PEER};
pub use export::{export_chrome_trace, export_jsonl};
pub use metrics::{LogHistogram, MetricsRegistry};
pub use recorder::{FlightRecorder, RecorderMode};

/// The full telemetry bundle a simulation engine embeds: flight recorder,
/// episode tracker, and metrics registry, advanced together.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Structured event recorder (always-on counters, opt-in full ring).
    pub recorder: FlightRecorder,
    /// Causal healing-episode tracker.
    pub episodes: EpisodeTracker,
    /// Log-bucketed histograms (delivery latency, queue depth, …).
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// A fresh bundle: counters-only recording, no episodes, empty
    /// histograms.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Escape a string for inclusion inside a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_defaults_to_counters_mode() {
        let t = Telemetry::new();
        assert!(!t.recorder.is_recording());
        assert!(!t.episodes.any_open());
        assert_eq!(t.metrics.delivery_latency_us.count(), 0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
