//! Log-bucketed histograms and the metrics registry.

/// Power-of-two bucketed histogram: value `v` lands in bucket
/// `64 − leading_zeros(v)` (bucket 0 holds exactly `v = 0`), so bucket
/// `i ≥ 1` spans `[2^(i−1), 2^i)`. Constant memory, O(1) record, exact
/// count/sum/max plus ~2× bounded percentiles — enough for latency and
/// depth distributions without pulling in a dependency.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value.
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`0.0 ≤ p ≤ 100.0`); accurate to within the 2× bucket width.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i).saturating_sub(1).min(self.max) };
            }
        }
        self.max
    }

    /// Serialize summary statistics as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"max\":{}}}",
            self.count,
            self.sum,
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max
        )
    }
}

/// The fixed set of engine-level histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// Scheduled radio propagation latency per delivered copy (µs).
    pub delivery_latency_us: LogHistogram,
    /// Event-queue depth sampled once per processed event.
    pub queue_depth: LogHistogram,
    /// Per-episode healing latency (µs), recorded at episode close.
    pub heal_latency_us: LogHistogram,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialize every histogram as one JSON object keyed by metric name.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"delivery_latency_us\":{},\"queue_depth\":{},\"heal_latency_us\":{}}}",
            self.delivery_latency_us.to_json(),
            self.queue_depth.to_json(),
            self.heal_latency_us.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_track_exactly() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
        assert!(h.percentile(50.0) <= 3);
        assert_eq!(h.percentile(100.0), 100);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.to_json(), "{\"count\":0,\"sum\":0,\"mean\":0.0,\"p50\":0,\"p99\":0,\"max\":0}");
    }
}
