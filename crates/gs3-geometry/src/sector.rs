//! Search-region membership tests for `HEAD_ORG`.
//!
//! A head `i` organizing its neighbors searches the region within
//! `√3·R + 2·R_t` of `IL(i)` and between two directions `LD` and `RD`
//! relative to the outgoing reference direction `IL(P(i)) → IL(i)`:
//! `⟨0°, 360°⟩` for the big node, `⟨−60°−α, 60°+α⟩` for other heads, where
//! `α = asin(R_t / (√3·R))` ([`crate::angular_slack`]).

use crate::{Angle, Point, Vec2};

/// An annular sector anchored at an ideal location: the set of points `p`
/// with `|p − origin| ≤ radius` whose bearing from `origin` lies within
/// `[ld, rd]` of the reference direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchRegion {
    origin: Point,
    reference: Angle,
    ld: Angle,
    rd: Angle,
    radius: f64,
    full_circle: bool,
}

impl SearchRegion {
    /// A full-circle search region (the big node's `⟨0°, 360°⟩`).
    #[must_use]
    pub fn full(origin: Point, radius: f64) -> Self {
        SearchRegion {
            origin,
            reference: Angle::ZERO,
            ld: Angle::ZERO,
            rd: Angle::FULL_TURN,
            radius,
            full_circle: true,
        }
    }

    /// A sector from `ld` to `rd` (counter-clockwise sweep from `ld` to
    /// `rd`) relative to `reference`, out to `radius`.
    ///
    /// For GS³ small heads: `reference` is the direction `IL(P(i)) → IL(i)`,
    /// `ld = −60°−α`, `rd = 60°+α`.
    ///
    /// # Panics
    ///
    /// Panics if `rd < ld` or the sweep exceeds a full turn.
    #[must_use]
    pub fn sector(origin: Point, reference: Angle, ld: Angle, rd: Angle, radius: f64) -> Self {
        assert!(rd >= ld, "sector sweep must be non-negative");
        assert!(
            (rd - ld).radians() <= Angle::FULL_TURN.radians() + 1e-12,
            "sector sweep must not exceed a full turn"
        );
        let full_circle = (rd - ld).radians() >= Angle::FULL_TURN.radians() - 1e-12;
        SearchRegion { origin, reference, ld, rd, radius, full_circle }
    }

    /// The GS³ search region for a small head: `⟨−60°−α, 60°+α⟩` around the
    /// outgoing direction `parent_il → own_il`, out to `radius`.
    #[must_use]
    pub fn gs3_head(parent_il: Point, own_il: Point, alpha: Angle, radius: f64) -> Self {
        let reference = (own_il - parent_il).direction();
        let slack = Angle::from_degrees(60.0) + alpha;
        Self::sector(own_il, reference, -slack, slack, radius)
    }

    /// The anchor point of the region.
    #[must_use]
    pub const fn origin(&self) -> Point {
        self.origin
    }

    /// The radial extent of the region.
    #[must_use]
    pub const fn radius(&self) -> f64 {
        self.radius
    }

    /// True when `p` lies inside the region (boundary inclusive).
    ///
    /// The origin itself is considered inside only for full-circle regions —
    /// a head never searches for itself.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        let v = p - self.origin;
        if v.length() > self.radius + 1e-9 {
            return false;
        }
        if self.full_circle {
            return true;
        }
        if v == Vec2::ZERO {
            return false;
        }
        let rel = (v.direction() - self.reference).normalized();
        // Compare against the sweep by shifting so ld maps to zero.
        let sweep = (self.rd - self.ld).radians();
        let off = (rel - self.ld).normalized().radians().rem_euclid(std::f64::consts::TAU);
        off <= sweep + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angular_slack;

    #[test]
    fn full_region_contains_anything_in_range() {
        let r = SearchRegion::full(Point::ORIGIN, 10.0);
        assert!(r.contains(Point::new(5.0, -5.0)));
        assert!(r.contains(Point::ORIGIN));
        assert!(!r.contains(Point::new(20.0, 0.0)));
    }

    #[test]
    fn sector_basic_containment() {
        // 90° sector around +x: [-45°, +45°].
        let s = SearchRegion::sector(
            Point::ORIGIN,
            Angle::ZERO,
            Angle::from_degrees(-45.0),
            Angle::from_degrees(45.0),
            10.0,
        );
        assert!(s.contains(Point::new(5.0, 0.0)));
        assert!(s.contains(Point::new(5.0, 4.9)));
        assert!(!s.contains(Point::new(0.0, 5.0)));
        assert!(!s.contains(Point::new(-5.0, 0.0)));
    }

    #[test]
    fn sector_rotates_with_reference() {
        let s = SearchRegion::sector(
            Point::ORIGIN,
            Angle::from_degrees(90.0),
            Angle::from_degrees(-30.0),
            Angle::from_degrees(30.0),
            10.0,
        );
        assert!(s.contains(Point::new(0.0, 5.0)));
        assert!(!s.contains(Point::new(5.0, 0.0)));
    }

    #[test]
    fn gs3_head_region_spans_pm_60_plus_alpha() {
        let alpha = angular_slack(100.0, 10.0);
        let parent = Point::new(-173.2, 0.0);
        let own = Point::ORIGIN;
        let s = SearchRegion::gs3_head(parent, own, alpha, 200.0);
        // Straight ahead (along +x) is inside.
        assert!(s.contains(Point::new(100.0, 0.0)));
        // 60° off-axis is inside.
        assert!(s.contains(Point::ORIGIN.offset(Angle::from_degrees(60.0), 100.0)));
        assert!(s.contains(Point::ORIGIN.offset(Angle::from_degrees(-60.0), 100.0)));
        // Just within the α margin is inside.
        let margin = Angle::from_degrees(60.0) + alpha - Angle::from_degrees(0.01);
        assert!(s.contains(Point::ORIGIN.offset(margin, 100.0)));
        // Beyond the margin is outside.
        let beyond = Angle::from_degrees(60.0) + alpha + Angle::from_degrees(1.0);
        assert!(!s.contains(Point::ORIGIN.offset(beyond, 100.0)));
        // Behind (toward the parent) is outside.
        assert!(!s.contains(Point::new(-100.0, 0.0)));
    }

    #[test]
    fn boundary_radius_inclusive() {
        let s = SearchRegion::full(Point::ORIGIN, 10.0);
        assert!(s.contains(Point::new(10.0, 0.0)));
    }

    #[test]
    fn origin_excluded_from_sector() {
        let s = SearchRegion::sector(
            Point::ORIGIN,
            Angle::ZERO,
            Angle::from_degrees(-60.0),
            Angle::from_degrees(60.0),
            10.0,
        );
        assert!(!s.contains(Point::ORIGIN));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_inverted_sweep() {
        let _ = SearchRegion::sector(
            Point::ORIGIN,
            Angle::ZERO,
            Angle::from_degrees(45.0),
            Angle::from_degrees(-45.0),
            10.0,
        );
    }
}
