//! The cellular hexagonal lattice: axial coordinates, bands, and
//! ideal-location generation for the diffusing computation.
//!
//! Cell heads in the ideal structure (Figure 1 of the paper) sit on a
//! triangular lattice with spacing `√3·R`; each head's cell is the hexagon of
//! circumradius `R` around it. We index lattice sites with axial coordinates
//! `(q, r)` relative to the big node's cell at `(0, 0)`; the *band* of a cell
//! (its `d`-band in the paper's terms) is the standard hex-ring distance.
//!
//! A [`HexLayout`] fixes the lattice's origin (the big node's IL), cell
//! radius `R`, and orientation (the global reference direction `GR`), and
//! converts between axial coordinates and plane positions.

use crate::{head_spacing, Angle, Point, Vec2};

/// Axial coordinates of a cell in the hexagonal virtual structure.
///
/// `(0, 0)` is the central (0-band) cell holding the big node. The six
/// neighbors of a cell are obtained by adding the six [`Axial::DIRECTIONS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Axial {
    /// First lattice coordinate (along `GR`).
    pub q: i32,
    /// Second lattice coordinate (60° counter-clockwise from `GR`).
    pub r: i32,
}

impl Axial {
    /// The central cell (the big node's 0-band cell).
    pub const CENTER: Axial = Axial { q: 0, r: 0 };

    /// The six neighbor offsets, in counter-clockwise order starting from
    /// the `GR` direction.
    pub const DIRECTIONS: [Axial; 6] = [
        Axial { q: 1, r: 0 },
        Axial { q: 0, r: 1 },
        Axial { q: -1, r: 1 },
        Axial { q: -1, r: 0 },
        Axial { q: 0, r: -1 },
        Axial { q: 1, r: -1 },
    ];

    /// Creates axial coordinates.
    #[must_use]
    pub const fn new(q: i32, r: i32) -> Self {
        Axial { q, r }
    }

    /// The hex-lattice distance to the center — the paper's *band* index
    /// (`d`-band means `d` cells between this cell and the central cell).
    ///
    /// ```rust
    /// # use gs3_geometry::hex::Axial;
    /// assert_eq!(Axial::CENTER.band(), 0);
    /// assert_eq!(Axial::new(2, -1).band(), 2);
    /// ```
    #[must_use]
    pub fn band(self) -> u32 {
        self.distance(Axial::CENTER)
    }

    /// Hex-lattice distance between two cells (minimum number of
    /// neighbor-steps).
    #[must_use]
    pub fn distance(self, other: Axial) -> u32 {
        let dq = self.q - other.q;
        let dr = self.r - other.r;
        let ds = -(dq + dr);
        ((dq.abs() + dr.abs() + ds.abs()) / 2) as u32
    }

    /// The six neighboring cells, counter-clockwise starting from `GR`.
    #[must_use]
    pub fn neighbors(self) -> [Axial; 6] {
        let mut out = [Axial::CENTER; 6];
        for (slot, dir) in out.iter_mut().zip(Self::DIRECTIONS) {
            *slot = self + dir;
        }
        out
    }

    /// All cells of the given band, in ring order (counter-clockwise,
    /// starting from the cell in the `GR` direction). Band 0 yields just the
    /// center.
    #[must_use]
    pub fn ring(band: u32) -> Vec<Axial> {
        if band == 0 {
            return vec![Axial::CENTER];
        }
        let n = band as i32;
        let mut out = Vec::with_capacity(6 * band as usize);
        // Start at the cell `band` steps along direction 0, then walk the six
        // edges of the ring. Each edge direction is DIRECTIONS[(i+2) % 6].
        let mut cur = Axial::new(n, 0);
        for side in 0..6 {
            let step = Self::DIRECTIONS[(side + 2) % 6];
            for _ in 0..n {
                out.push(cur);
                cur = cur + step;
            }
        }
        out
    }

    /// All cells with band ≤ `max_band`, center first, then each ring in
    /// order.
    #[must_use]
    pub fn disk(max_band: u32) -> Vec<Axial> {
        let mut out = Vec::new();
        for b in 0..=max_band {
            out.extend(Self::ring(b));
        }
        out
    }
}

impl std::ops::Add for Axial {
    type Output = Axial;
    fn add(self, rhs: Axial) -> Axial {
        Axial::new(self.q + rhs.q, self.r + rhs.r)
    }
}

impl std::ops::Sub for Axial {
    type Output = Axial;
    fn sub(self, rhs: Axial) -> Axial {
        Axial::new(self.q - rhs.q, self.r - rhs.r)
    }
}

impl std::fmt::Display for Axial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[q={}, r={}]", self.q, self.r)
    }
}

/// A concrete embedding of the hexagonal virtual structure in the plane.
///
/// Fixes the big node's IL (`origin`), the ideal cell radius `R`, and the
/// global reference direction `GR` that orients the lattice (the `q` axis
/// points along `GR`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HexLayout {
    origin: Point,
    r: f64,
    gr: Angle,
}

impl HexLayout {
    /// Creates a layout with the big node's IL at `origin`, ideal cell
    /// radius `r`, and global reference direction `gr`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not strictly positive and finite.
    #[must_use]
    pub fn new(origin: Point, r: f64, gr: Angle) -> Self {
        assert!(r.is_finite() && r > 0.0, "ideal cell radius must be positive");
        HexLayout { origin, r, gr }
    }

    /// The big node's IL.
    #[must_use]
    pub const fn origin(&self) -> Point {
        self.origin
    }

    /// The ideal cell radius `R`.
    #[must_use]
    pub const fn r(&self) -> f64 {
        self.r
    }

    /// The global reference direction `GR`.
    #[must_use]
    pub const fn gr(&self) -> Angle {
        self.gr
    }

    /// Basis vector along axial `q` (head spacing in the `GR` direction).
    fn basis_q(&self) -> Vec2 {
        Vec2::from_polar(self.gr, head_spacing(self.r))
    }

    /// Basis vector along axial `r` (60° counter-clockwise from `GR`).
    fn basis_r(&self) -> Vec2 {
        Vec2::from_polar(self.gr + Angle::from_degrees(60.0), head_spacing(self.r))
    }

    /// The ideal location (cell center) of axial cell `ax`.
    #[must_use]
    pub fn ideal_location(&self, ax: Axial) -> Point {
        self.origin + self.basis_q() * f64::from(ax.q) + self.basis_r() * f64::from(ax.r)
    }

    /// The axial cell whose hexagon contains `p` (ties broken toward the
    /// nearest cell center; exact hexagonal rounding).
    #[must_use]
    pub fn cell_at(&self, p: Point) -> Axial {
        // Invert the basis: p - origin = q*eq + r*er.
        let d = p - self.origin;
        let eq = self.basis_q();
        let er = self.basis_r();
        let det = eq.cross(er);
        debug_assert!(det.abs() > 1e-12);
        let qf = d.cross(er) / det;
        let rf = eq.cross(d) / det;
        axial_round(qf, rf)
    }

    /// Distance from `p` to the IL of the cell that contains it — always at
    /// most `R` in the ideal structure.
    #[must_use]
    pub fn distance_to_own_il(&self, p: Point) -> f64 {
        p.distance(self.ideal_location(self.cell_at(p)))
    }
}

/// Rounds fractional axial coordinates to the containing hex cell
/// (cube-coordinate rounding).
fn axial_round(qf: f64, rf: f64) -> Axial {
    let sf = -qf - rf;
    let mut q = qf.round();
    let mut r = rf.round();
    let s = sf.round();
    let dq = (q - qf).abs();
    let dr = (r - rf).abs();
    let ds = (s - sf).abs();
    if dq > dr && dq > ds {
        q = -r - s;
    } else if dr > ds {
        r = -q - s;
    }
    Axial::new(q as i32, r as i32)
}

/// The six ideal locations neighboring the big node's cell, at distance
/// `√3·R` and angles `gr + k·60°` (`k = 0..6`), counter-clockwise.
///
/// This is `HEAD_SELECT` Step 1 for the big node, whose search region is the
/// full `⟨0°, 360°⟩`.
#[must_use]
pub fn big_node_ideal_locations(big_il: Point, r: f64, gr: Angle) -> Vec<Point> {
    (0..6)
        .map(|k| big_il.offset(gr + Angle::from_degrees(60.0 * f64::from(k)), head_spacing(r)))
        .collect()
}

/// The candidate ideal locations a small head generates in `HEAD_SELECT`
/// Step 1: points at distance `√3·R` from `own_il`, at relative angles
/// `−60°, 0°, +60°` from the outgoing reference direction
/// `IL(P(i)) → IL(i)`.
///
/// The paper's search region for small heads is `⟨−60°−α, 60°+α⟩`; the
/// `±α` margin widens the *node search sector* (see
/// [`crate::sector::SearchRegion`]) but the meaningful neighbor ILs inside
/// the region are exactly these three (consistent with invariant I₂.₃'s
/// bound of at most 3 children per small head). See DESIGN.md §2.
///
/// `parent_il` must differ from `own_il`; if they coincide (only legal for
/// the big node, which should use [`big_node_ideal_locations`]) the reference
/// direction is taken as `GR` = +x.
#[must_use]
pub fn child_ideal_locations(parent_il: Point, own_il: Point, r: f64) -> Vec<Point> {
    let outgoing = (own_il - parent_il).normalized();
    let dir = if outgoing == Vec2::ZERO {
        Angle::ZERO
    } else {
        outgoing.direction()
    };
    [-60.0, 0.0, 60.0]
        .iter()
        .map(|deg| own_il.offset(dir + Angle::from_degrees(*deg), head_spacing(r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> HexLayout {
        HexLayout::new(Point::ORIGIN, 100.0, Angle::ZERO)
    }

    #[test]
    fn ring_sizes() {
        assert_eq!(Axial::ring(0).len(), 1);
        assert_eq!(Axial::ring(1).len(), 6);
        assert_eq!(Axial::ring(4).len(), 24);
    }

    #[test]
    fn ring_members_have_correct_band() {
        for b in 0..5 {
            for ax in Axial::ring(b) {
                assert_eq!(ax.band(), b, "{ax}");
            }
        }
    }

    #[test]
    fn ring_members_unique() {
        let ring = Axial::ring(5);
        let set: std::collections::HashSet<_> = ring.iter().copied().collect();
        assert_eq!(set.len(), ring.len());
    }

    #[test]
    fn disk_counts() {
        // 1 + 6 + 12 + 18 = 37 cells within band 3.
        assert_eq!(Axial::disk(3).len(), 37);
    }

    #[test]
    fn neighbors_are_band_one_from_center() {
        for n in Axial::CENTER.neighbors() {
            assert_eq!(n.band(), 1);
        }
    }

    #[test]
    fn neighbor_distance_is_head_spacing() {
        let l = layout();
        let c = l.ideal_location(Axial::CENTER);
        for n in Axial::CENTER.neighbors() {
            let d = c.distance(l.ideal_location(n));
            assert!((d - head_spacing(100.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn cell_at_roundtrip() {
        let l = layout();
        for ax in Axial::disk(4) {
            assert_eq!(l.cell_at(l.ideal_location(ax)), ax);
        }
    }

    #[test]
    fn cell_at_perturbed_roundtrip() {
        // Points well inside a cell (closer than the inradius √3R/2) resolve
        // to that cell even with an offset.
        let l = layout();
        let inradius = head_spacing(100.0) / 2.0;
        for ax in Axial::disk(3) {
            let p = l.ideal_location(ax) + Vec2::new(0.4 * inradius, -0.3 * inradius);
            assert_eq!(l.cell_at(p), ax, "{ax}");
        }
    }

    #[test]
    fn distance_to_own_il_bounded_by_r() {
        let l = layout();
        // Sample a grid; every point's distance to its cell's IL is ≤ R.
        let mut worst: f64 = 0.0;
        for ix in -20..=20 {
            for iy in -20..=20 {
                let p = Point::new(f64::from(ix) * 25.0, f64::from(iy) * 25.0);
                worst = worst.max(l.distance_to_own_il(p));
            }
        }
        assert!(worst <= 100.0 + 1e-9, "worst = {worst}");
    }

    #[test]
    fn big_node_ils_spacing_and_count() {
        let ils = big_node_ideal_locations(Point::new(5.0, -3.0), 50.0, Angle::from_degrees(17.0));
        assert_eq!(ils.len(), 6);
        let c = Point::new(5.0, -3.0);
        for il in &ils {
            assert!((c.distance(*il) - head_spacing(50.0)).abs() < 1e-9);
        }
        // Consecutive ILs are also exactly √3R apart (hexagon edge).
        for k in 0..6 {
            let d = ils[k].distance(ils[(k + 1) % 6]);
            assert!((d - head_spacing(50.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn child_ils_align_with_lattice() {
        // Growing outward from the center along +x, the three child ILs of
        // the (1,0) cell must be lattice points at band 2.
        let l = layout();
        let parent = l.ideal_location(Axial::CENTER);
        let own = l.ideal_location(Axial::new(1, 0));
        let children = child_ideal_locations(parent, own, 100.0);
        assert_eq!(children.len(), 3);
        for ch in children {
            let ax = l.cell_at(ch);
            assert_eq!(ax.band(), 2, "{ax}");
            assert!(ch.distance(l.ideal_location(ax)) < 1e-6);
        }
    }

    #[test]
    fn axial_round_exact_centers() {
        assert_eq!(axial_round(2.0, -1.0), Axial::new(2, -1));
        assert_eq!(axial_round(0.49, 0.0), Axial::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn layout_rejects_zero_radius() {
        let _ = HexLayout::new(Point::ORIGIN, 0.0, Angle::ZERO);
    }
}
