//! Cartesian points and vectors on the deployment plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::Angle;

/// A location on the 2-D deployment plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East-west coordinate.
    pub x: f64,
    /// North-south coordinate.
    pub y: f64,
}

/// A displacement between two [`Point`]s, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// East-west component.
    pub x: f64,
    /// North-south component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// ```rust
    /// # use gs3_geometry::Point;
    /// assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    /// ```
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[must_use]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).length_sq()
    }

    /// The midpoint of the segment from `self` to `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// The point at distance `len` from `self` in direction `dir`.
    #[must_use]
    pub fn offset(self, dir: Angle, len: f64) -> Point {
        self + Vec2::from_polar(dir, len)
    }

    /// True when every coordinate is finite (not NaN / ±∞).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// A vector of length `len` pointing in direction `dir`.
    #[must_use]
    pub fn from_polar(dir: Angle, len: f64) -> Self {
        let (sin, cos) = dir.radians().sin_cos();
        Vec2::new(len * cos, len * sin)
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        self.length_sq().sqrt()
    }

    /// Squared Euclidean length.
    #[must_use]
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (`z` component of the 3-D cross product). Positive
    /// when `other` is counter-clockwise from `self`.
    #[must_use]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The direction of this vector, measured counter-clockwise from the
    /// `+x` axis. Returns [`Angle::ZERO`] for the zero vector.
    #[must_use]
    pub fn direction(self) -> Angle {
        if self == Vec2::ZERO {
            Angle::ZERO
        } else {
            Angle::from_radians(self.y.atan2(self.x))
        }
    }

    /// The signed angle from `self` to `other`, in `(-π, π]`. Positive means
    /// `other` lies counter-clockwise from `self` (matching the paper's sign
    /// convention for the angle `A` formed with the reference direction
    /// `GR`, where clockwise is negative).
    #[must_use]
    pub fn signed_angle_to(self, other: Vec2) -> Angle {
        Angle::from_radians(self.cross(other).atan2(self.dot(other)))
    }

    /// This vector scaled to unit length. Total over all inputs:
    /// [`Vec2::ZERO`] stays zero, and a non-finite length (NaN/∞
    /// coordinates) also yields [`Vec2::ZERO`] instead of propagating NaN
    /// into downstream geometry.
    #[must_use]
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len.total_cmp(&0.0).is_eq() || !len.is_finite() {
            Vec2::ZERO
        } else {
            self / len
        }
    }

    /// This vector rotated counter-clockwise by `angle`.
    #[must_use]
    pub fn rotated(self, angle: Angle) -> Vec2 {
        let (sin, cos) = angle.radians().sin_cos();
        Vec2::new(self.x * cos - self.y * sin, self.x * sin + self.y * cos)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point {
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_symmetry() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-4.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -6.0);
        let m = a.midpoint(b);
        assert!((m.distance(a) - m.distance(b)).abs() < 1e-12);
    }

    #[test]
    fn offset_moves_by_polar() {
        let p = Point::ORIGIN.offset(Angle::from_degrees(90.0), 5.0);
        assert!(p.x.abs() < 1e-12);
        assert!((p.y - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cross_sign_counterclockwise_positive() {
        let east = Vec2::new(1.0, 0.0);
        let north = Vec2::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
    }

    #[test]
    fn signed_angle_quarter_turn() {
        let east = Vec2::new(1.0, 0.0);
        let north = Vec2::new(0.0, 1.0);
        assert!((east.signed_angle_to(north).radians() - FRAC_PI_2).abs() < 1e-12);
        assert!((north.signed_angle_to(east).radians() + FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn signed_angle_opposite_is_pi() {
        let v = Vec2::new(2.0, 1.0);
        let a = v.signed_angle_to(-v).radians().abs();
        assert!((a - PI).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_length() {
        let v = Vec2::new(3.0, -4.0);
        let r = v.rotated(Angle::from_degrees(137.0));
        assert!((r.length() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_stays_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn normalized_is_total_over_non_finite_inputs() {
        // Regression (gs3-lint d3): the zero-length guard used `== 0.0`,
        // so a NaN-coordinate vector slipped past it and propagated NaN
        // through every downstream direction computation. Non-finite
        // inputs must collapse to the same well-defined value as zero.
        assert_eq!(Vec2::new(f64::NAN, 0.0).normalized(), Vec2::ZERO);
        assert_eq!(Vec2::new(0.0, f64::NAN).normalized(), Vec2::ZERO);
        assert_eq!(Vec2::new(f64::INFINITY, 1.0).normalized(), Vec2::ZERO);
        assert_eq!(Vec2::new(f64::NEG_INFINITY, f64::NAN).normalized(), Vec2::ZERO);
        // Finite vectors are untouched.
        let v = Vec2::new(3.0, -4.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direction_roundtrip() {
        for deg in [-170.0, -90.0, -30.0, 0.0, 45.0, 120.0, 179.0] {
            let a = Angle::from_degrees(deg);
            let v = Vec2::from_polar(a, 2.0);
            assert!((v.direction().radians() - a.radians()).abs() < 1e-12, "{deg}");
        }
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
        assert!(!format!("{}", Vec2::ZERO).is_empty());
    }
}
