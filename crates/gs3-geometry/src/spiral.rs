//! The intra-cell spiral of candidate areas (Figure 5 of the paper).
//!
//! For *cell shift*, each original cell `C` is subdivided into candidate
//! areas (CAs): disks of radius `R_t` whose centers form a triangular
//! lattice of spacing `√3·R_t` centered on the cell's *original ideal
//! location* (OIL) — "self-similar to a system being divided into a set of
//! cells". CAs are ordered by the tuple `⟨ICC, ICP⟩`:
//!
//! * **ICC** (*Intra-Cell Cycle*): the hex-ring index of the CA around the
//!   OIL (0 for the OIL itself).
//! * **ICP** (*Intra-Cycle Position*): the position on that ring, numbered
//!   increasing **clockwise** with respect to the global reference direction
//!   `GR`, in `[0, 6·ICC − 1]`.
//!
//! When a cell's candidate set (nodes within `R_t` of the current IL) dies
//! out, `STRENGTHEN_CELL` advances the cell's IL to the next CA in
//! lexicographic `⟨ICC, ICP⟩` order whose candidate set is non-empty. All
//! cells advancing through the same deterministic sequence is what makes the
//! whole head structure *slide coherently* under uniform energy depletion.

use crate::hex::Axial;
use crate::{head_spacing, Angle, Point, Vec2};

/// A position in the intra-cell spiral order.
///
/// Ordered lexicographically: all of cycle `c` precedes all of cycle `c+1`,
/// and within a cycle positions increase clockwise from the `GR` direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct IccIcp {
    /// Intra-Cell Cycle (hex ring index around the OIL).
    pub icc: u32,
    /// Intra-Cycle Position on that ring, in `[0, 6·icc − 1]` (0 when
    /// `icc == 0`).
    pub icp: u32,
}

impl IccIcp {
    /// The original ideal location's spiral position `⟨0, 0⟩`.
    pub const ORIGIN: IccIcp = IccIcp { icc: 0, icp: 0 };

    /// Creates a spiral position.
    #[must_use]
    pub const fn new(icc: u32, icp: u32) -> Self {
        IccIcp { icc, icp }
    }

    /// True when `icp` is a legal position index for `icc`.
    #[must_use]
    pub fn is_valid(self) -> bool {
        if self.icc == 0 {
            self.icp == 0
        } else {
            self.icp < 6 * self.icc
        }
    }
}

impl std::fmt::Display for IccIcp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}, {}⟩", self.icc, self.icp)
    }
}

/// The ordered set of candidate-area centers (potential ILs) of one cell.
///
/// Construction fixes the cell's OIL, the ideal cell radius `R`, the radius
/// tolerance `R_t`, and the orientation `GR`. Only CAs whose centers lie
/// within distance `R` of the OIL are included — by the covering property of
/// the `√3·R_t`-spaced triangular lattice these CAs jointly cover every node
/// of the original cell, as the paper requires for maximal structure
/// lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpiral {
    oil: Point,
    entries: Vec<(IccIcp, Point)>,
}

impl CellSpiral {
    /// Builds the spiral for a cell with original ideal location `oil`,
    /// ideal cell radius `r`, radius tolerance `r_t`, oriented by `gr`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `r_t` is not strictly positive, or `r_t > r`.
    #[must_use]
    pub fn new(oil: Point, r: f64, r_t: f64, gr: Angle) -> Self {
        assert!(r.is_finite() && r > 0.0, "ideal cell radius must be positive");
        assert!(r_t.is_finite() && r_t > 0.0, "radius tolerance must be positive");
        assert!(r_t <= r, "radius tolerance must not exceed the cell radius");
        let spacing = head_spacing(r_t);
        let eq = Vec2::from_polar(gr, spacing);
        // Clockwise ring walk ⇒ the second basis vector points 60° *clockwise*
        // of GR (the paper numbers ICP clockwise w.r.t. GR).
        let er = Vec2::from_polar(gr - Angle::from_degrees(60.0), spacing);
        let to_point = |ax: Axial| oil + eq * f64::from(ax.q) + er * f64::from(ax.r);

        let max_icc = (r / spacing).floor() as u32 + 1;
        let mut entries = Vec::new();
        for icc in 0..=max_icc {
            for (icp, ax) in ring_walk(icc).into_iter().enumerate() {
                let p = to_point(ax);
                if oil.distance(p) <= r + 1e-9 {
                    entries.push((IccIcp::new(icc, icp as u32), p));
                }
            }
        }
        CellSpiral { oil, entries }
    }

    /// The cell's original ideal location (spiral position `⟨0,0⟩`).
    #[must_use]
    pub const fn oil(&self) -> Point {
        self.oil
    }

    /// Number of candidate areas in the cell.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the spiral has no candidate areas (never happens for valid
    /// parameters, since `⟨0,0⟩` is always included).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The IL point for a spiral position, if that position exists within
    /// this cell.
    #[must_use]
    pub fn il_of(&self, key: IccIcp) -> Option<Point> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// The spiral position following `key` in `⟨ICC, ICP⟩` order, or `None`
    /// when `key` is the last CA of the cell.
    #[must_use]
    pub fn next(&self, key: IccIcp) -> Option<IccIcp> {
        let idx = match self.entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        self.entries.get(idx).map(|(k, _)| *k)
    }

    /// Iterates `(position, IL point)` pairs in spiral order.
    pub fn iter(&self) -> impl Iterator<Item = (IccIcp, Point)> + '_ {
        self.entries.iter().copied()
    }
}

/// The axial cells of ring `band` in **clockwise** order starting from the
/// `+q` (GR) direction. With the clockwise basis used above this yields the
/// paper's clockwise ICP numbering.
fn ring_walk(band: u32) -> Vec<Axial> {
    // Axial::ring walks counter-clockwise in a counter-clockwise basis; in
    // the *clockwise* basis (er rotated −60°) the identical index walk turns
    // clockwise on the plane, so we can reuse it directly.
    Axial::ring(band)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiral() -> CellSpiral {
        CellSpiral::new(Point::ORIGIN, 100.0, 10.0, Angle::ZERO)
    }

    #[test]
    fn origin_is_first() {
        let s = spiral();
        let first = s.iter().next().unwrap();
        assert_eq!(first.0, IccIcp::ORIGIN);
        assert_eq!(first.1, Point::ORIGIN);
    }

    #[test]
    fn entries_sorted_and_unique() {
        let s = spiral();
        let keys: Vec<_> = s.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn all_keys_valid() {
        for (k, _) in spiral().iter() {
            assert!(k.is_valid(), "{k}");
        }
    }

    #[test]
    fn all_centers_within_r() {
        let s = spiral();
        for (_, p) in s.iter() {
            assert!(Point::ORIGIN.distance(p) <= 100.0 + 1e-6);
        }
    }

    #[test]
    fn covers_the_cell_disk() {
        // Every point within R−R_t of the OIL must be within R_t of some CA
        // center (the covering property cell shift relies on).
        let s = spiral();
        let centers: Vec<Point> = s.iter().map(|(_, p)| p).collect();
        for ix in -9..=9 {
            for iy in -9..=9 {
                let p = Point::new(f64::from(ix) * 10.0, f64::from(iy) * 10.0);
                if Point::ORIGIN.distance(p) > 90.0 {
                    continue;
                }
                let covered = centers.iter().any(|c| c.distance(p) <= 10.0 + 1e-9);
                assert!(covered, "uncovered point {p}");
            }
        }
    }

    #[test]
    fn next_walks_whole_spiral() {
        let s = spiral();
        let mut cur = Some(IccIcp::ORIGIN);
        let mut count = 0;
        while let Some(k) = cur {
            count += 1;
            cur = s.next(k);
        }
        assert_eq!(count, s.len());
    }

    #[test]
    fn next_of_missing_key_finds_successor() {
        let s = spiral();
        // ⟨0, 3⟩ is invalid/absent; successor is the first ring-1 entry.
        let n = s.next(IccIcp::new(0, 3)).unwrap();
        assert_eq!(n.icc, 1);
    }

    #[test]
    fn first_ring_spacing() {
        let s = spiral();
        let ring1: Vec<Point> = s.iter().filter(|(k, _)| k.icc == 1).map(|(_, p)| p).collect();
        assert_eq!(ring1.len(), 6);
        for p in &ring1 {
            assert!((Point::ORIGIN.distance(*p) - head_spacing(10.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn icp_numbering_is_clockwise() {
        let s = spiral();
        let ring1: Vec<(IccIcp, Point)> = s.iter().filter(|(k, _)| k.icc == 1).collect();
        // Position 0 lies along GR (+x); position 1 must be clockwise of it
        // (negative cross product with +x when measured consecutively).
        let p0 = ring1[0].1 - Point::ORIGIN;
        let p1 = ring1[1].1 - Point::ORIGIN;
        assert!(p0.cross(p1) < 0.0, "ICP must advance clockwise");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(IccIcp::new(0, 0) < IccIcp::new(1, 0));
        assert!(IccIcp::new(1, 5) < IccIcp::new(2, 0));
        assert!(IccIcp::new(2, 3) < IccIcp::new(2, 4));
    }

    #[test]
    fn il_of_origin() {
        assert_eq!(spiral().il_of(IccIcp::ORIGIN), Some(Point::ORIGIN));
        assert_eq!(spiral().il_of(IccIcp::new(40, 0)), None);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_rt_larger_than_r() {
        let _ = CellSpiral::new(Point::ORIGIN, 10.0, 20.0, Angle::ZERO);
    }
}
