//! The lexicographic candidate ranking used by `HEAD_SELECT` (Figure 3,
//! Step 4) and by head-shift elections.
//!
//! Every node `k` in the candidate area of an ideal location `j` is ranked
//! by the tuple `⟨d, |A|, A⟩` where `d = dist(j, k)` and `A ∈ (−180°, 180°]`
//! is the signed angle between the global reference direction `GR` and the
//! vector `j → k` (negative when clockwise). Distance has the highest
//! significance; the *lowest* tuple ranks *highest* (best). A stable node-id
//! tiebreak makes the order strict even for geometrically coincident nodes,
//! so elections can never split.

use std::cmp::Ordering;

use crate::{Angle, Point};

/// A rank key: lower compares as better.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankKey {
    /// Distance from the ideal location to the node.
    pub distance: f64,
    /// |A|: absolute angle to `GR`.
    pub abs_angle: f64,
    /// A: signed angle to `GR` in `(−π, π]`.
    pub angle: f64,
    /// Final deterministic tiebreak (node id).
    pub id: u64,
}

impl RankKey {
    /// Computes the rank of node `node` (with stable id `id`) relative to
    /// ideal location `il`, under reference direction `gr`.
    ///
    /// A node exactly at the IL gets angle 0 (best possible at distance 0).
    #[must_use]
    pub fn new(il: Point, node: Point, gr: Angle, id: u64) -> Self {
        let v = node - il;
        let a = if v.length().total_cmp(&0.0).is_eq() {
            0.0
        } else {
            (v.direction() - gr).normalized().radians()
        };
        RankKey { distance: v.length(), abs_angle: a.abs(), angle: a, id }
    }
}

impl Eq for RankKey {}

impl Ord for RankKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance
            .total_cmp(&other.distance)
            .then_with(|| self.abs_angle.total_cmp(&other.abs_angle))
            .then_with(|| self.angle.total_cmp(&other.angle))
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for RankKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects the best (highest-ranked, i.e. minimum [`RankKey`]) candidate
/// from `nodes`, returning its index, or `None` when empty.
///
/// `nodes` yields `(id, position)` pairs; ranking is relative to `il`
/// under reference direction `gr`.
pub fn best_candidate<I>(il: Point, gr: Angle, nodes: I) -> Option<(u64, Point)>
where
    I: IntoIterator<Item = (u64, Point)>,
{
    nodes
        .into_iter()
        .min_by_key(|(id, p)| RankKey::new(il, *p, gr, *id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closer_wins() {
        let il = Point::ORIGIN;
        let gr = Angle::ZERO;
        let near = RankKey::new(il, Point::new(1.0, 0.0), gr, 9);
        let far = RankKey::new(il, Point::new(2.0, 0.0), gr, 1);
        assert!(near < far);
    }

    #[test]
    fn smaller_abs_angle_breaks_distance_tie() {
        let il = Point::ORIGIN;
        let gr = Angle::ZERO;
        let on_axis = RankKey::new(il, Point::new(1.0, 0.0), gr, 9);
        let off_axis = RankKey::new(il, Point::ORIGIN.offset(Angle::from_degrees(30.0), 1.0), gr, 1);
        assert!(on_axis < off_axis);
    }

    #[test]
    fn clockwise_negative_breaks_abs_tie() {
        // Same distance, same |A|: the negative (clockwise) angle sorts
        // first, i.e. wins.
        let il = Point::ORIGIN;
        let gr = Angle::ZERO;
        // Exact mirror points: atan2(-y, x) == -atan2(y, x) bit-for-bit, so
        // |A| ties exactly and the signed angle decides.
        let (s, c) = (0.5, 0.75f64.sqrt());
        let cw = RankKey::new(il, Point::new(c, -s), gr, 9);
        let ccw = RankKey::new(il, Point::new(c, s), gr, 1);
        assert!(cw < ccw);
    }

    #[test]
    fn id_breaks_full_geometric_tie() {
        let il = Point::ORIGIN;
        let gr = Angle::ZERO;
        let p = Point::new(1.0, 1.0);
        let a = RankKey::new(il, p, gr, 1);
        let b = RankKey::new(il, p, gr, 2);
        assert!(a < b);
        assert_ne!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn node_at_il_is_unbeatable() {
        let il = Point::new(3.0, 4.0);
        let gr = Angle::from_degrees(45.0);
        let at = RankKey::new(il, il, gr, 100);
        let near = RankKey::new(il, Point::new(3.0, 4.001), gr, 1);
        assert!(at < near);
    }

    #[test]
    fn best_candidate_picks_minimum() {
        let il = Point::ORIGIN;
        let nodes = vec![
            (1, Point::new(5.0, 0.0)),
            (2, Point::new(1.0, 0.5)),
            (3, Point::new(1.0, -0.5)),
        ];
        // Nodes 2 and 3 are exact mirrors: distance and |A| tie bit-for-bit
        // (atan2 is odd in y), so the clockwise node 3 wins.
        let (id, _) = best_candidate(il, Angle::ZERO, nodes).unwrap();
        assert_eq!(id, 3);
    }

    #[test]
    fn best_candidate_empty_is_none() {
        assert_eq!(best_candidate(Point::ORIGIN, Angle::ZERO, Vec::new()), None);
    }

    #[test]
    fn ranking_stays_total_under_nan() {
        // Regression (gs3-lint d3): the zero-distance test used a plain
        // `== 0.0`, which is not a NaN-total comparison. A candidate with a
        // corrupted (NaN) position must still rank deterministically — NaN
        // distances sort after every finite distance under total_cmp — so
        // an election with a corrupt entry cannot split or panic.
        let il = Point::ORIGIN;
        let gr = Angle::ZERO;
        let corrupt = RankKey::new(il, Point::new(f64::NAN, 1.0), gr, 1);
        let fine = RankKey::new(il, Point::new(50.0, 0.0), gr, 2);
        assert_eq!(corrupt.cmp(&fine), Ordering::Greater, "NaN ranks worst");
        let nodes =
            vec![(1, Point::new(f64::NAN, 1.0)), (2, Point::new(50.0, 0.0))];
        assert_eq!(best_candidate(il, gr, nodes).map(|(id, _)| id), Some(2));
    }

    #[test]
    fn ranking_is_total_order() {
        // total_cmp-based ordering must be transitive on a small sample set.
        let il = Point::ORIGIN;
        let gr = Angle::ZERO;
        let keys: Vec<RankKey> = (0..10)
            .map(|i| {
                let ang = Angle::from_degrees(f64::from(i) * 37.0);
                RankKey::new(il, Point::ORIGIN.offset(ang, 1.0 + f64::from(i % 3)), gr, i as u64)
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
