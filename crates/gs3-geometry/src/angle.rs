//! Plane angles with explicit normalization semantics.

use std::f64::consts::PI;
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A plane angle, stored in radians.
///
/// `Angle` is *not* automatically normalized: adding two angles can produce a
/// value outside `(-π, π]`. Use [`Angle::normalized`] to fold back into the
/// principal range. Comparisons (`PartialOrd`) compare raw radian values.
///
/// Counter-clockwise is positive, matching the paper's convention that the
/// angle `A` formed with the global reference direction `GR` "is negative if
/// it goes clockwise with respect to `GR` and positive if counter-clockwise".
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Angle(f64);

impl Angle {
    /// The zero angle.
    pub const ZERO: Angle = Angle(0.0);
    /// Half a turn (180°).
    pub const HALF_TURN: Angle = Angle(PI);
    /// A full turn (360°).
    pub const FULL_TURN: Angle = Angle(2.0 * PI);

    /// An angle of `rad` radians.
    #[must_use]
    pub const fn from_radians(rad: f64) -> Self {
        Angle(rad)
    }

    /// An angle of `deg` degrees.
    #[must_use]
    pub fn from_degrees(deg: f64) -> Self {
        Angle(deg.to_radians())
    }

    /// The raw radian value.
    #[must_use]
    pub const fn radians(self) -> f64 {
        self.0
    }

    /// The raw value in degrees.
    #[must_use]
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// This angle folded into the principal range `(-π, π]`.
    ///
    /// ```rust
    /// # use gs3_geometry::Angle;
    /// let a = Angle::from_degrees(270.0).normalized();
    /// assert!((a.degrees() + 90.0).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn normalized(self) -> Angle {
        // Already-normalized values pass through bit-exactly; rem_euclid on
        // in-range negatives would otherwise shift them by an ulp, which
        // breaks the exact mirror symmetry the HEAD_SELECT ranking relies on.
        if self.0 > -PI && self.0 <= PI {
            return self;
        }
        let mut r = self.0.rem_euclid(2.0 * PI);
        if r > PI {
            r -= 2.0 * PI;
        }
        Angle(r)
    }

    /// Absolute value of the raw radians.
    #[must_use]
    pub fn abs(self) -> Angle {
        Angle(self.0.abs())
    }

    /// The smallest absolute angular separation between `self` and `other`,
    /// in `[0, π]`.
    #[must_use]
    pub fn separation(self, other: Angle) -> Angle {
        (self - other).normalized().abs()
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle(self.0 + rhs.0)
    }
}

impl Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle(self.0 - rhs.0)
    }
}

impl Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle(-self.0)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}°", self.degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_principal_range() {
        for deg in [-720.0, -359.0, -181.0, -180.0, 0.0, 180.0, 181.0, 540.0] {
            let n = Angle::from_degrees(deg).normalized();
            assert!(n.radians() > -PI - 1e-12 && n.radians() <= PI + 1e-12, "{deg}");
        }
    }

    #[test]
    fn normalized_pi_maps_to_pi() {
        // 180° is the inclusive end of the principal range.
        let n = Angle::from_degrees(180.0).normalized();
        assert!((n.radians() - PI).abs() < 1e-12);
        // -180° also folds to +π (the representative of the half-turn class).
        let m = Angle::from_degrees(-180.0).normalized();
        assert!((m.radians() - PI).abs() < 1e-12);
    }

    #[test]
    fn separation_is_symmetric_and_bounded() {
        let a = Angle::from_degrees(170.0);
        let b = Angle::from_degrees(-170.0);
        let s = a.separation(b);
        assert!((s.degrees() - 20.0).abs() < 1e-9);
        assert_eq!(a.separation(b), b.separation(a));
    }

    #[test]
    fn arithmetic() {
        let a = Angle::from_degrees(30.0) + Angle::from_degrees(60.0);
        assert!((a.degrees() - 90.0).abs() < 1e-9);
        let b = -Angle::from_degrees(45.0);
        assert!((b.degrees() + 45.0).abs() < 1e-9);
    }

    #[test]
    fn display_shows_degrees() {
        assert_eq!(format!("{}", Angle::from_degrees(60.0)), "60.000°");
    }
}
