//! # gs3-geometry
//!
//! 2-D geometry and cellular-hexagon lattice math underpinning the GS³
//! reproduction.
//!
//! The GS³ paper (Zhang & Arora, PODC 2002) configures a dense planar sensor
//! network into a *cellular hexagonal structure*: cluster heads sit (within a
//! tolerance `R_t`) on a triangular lattice of spacing `√3·R`, every head owns
//! the hexagonal cell of circumradius `R` around its *ideal location* (IL),
//! and each cell is internally subdivided into candidate areas (CAs) ordered
//! along an intra-cell spiral (`⟨ICC, ICP⟩`) used for *cell shift*.
//!
//! This crate provides the pure-math substrate for all of that:
//!
//! * [`Point`] / [`Vec2`] / [`Angle`] — plain 2-D primitives.
//! * [`hex`] — axial hex coordinates, band (ring) distance, lattice ⇄
//!   cartesian conversion, and ideal-location generation for the diffusing
//!   computation ([`hex::child_ideal_locations`]).
//! * [`spiral`] — the `⟨ICC, ICP⟩` intra-cell spiral of candidate areas from
//!   Figure 5 of the paper.
//! * [`sector`] — search-region membership tests (`⟨LD, RD⟩` sectors of an
//!   annulus) used by `HEAD_ORG`.
//! * [`rank`] — the lexicographic `⟨d, |A|, A⟩` candidate ranking used by
//!   `HEAD_SELECT`.
//!
//! Everything here is deterministic, allocation-light, and free of I/O so it
//! can be property-tested exhaustively.
//!
//! # Example
//!
//! ```rust
//! use gs3_geometry::{hex, Angle, Point};
//!
//! // The six ideal locations around the big node, R = 100:
//! let ils = hex::big_node_ideal_locations(Point::ORIGIN, 100.0, Angle::ZERO);
//! assert_eq!(ils.len(), 6);
//! let spacing = (3.0f64).sqrt() * 100.0;
//! for il in &ils {
//!     assert!((Point::ORIGIN.distance(*il) - spacing).abs() < 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod angle;
pub mod hex;
mod point;
pub mod rank;
pub mod sector;
pub mod spiral;

pub use angle::Angle;
pub use point::{Point, Vec2};

/// `√3`, the ratio between head spacing and the ideal cell radius `R`.
pub const SQRT_3: f64 = 1.732_050_807_568_877_2;

/// Head-lattice spacing for an ideal cell radius `r`: `√3·r`.
///
/// Neighboring cell heads in the ideal structure are exactly this far apart
/// (Corollary 1 bounds the realized spacing within `±2·R_t` of it).
#[must_use]
pub fn head_spacing(r: f64) -> f64 {
    SQRT_3 * r
}

/// Radius of the local-coordination neighborhood: `√3·R + 2·R_t`.
///
/// All GS³ message exchange (HEAD_ORG broadcasts, head responses, heartbeat
/// scope) is confined within this distance — the paper's "local coordination"
/// radius.
#[must_use]
pub fn coordination_radius(r: f64, r_t: f64) -> f64 {
    head_spacing(r) + 2.0 * r_t
}

/// The angular slack `α = asin(R_t / (√3·R))` used to widen search regions.
///
/// A head whose actual position deviates up to `R_t` from its IL subtends at
/// most this angle when viewed from a neighboring IL at distance `√3·R`;
/// search sectors are widened by `α` on each side so such heads are not
/// missed.
///
/// # Panics
///
/// Panics in debug builds if `r_t > √3·r` (the ratio must be a valid sine).
#[must_use]
pub fn angular_slack(r: f64, r_t: f64) -> Angle {
    let ratio = r_t / head_spacing(r);
    debug_assert!((0.0..=1.0).contains(&ratio), "r_t must be <= sqrt(3)*r");
    Angle::from_radians(ratio.clamp(0.0, 1.0).asin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_spacing_is_sqrt3_r() {
        assert!((head_spacing(100.0) - 173.205_080_756_887_7).abs() < 1e-9);
    }

    #[test]
    fn coordination_radius_adds_two_tolerances() {
        let r = 100.0;
        let r_t = 10.0;
        assert!((coordination_radius(r, r_t) - (SQRT_3 * r + 20.0)).abs() < 1e-12);
    }

    #[test]
    fn angular_slack_matches_asin() {
        let a = angular_slack(100.0, 10.0);
        assert!((a.radians() - (10.0 / (SQRT_3 * 100.0)).asin()).abs() < 1e-12);
    }

    #[test]
    fn angular_slack_zero_tolerance() {
        assert_eq!(angular_slack(50.0, 0.0), Angle::ZERO);
    }
}
