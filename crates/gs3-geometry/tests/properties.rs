//! Randomized property tests of the geometric substrate.
//!
//! Formerly written against `proptest`; the build environment has no
//! registry access, so the same properties are exercised as seeded
//! random-case loops over the in-repo `rand` shim. Each case count is
//! sized so the suite covers at least as many distinct inputs as the
//! proptest defaults did.

use gs3_geometry::hex::{Axial, HexLayout};
use gs3_geometry::rank::RankKey;
use gs3_geometry::sector::SearchRegion;
use gs3_geometry::spiral::CellSpiral;
use gs3_geometry::{angular_slack, head_spacing, Angle, Point, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u32 = 256;

fn rng_for(test: u64) -> StdRng {
    StdRng::seed_from_u64(0x6753_3300 + test)
}

fn angle(rng: &mut StdRng) -> Angle {
    Angle::from_degrees(rng.gen_range(-360.0f64..360.0))
}

fn point(rng: &mut StdRng, extent: f64) -> Point {
    Point::new(rng.gen_range(-extent..extent), rng.gen_range(-extent..extent))
}

/// Axial → cartesian → axial is the identity on lattice points, for any
/// layout orientation and scale.
#[test]
fn lattice_roundtrip() {
    let mut rng = rng_for(1);
    for _ in 0..CASES {
        let q = rng.gen_range(0u32..60) as i32 - 30;
        let r = rng.gen_range(0u32..60) as i32 - 30;
        let layout = HexLayout::new(point(&mut rng, 1000.0), rng.gen_range(1.0f64..500.0), angle(&mut rng));
        let ax = Axial::new(q, r);
        assert_eq!(layout.cell_at(layout.ideal_location(ax)), ax, "axial ({q},{r})");
    }
}

/// Every point resolves to the lattice cell whose center is nearest (ties
/// aside): the distance to the chosen cell's center never exceeds the
/// circumradius R.
#[test]
fn cell_at_within_circumradius() {
    let mut rng = rng_for(2);
    for _ in 0..CASES {
        let scale = rng.gen_range(10.0f64..300.0);
        let layout = HexLayout::new(Point::ORIGIN, scale, angle(&mut rng));
        let p = point(&mut rng, 2000.0);
        assert!(layout.distance_to_own_il(p) <= scale + 1e-6, "point {p}");
    }
}

/// Hex distance is a metric: symmetry and triangle inequality.
#[test]
fn hex_distance_is_metric() {
    let mut rng = rng_for(3);
    let ax = |rng: &mut StdRng| {
        Axial::new(rng.gen_range(0u32..80) as i32 - 40, rng.gen_range(0u32..80) as i32 - 40)
    };
    for _ in 0..CASES {
        let (a, b, c) = (ax(&mut rng), ax(&mut rng), ax(&mut rng));
        assert_eq!(a.distance(b), b.distance(a));
        assert!(a.distance(c) <= a.distance(b) + b.distance(c));
        assert_eq!(a.distance(a), 0);
    }
}

/// The intra-cell spiral enumerates strictly increasing ⟨ICC, ICP⟩ keys,
/// each a valid position, starting at the origin, and its ILs stay within
/// the cell radius.
#[test]
fn spiral_is_strictly_ordered_and_bounded() {
    let mut rng = rng_for(4);
    for _ in 0..64 {
        let r = rng.gen_range(20.0f64..200.0);
        let r_t = r * rng.gen_range(0.05f64..0.5);
        let origin = point(&mut rng, 500.0);
        let spiral = CellSpiral::new(origin, r, r_t, angle(&mut rng));
        let entries: Vec<_> = spiral.iter().collect();
        assert!(!entries.is_empty());
        assert_eq!(entries[0].0, gs3_geometry::spiral::IccIcp::ORIGIN);
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
        for (k, p) in &entries {
            assert!(k.is_valid());
            assert!(origin.distance(*p) <= r + 1e-6);
        }
        // next() walks exactly the same sequence.
        let mut walked = vec![entries[0].0];
        let mut cur = entries[0].0;
        while let Some(n) = spiral.next(cur) {
            walked.push(n);
            cur = n;
        }
        assert_eq!(walked.len(), entries.len());
    }
}

/// Search-region classification is rotation invariant: rotating the whole
/// configuration (region and query point) together never changes
/// membership.
#[test]
fn sector_rotation_invariant() {
    let mut rng = rng_for(5);
    let mut checked = 0;
    while checked < CASES {
        let parent = point(&mut rng, 300.0);
        let rot = angle(&mut rng);
        let probe_ang = angle(&mut rng);
        let probe_dist = rng.gen_range(1.0f64..400.0);
        let r = rng.gen_range(50.0f64..150.0);

        let r_t = r * 0.15;
        let own = parent + Vec2::from_polar(Angle::ZERO, head_spacing(r));
        let alpha = angular_slack(r, r_t);
        let radius = head_spacing(r) + 2.0 * r_t;
        let probe = own + Vec2::from_polar(probe_ang, probe_dist);

        // Boundary-exact probes can flip under floating-point rotation;
        // skip those (the proptest original used prop_assume!).
        let margin = {
            let rel = (probe - own).direction().separation((own - parent).direction());
            let edge = Angle::from_degrees(60.0) + alpha;
            (rel.radians() - edge.radians()).abs().min((probe.distance(own) - radius).abs())
        };
        if margin <= 1e-6 {
            continue;
        }
        checked += 1;

        let region = SearchRegion::gs3_head(parent, own, alpha, radius);
        let inside = region.contains(probe);
        let rotate = |p: Point| Point::ORIGIN + (p - Point::ORIGIN).rotated(rot);
        let region2 = SearchRegion::gs3_head(rotate(parent), rotate(own), alpha, radius);
        let inside2 = region2.contains(rotate(probe));
        assert_eq!(inside, inside2, "probe {probe} rot {rot:?}");
    }
}

/// The HEAD_SELECT ranking is a strict total order: antisymmetric and
/// transitive over arbitrary triples.
#[test]
fn rank_is_strict_total_order() {
    let mut rng = rng_for(6);
    for _ in 0..64 {
        let il = point(&mut rng, 100.0);
        let gr = angle(&mut rng);
        let n = rng.gen_range(3usize..12);
        let keys: Vec<RankKey> = (0..n)
            .map(|_| {
                let id = rng.gen_range(0u64..1000);
                RankKey::new(il, point(&mut rng, 100.0), gr, id)
            })
            .collect();
        for a in &keys {
            for b in &keys {
                if a.id == b.id {
                    continue;
                }
                assert_ne!(a.cmp(b), std::cmp::Ordering::Equal);
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
                for c in &keys {
                    if a <= b && b <= c {
                        assert!(a <= c);
                    }
                }
            }
        }
    }
}

/// Angle normalization always lands in (−π, π] and is idempotent.
#[test]
fn angle_normalization() {
    let mut rng = rng_for(7);
    for _ in 0..CASES {
        let theta = rng.gen_range(-1000.0f64..1000.0);
        let a = Angle::from_radians(theta).normalized();
        assert!(a.radians() > -std::f64::consts::PI - 1e-12);
        assert!(a.radians() <= std::f64::consts::PI + 1e-12);
        assert_eq!(a.normalized(), a);
    }
}

/// The six big-node ILs always form a regular hexagon with edge √3R.
#[test]
fn big_node_ils_regular_hexagon() {
    let mut rng = rng_for(8);
    for _ in 0..CASES {
        let center = point(&mut rng, 500.0);
        let r = rng.gen_range(10.0f64..300.0);
        let ils = gs3_geometry::hex::big_node_ideal_locations(center, r, angle(&mut rng));
        assert_eq!(ils.len(), 6);
        let s = head_spacing(r);
        for (i, il) in ils.iter().enumerate() {
            assert!((center.distance(*il) - s).abs() < 1e-6);
            let next = ils[(i + 1) % 6];
            assert!((il.distance(next) - s).abs() < 1e-6);
        }
    }
}

/// Child ILs land on the lattice: they are exactly one lattice step from
/// the parent-relative ideal location and 60° apart.
#[test]
fn child_ils_one_step_out() {
    let mut rng = rng_for(9);
    for _ in 0..CASES {
        let r = rng.gen_range(10.0f64..300.0);
        let parent = point(&mut rng, 500.0);
        let own = parent + Vec2::from_polar(angle(&mut rng), head_spacing(r));
        let children = gs3_geometry::hex::child_ideal_locations(parent, own, r);
        assert_eq!(children.len(), 3);
        for ch in &children {
            assert!((own.distance(*ch) - head_spacing(r)).abs() < 1e-6);
            // Children lie strictly forward (away from the parent).
            assert!(parent.distance(*ch) > head_spacing(r) * 0.99);
        }
    }
}
