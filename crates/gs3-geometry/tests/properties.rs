//! Property-based tests of the geometric substrate.

use gs3_geometry::hex::{Axial, HexLayout};
use gs3_geometry::rank::RankKey;
use gs3_geometry::sector::SearchRegion;
use gs3_geometry::spiral::CellSpiral;
use gs3_geometry::{angular_slack, head_spacing, Angle, Point, Vec2};
use proptest::prelude::*;

fn arb_angle() -> impl Strategy<Value = Angle> {
    (-360.0f64..360.0).prop_map(Angle::from_degrees)
}

fn arb_point(extent: f64) -> impl Strategy<Value = Point> {
    (-extent..extent, -extent..extent).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Axial → cartesian → axial is the identity on lattice points, for
    /// any layout orientation and scale.
    #[test]
    fn lattice_roundtrip(
        q in -30i32..30,
        r in -30i32..30,
        gr in arb_angle(),
        scale in 1.0f64..500.0,
        origin in arb_point(1000.0),
    ) {
        let layout = HexLayout::new(origin, scale, gr);
        let ax = Axial::new(q, r);
        prop_assert_eq!(layout.cell_at(layout.ideal_location(ax)), ax);
    }

    /// Every point resolves to the lattice cell whose center is nearest
    /// (ties aside): the distance to the chosen cell's center never
    /// exceeds the circumradius R.
    #[test]
    fn cell_at_within_circumradius(
        p in arb_point(2000.0),
        gr in arb_angle(),
        scale in 10.0f64..300.0,
    ) {
        let layout = HexLayout::new(Point::ORIGIN, scale, gr);
        prop_assert!(layout.distance_to_own_il(p) <= scale + 1e-6);
    }

    /// Hex distance is a metric: symmetry and triangle inequality.
    #[test]
    fn hex_distance_is_metric(
        a in (-40i32..40, -40i32..40),
        b in (-40i32..40, -40i32..40),
        c in (-40i32..40, -40i32..40),
    ) {
        let (a, b, c) = (Axial::new(a.0, a.1), Axial::new(b.0, b.1), Axial::new(c.0, c.1));
        prop_assert_eq!(a.distance(b), b.distance(a));
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c));
        prop_assert_eq!(a.distance(a), 0);
    }

    /// The intra-cell spiral enumerates strictly increasing ⟨ICC, ICP⟩
    /// keys, each a valid position, starting at the origin, and its ILs
    /// stay within the cell radius.
    #[test]
    fn spiral_is_strictly_ordered_and_bounded(
        r in 20.0f64..200.0,
        rt_frac in 0.05f64..0.5,
        gr in arb_angle(),
        origin in arb_point(500.0),
    ) {
        let r_t = r * rt_frac;
        let spiral = CellSpiral::new(origin, r, r_t, gr);
        let entries: Vec<_> = spiral.iter().collect();
        prop_assert!(!entries.is_empty());
        prop_assert_eq!(entries[0].0, gs3_geometry::spiral::IccIcp::ORIGIN);
        for w in entries.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
        for (k, p) in &entries {
            prop_assert!(k.is_valid());
            prop_assert!(origin.distance(*p) <= r + 1e-6);
        }
        // next() walks exactly the same sequence.
        let mut walked = vec![entries[0].0];
        let mut cur = entries[0].0;
        while let Some(n) = spiral.next(cur) {
            walked.push(n);
            cur = n;
        }
        prop_assert_eq!(walked.len(), entries.len());
    }

    /// Search-region classification is rotation invariant: rotating the
    /// whole configuration (region and query point) together never changes
    /// membership.
    #[test]
    fn sector_rotation_invariant(
        parent in arb_point(300.0),
        rot in arb_angle(),
        probe_ang in arb_angle(),
        probe_dist in 1.0f64..400.0,
        r in 50.0f64..150.0,
    ) {
        let r_t = r * 0.15;
        let own = parent + Vec2::from_polar(Angle::ZERO, head_spacing(r));
        let alpha = angular_slack(r, r_t);
        let radius = head_spacing(r) + 2.0 * r_t;
        let probe = own + Vec2::from_polar(probe_ang, probe_dist);

        let region = SearchRegion::gs3_head(parent, own, alpha, radius);
        let inside = region.contains(probe);

        // Rotate everything around the origin by `rot`.
        let rotate = |p: Point| Point::ORIGIN + (p - Point::ORIGIN).rotated(rot);
        let region2 = SearchRegion::gs3_head(rotate(parent), rotate(own), alpha, radius);
        let inside2 = region2.contains(rotate(probe));
        // Boundary-exact probes can flip under floating-point rotation;
        // skip those.
        let margin = {
            let rel = (probe - own).direction().separation((own - parent).direction());
            let edge = Angle::from_degrees(60.0) + alpha;
            (rel.radians() - edge.radians()).abs().min((probe.distance(own) - radius).abs())
        };
        prop_assume!(margin > 1e-6);
        prop_assert_eq!(inside, inside2);
    }

    /// The HEAD_SELECT ranking is a strict total order: antisymmetric and
    /// transitive over arbitrary triples.
    #[test]
    fn rank_is_strict_total_order(
        il in arb_point(100.0),
        gr in arb_angle(),
        pts in prop::collection::vec((0u64..1000, -100.0f64..100.0, -100.0f64..100.0), 3..12),
    ) {
        let keys: Vec<RankKey> = pts
            .iter()
            .map(|(id, x, y)| RankKey::new(il, Point::new(*x, *y), gr, *id))
            .collect();
        for a in &keys {
            for b in &keys {
                if a.id == b.id {
                    continue;
                }
                prop_assert_ne!(a.cmp(b), std::cmp::Ordering::Equal);
                prop_assert_eq!(a.cmp(b), b.cmp(a).reverse());
                for c in &keys {
                    if a <= b && b <= c {
                        prop_assert!(a <= c);
                    }
                }
            }
        }
    }

    /// Angle normalization always lands in (−π, π] and preserves the
    /// direction class (normalizing twice is idempotent).
    #[test]
    fn angle_normalization(theta in -1000.0f64..1000.0) {
        let a = Angle::from_radians(theta).normalized();
        prop_assert!(a.radians() > -std::f64::consts::PI - 1e-12);
        prop_assert!(a.radians() <= std::f64::consts::PI + 1e-12);
        prop_assert_eq!(a.normalized(), a);
    }

    /// The six big-node ILs always form a regular hexagon with edge √3R.
    #[test]
    fn big_node_ils_regular_hexagon(
        center in arb_point(500.0),
        r in 10.0f64..300.0,
        gr in arb_angle(),
    ) {
        let ils = gs3_geometry::hex::big_node_ideal_locations(center, r, gr);
        prop_assert_eq!(ils.len(), 6);
        let s = head_spacing(r);
        for (i, il) in ils.iter().enumerate() {
            prop_assert!((center.distance(*il) - s).abs() < 1e-6);
            let next = ils[(i + 1) % 6];
            prop_assert!((il.distance(next) - s).abs() < 1e-6);
        }
    }

    /// Child ILs land on the lattice: they are exactly one lattice step
    /// from the parent-relative ideal location and 60° apart.
    #[test]
    fn child_ils_one_step_out(
        r in 10.0f64..300.0,
        dir in arb_angle(),
        parent in arb_point(500.0),
    ) {
        let own = parent + Vec2::from_polar(dir, head_spacing(r));
        let children = gs3_geometry::hex::child_ideal_locations(parent, own, r);
        prop_assert_eq!(children.len(), 3);
        for ch in &children {
            prop_assert!((own.distance(*ch) - head_spacing(r)).abs() < 1e-6);
            // Children lie strictly forward (away from the parent).
            prop_assert!(parent.distance(*ch) > head_spacing(r) * 0.99);
        }
    }
}
