//! # gs3-analysis
//!
//! Analytics, structure metrics, and experiment drivers for the GS³
//! reproduction:
//!
//! * [`poisson`] — the closed forms behind the paper's Figures 7–8.
//! * [`metrics`] — structure-quality measurement over a
//!   [`gs3_core::Snapshot`] (cell radius, head spacing, non-ideal cells,
//!   gap regions, coverage).
//! * [`convergence`] — time-to-fixpoint measurement (Theorems 4/7/8).
//! * [`locality`] — perturbation-impact measurement (§4.3.5.2, Theorem 11).
//! * [`lifetime`] — energy-drain experiments for the `Ω(n_c)` lifetime
//!   claim and the sliding-structure behavior.
//! * [`stats`] / [`report`] — summaries and table rendering for the bench
//!   binaries.
//! * [`render`] — ASCII visualization of a configured structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod lifetime;
pub mod locality;
pub mod metrics;
pub mod poisson;
pub mod render;
pub mod report;
pub mod stats;
