//! Convergence-time measurement (Theorems 4, 7, 8; Appendix-1 rows 4–5).
//!
//! For static networks the diffusing computation quiesces completely, so
//! convergence time is the exact instant the event queue drains. For
//! dynamic networks (heartbeats never stop) convergence is detected by
//! structural-signature stability.

use gs3_core::harness::{Network, NetworkBuilder, RunOutcome};
use gs3_core::Mode;
use gs3_sim::{SimDuration, SimTime};

/// Result of one convergence measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceResult {
    /// Whether the network converged before the deadline.
    pub converged: bool,
    /// Time at which the structure settled.
    pub time: SimDuration,
    /// Total messages transmitted up to convergence.
    pub messages: u64,
    /// Events processed up to convergence.
    pub events: u64,
    /// `D_b`: the maximum Cartesian distance between the big node and any
    /// small node (Theorem 4's yardstick).
    pub d_b: f64,
    /// Number of heads at convergence.
    pub heads: usize,
    /// Alive node count.
    pub nodes: usize,
}

/// Builds and configures a network, measuring its convergence.
///
/// Static-mode networks are measured by exact quiescence; dynamic ones by
/// signature stability (the reported time subtracts the stability window,
/// since the structure settled before detection).
#[must_use]
pub fn measure_configuration(builder: NetworkBuilder, deadline: SimDuration) -> ConvergenceResult {
    let mut net = builder.build().expect("builder parameters must be valid");
    let mode = net.config().mode;
    let poll = net.config().collect_window;
    let d_b = max_distance_from_big(&net);
    let nodes = net.engine().alive_count();

    let (converged, time) = match mode {
        Mode::Static => match net.engine_mut().run_until_quiescent(SimTime::ZERO + deadline) {
            Some(t) => (true, t.since(SimTime::ZERO)),
            None => (false, deadline),
        },
        _ => match settle_time(&mut net, poll * 2, SimTime::ZERO + deadline) {
            Some(t) => (true, t),
            None => (false, deadline),
        },
    };

    let snap = net.snapshot();
    ConvergenceResult {
        converged,
        time,
        messages: net.engine().trace().total_sent(),
        events: net.engine().events_processed(),
        d_b,
        heads: snap.heads().count(),
        nodes,
    }
}

/// Measures convergence of an already-built (possibly perturbed) dynamic
/// network by signature stability. Returns the settle time (stability
/// window subtracted) or `None` on timeout.
pub fn settle_time(net: &mut Network, poll: SimDuration, deadline: SimTime) -> Option<SimDuration> {
    let start = net.now();
    let stable_polls = 4;
    match net.run_to_fixpoint_with(poll, stable_polls, deadline) {
        RunOutcome::Fixpoint { at, .. } => {
            Some(at.since(start) - poll * u64::from(stable_polls))
        }
        RunOutcome::TimedOut { .. } => None,
    }
}

/// `D_b`: max distance from the big node to any alive node.
#[must_use]
pub fn max_distance_from_big(net: &Network) -> f64 {
    let big_pos = net.engine().position(net.big_id()).expect("big node exists");
    net.engine()
        .alive_ids()
        .filter_map(|id| net.engine().position(id).ok())
        .map(|p| big_pos.distance(p))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_network_quiesces_and_converges() {
        let builder = NetworkBuilder::new()
            .mode(Mode::Static)
            .ideal_radius(80.0)
            .radius_tolerance(16.0)
            .area_radius(180.0)
            .expected_nodes(450)
            .seed(11);
        let res = measure_configuration(builder, SimDuration::from_secs(300));
        assert!(res.converged, "static diffusion must terminate");
        assert!(res.time > SimDuration::ZERO);
        assert!(res.heads >= 5, "heads = {}", res.heads);
        assert!(res.d_b > 100.0);
        assert!(res.messages > 0);
    }

    #[test]
    fn settle_time_on_dynamic_network() {
        let mut net = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(16.0)
            .area_radius(150.0)
            .expected_nodes(300)
            .seed(12)
            .build()
            .unwrap();
        let t = settle_time(
            &mut net,
            SimDuration::from_millis(500),
            SimTime::ZERO + SimDuration::from_secs(300),
        );
        assert!(t.is_some(), "dynamic network must settle");
    }
}
