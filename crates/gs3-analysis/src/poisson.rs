//! The closed-form analysis of Section 4.3.4: statistically low deviation
//! from the ideal hexagonal structure.
//!
//! With nodes distributed as a Poisson process of density `λ` (expected
//! nodes per unit-radius disk), the probability that a disk of radius
//! `R_t` is empty — an *`R_t`-gap* — is `α = e^(−R_t²·λ)`. The paper
//! derives from this the expected ratio of non-ideal cells (= `α`) and the
//! expected diameter of an `R_t`-gap perturbed region
//! (`2αR / (1 − α)²`), plotted in Figures 7 and 8 for `λ = 10`, `R = 100`,
//! system radius 1000.

/// `α`: probability that a circular area of radius `r_t` contains no node,
/// for a Poisson field with `lambda` expected nodes per unit-radius disk.
///
/// # Panics
///
/// Panics if `r_t` or `lambda` is negative or non-finite.
#[must_use]
pub fn gap_probability(r_t: f64, lambda: f64) -> f64 {
    assert!(r_t.is_finite() && r_t >= 0.0, "r_t must be non-negative");
    assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be non-negative");
    (-r_t * r_t * lambda).exp()
}

/// Expected ratio of non-ideal cells after configuration (Figure 7): the
/// binomial expectation collapses to `α` itself.
#[must_use]
pub fn expected_nonideal_ratio(r_t: f64, lambda: f64) -> f64 {
    gap_probability(r_t, lambda)
}

/// Expected diameter of an `R_t`-gap perturbed region (Figure 8):
/// `2αR / (1 − α)²`, from the geometric series over runs of contiguous
/// gap-perturbed cells.
#[must_use]
pub fn expected_gap_region_diameter(r_t: f64, lambda: f64, r: f64) -> f64 {
    let alpha = gap_probability(r_t, lambda);
    if alpha >= 1.0 {
        return f64::INFINITY;
    }
    2.0 * alpha / ((1.0 - alpha) * (1.0 - alpha)) * r
}

/// One point of a Figure-7/8 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept abscissa `R_t / R`.
    pub rt_over_r: f64,
    /// Figure 7 ordinate: expected ratio of non-ideal cells.
    pub nonideal_ratio: f64,
    /// Figure 8 ordinate: expected gap-region diameter.
    pub gap_region_diameter: f64,
}

/// Generates the paper's Figure 7/8 sweep: `R_t/R` from `from` to `to` in
/// `steps` points, with the given `λ` and `R` (the paper uses λ=10,
/// R=100, `R_t/R ∈ [0.005, 0.05]`).
///
/// # Panics
///
/// Panics if `steps < 2` or the range is inverted.
#[must_use]
pub fn figure7_8_sweep(from: f64, to: f64, steps: usize, lambda: f64, r: f64) -> Vec<SweepPoint> {
    assert!(steps >= 2, "need at least two sweep points");
    assert!(to > from, "sweep range must be increasing");
    (0..steps)
        .map(|i| {
            let frac = i as f64 / (steps - 1) as f64;
            let rt_over_r = from + frac * (to - from);
            let r_t = rt_over_r * r;
            SweepPoint {
                rt_over_r,
                nonideal_ratio: expected_nonideal_ratio(r_t, lambda),
                gap_region_diameter: expected_gap_region_diameter(r_t, lambda, r),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 10.0;
    const R: f64 = 100.0;

    #[test]
    fn alpha_matches_closed_form() {
        // λ=10, R_t = 0.5 (R_t/R = 0.005): α = e^{-2.5}.
        let a = gap_probability(0.5, LAMBDA);
        assert!((a - (-2.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn alpha_monotone_decreasing_in_rt() {
        let mut prev = gap_probability(0.0, LAMBDA);
        assert_eq!(prev, 1.0);
        for i in 1..=20 {
            let a = gap_probability(f64::from(i) * 0.25, LAMBDA);
            assert!(a < prev);
            prev = a;
        }
    }

    #[test]
    fn paper_observation_negligible_beyond_0_02() {
        // "both … are approximately 0 once R_t/R ≥ 0.02" (λ=10, R=100):
        // R_t = 2 ⇒ α = e^{-40}.
        let ratio = expected_nonideal_ratio(0.02 * R, LAMBDA);
        assert!(ratio < 1e-15, "ratio {ratio}");
        let diam = expected_gap_region_diameter(0.02 * R, LAMBDA, R);
        assert!(diam < 1e-12, "diameter {diam}");
    }

    #[test]
    fn gap_region_diameter_formula() {
        let r_t = 0.3;
        let alpha = gap_probability(r_t, LAMBDA);
        let expect = 2.0 * alpha / ((1.0 - alpha) * (1.0 - alpha)) * R;
        assert_eq!(expected_gap_region_diameter(r_t, LAMBDA, R), expect);
    }

    #[test]
    fn zero_density_degenerates() {
        assert_eq!(gap_probability(1.0, 0.0), 1.0);
        assert_eq!(expected_gap_region_diameter(1.0, 0.0, R), f64::INFINITY);
    }

    #[test]
    fn sweep_shape() {
        let sweep = figure7_8_sweep(0.005, 0.05, 10, LAMBDA, R);
        assert_eq!(sweep.len(), 10);
        assert!((sweep[0].rt_over_r - 0.005).abs() < 1e-12);
        assert!((sweep[9].rt_over_r - 0.05).abs() < 1e-12);
        // Both ordinates decrease along the sweep.
        for w in sweep.windows(2) {
            assert!(w[1].nonideal_ratio <= w[0].nonideal_ratio);
            assert!(w[1].gap_region_diameter <= w[0].gap_region_diameter);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rt() {
        let _ = gap_probability(-1.0, 1.0);
    }
}
