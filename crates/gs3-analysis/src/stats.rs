//! Small statistics helpers shared by the experiment drivers.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum (0 for empty samples).
    pub min: f64,
    /// Maximum (0 for empty samples).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `values`.
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, std_dev: var.sqrt(), min, max }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `values` by nearest-rank on a sorted
/// copy. Returns 0 for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn quantiles() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_display() {
        assert!(format!("{}", Summary::of(&[1.0])).contains("n=1"));
    }
}
