//! Structure-lifetime experiments (Appendix-1 row 2, §4.3.5.1 claim 3).
//!
//! With energy accounting on, heads dissipate faster than associates
//! (they transmit the heartbeats and relay traffic). Without maintenance
//! the structure dies with its first head; with intra-/inter-cell
//! maintenance every member of a cell takes a turn as head (head shift),
//! and then the IL walks the intra-cell spiral (cell shift), so the
//! structure's lifetime scales with the cell population `n_c` — the
//! paper's `Ω(n_c)` claim.

use std::collections::BTreeMap;

use gs3_core::harness::NetworkBuilder;
use gs3_core::invariants::SnapshotIndex;
use gs3_core::snapshot::RoleView;
use gs3_geometry::Point;
use gs3_sim::radio::EnergyModel;
use gs3_sim::{NodeId, SimDuration, SimTime};

use crate::metrics::{coverage_ratio_with, measure};

/// Outcome of one lifetime run.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeResult {
    /// When the first initially-configured head died — the lifetime of the
    /// structure *without* maintenance (no head shift ⇒ the first head
    /// death orphans its cell permanently).
    pub first_head_death: Option<SimTime>,
    /// When coverage fell below the failure threshold — the lifetime
    /// *with* maintenance.
    pub maintained_lifetime: Option<SimTime>,
    /// Head-shift events observed (distinct heads seen per cell, summed).
    pub head_turnovers: u64,
    /// Cell-shift events observed (IL spiral advances, summed).
    pub cell_shifts: u64,
    /// Mean initial cell population `n_c`.
    pub mean_cell_population: f64,
    /// Ratio `maintained_lifetime / first_head_death` (the empirical
    /// lengthening factor; `None` if either end was not reached).
    pub lengthening_factor: Option<f64>,
}

/// Runs a network under energy drain until the structure fails or
/// `horizon` passes, sampling every `sample_every`.
///
/// `coverage_floor` (e.g. 0.5) defines structural failure: the fraction of
/// big-connected nodes in a cell dropping below it.
#[must_use]
pub fn run_lifetime(
    builder: NetworkBuilder,
    energy: EnergyModel,
    budget: f64,
    horizon: SimDuration,
    sample_every: SimDuration,
    coverage_floor: f64,
) -> LifetimeResult {
    let mut net = builder.energy(energy, budget).build().expect("valid builder");
    let _ = net.run_to_fixpoint();

    // One snapshot buffer refilled in place each sample, and one
    // incrementally-maintained index: each poll costs the churn since the
    // last one, not an O(n) connectivity rebuild.
    let mut snap = net.snapshot();
    let mut idx = SnapshotIndex::build(&snap);
    let initial_heads: Vec<NodeId> = snap.heads().map(|n| n.id).collect();
    let m0 = measure(&snap);
    let mean_cell_population = if m0.heads == 0 {
        0.0
    } else {
        (m0.associates + m0.heads) as f64 / m0.heads as f64
    };

    let mut first_head_death: Option<SimTime> = None;
    let mut maintained_lifetime: Option<SimTime> = None;
    // Track head-per-cell turnover and spiral advances by sampling.
    let mut seen_heads_per_cell: BTreeMap<(i64, i64), std::collections::BTreeSet<NodeId>> =
        BTreeMap::new();
    let mut max_icc_icp_per_cell: BTreeMap<(i64, i64), (u32, u32)> = BTreeMap::new();
    let mut cell_shifts = 0u64;
    let quantize = |p: Point, r: f64| ((p.x / r).round() as i64, (p.y / r).round() as i64);

    let deadline = net.now() + horizon;
    while net.now() < deadline {
        net.run_for(sample_every);
        // First initial-head death.
        if first_head_death.is_none() {
            let dead = initial_heads
                .iter()
                .any(|id| !net.engine().is_alive(*id).unwrap_or(false));
            if dead {
                first_head_death = Some(net.now());
            }
        }
        net.snapshot_into(&mut snap);
        idx.update(&snap);
        for h in snap.heads() {
            if let RoleView::Head { oil, icc_icp, .. } = &h.role {
                let key = quantize(*oil, snap.r);
                seen_heads_per_cell.entry(key).or_default().insert(h.id);
                let cur = (icc_icp.icc, icc_icp.icp);
                let prev = max_icc_icp_per_cell.entry(key).or_insert(cur);
                if cur > *prev {
                    cell_shifts += 1;
                    *prev = cur;
                }
            }
        }
        let coverage = coverage_ratio_with(&snap, &idx);
        if maintained_lifetime.is_none() && coverage < coverage_floor {
            maintained_lifetime = Some(net.now());
            break;
        }
        if net.engine().alive_count() <= 1 {
            maintained_lifetime.get_or_insert(net.now());
            break;
        }
    }

    let head_turnovers = seen_heads_per_cell
        .values()
        .map(|s| s.len().saturating_sub(1) as u64)
        .sum();
    let lengthening_factor = match (first_head_death, maintained_lifetime) {
        (Some(f), Some(m)) if f > SimTime::ZERO => {
            Some(m.as_secs_f64() / f.as_secs_f64())
        }
        _ => None,
    };
    LifetimeResult {
        first_head_death,
        maintained_lifetime,
        head_turnovers,
        cell_shifts,
        mean_cell_population,
        lengthening_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_outlives_first_head_death() {
        let builder = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(20.0)
            .area_radius(120.0)
            .expected_nodes(220)
            .seed(31);
        let res = run_lifetime(
            builder,
            EnergyModel::normalized(160.0),
            400.0,
            SimDuration::from_secs(4000),
            SimDuration::from_secs(10),
            0.5,
        );
        let first = res.first_head_death.expect("heads must eventually die");
        if let Some(maintained) = res.maintained_lifetime {
            assert!(maintained >= first, "maintenance cannot shorten life");
        }
        assert!(res.head_turnovers > 0, "head shift must occur");
        assert!(res.mean_cell_population > 1.0);
    }
}
