//! Plain-text rendering of a configured network — a quick visual check of
//! the cellular hexagonal structure without leaving the terminal.
//!
//! Glyphs: `B` big node (head), `b` big node away, `H` cell head,
//! `c` head candidate, `.` associate, `?` bootup, `x` dead node,
//! `*` an ideal location with no node drawn over it.

use gs3_core::snapshot::{RoleView, Snapshot};
use gs3_geometry::Point;

/// Options for [`render`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOptions {
    /// Width of the character canvas.
    pub width: usize,
    /// Height of the character canvas.
    pub height: usize,
    /// Whether to overlay the heads' current ILs as `*`.
    pub show_ideal_locations: bool,
    /// Whether dead nodes are drawn (`x`) or skipped.
    pub show_dead: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { width: 72, height: 30, show_ideal_locations: true, show_dead: false }
    }
}

/// Renders the snapshot to a character canvas scaled to the bounding box
/// of the alive nodes. Higher-priority glyphs overwrite lower ones when
/// two nodes land on the same character cell.
#[must_use]
pub fn render(snap: &Snapshot, opts: RenderOptions) -> String {
    let alive: Vec<&gs3_core::snapshot::NodeView> =
        snap.nodes.iter().filter(|n| n.alive || opts.show_dead).collect();
    if alive.is_empty() || opts.width < 2 || opts.height < 2 {
        return String::from("(empty network)\n");
    }
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for n in &alive {
        min_x = min_x.min(n.pos.x);
        min_y = min_y.min(n.pos.y);
        max_x = max_x.max(n.pos.x);
        max_y = max_y.max(n.pos.y);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let place = |p: Point| -> (usize, usize) {
        let cx = ((p.x - min_x) / span_x * (opts.width - 1) as f64).round() as usize;
        // Screen y grows downward.
        let cy = ((max_y - p.y) / span_y * (opts.height - 1) as f64).round() as usize;
        (cx.min(opts.width - 1), cy.min(opts.height - 1))
    };

    let mut canvas = vec![vec![b' '; opts.width]; opts.height];
    let mut priority = vec![vec![0u8; opts.width]; opts.height];
    let mut draw = |p: Point, glyph: u8, prio: u8| {
        let (x, y) = place(p);
        if prio >= priority[y][x] {
            canvas[y][x] = glyph;
            priority[y][x] = prio;
        }
    };

    if opts.show_ideal_locations {
        for n in snap.heads() {
            if let RoleView::Head { il, .. } = &n.role {
                draw(*il, b'*', 1);
            }
        }
    }
    for n in &alive {
        let (glyph, prio) = if !n.alive {
            (b'x', 2)
        } else {
            match &n.role {
                RoleView::Bootup => (b'?', 3),
                RoleView::Associate { is_candidate: true, .. } => (b'c', 4),
                RoleView::Associate { .. } => (b'.', 3),
                RoleView::Head { .. } if n.is_big => (b'B', 6),
                RoleView::Head { .. } => (b'H', 5),
                RoleView::BigAway { .. } => (b'b', 6),
            }
        };
        draw(n.pos, glyph, prio);
    }

    let mut out = String::with_capacity((opts.width + 1) * opts.height + 64);
    for row in canvas {
        out.push_str(std::str::from_utf8(&row).expect("ascii canvas"));
        out.push('\n');
    }
    out.push_str("B=big  H=head  c=candidate  .=associate  ?=bootup  *=ideal location\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs3_core::snapshot::NodeView;
    use gs3_geometry::spiral::IccIcp;
    use gs3_geometry::Angle;
    use gs3_sim::NodeId;

    fn snap(nodes: Vec<NodeView>) -> Snapshot {
        Snapshot {
            r: 100.0,
            r_t: 10.0,
            big: NodeId::new(0),
            max_range: 400.0,
            gr: Angle::ZERO,
            nodes,
        }
    }

    fn head(id: u64, pos: Point, big: bool) -> NodeView {
        NodeView {
            id: NodeId::new(id),
            pos,
            alive: true,
            is_big: big,
            role: RoleView::Head {
                il: pos,
                oil: pos,
                icc_icp: IccIcp::ORIGIN,
                parent: NodeId::new(0),
                hops: 0,
                children: vec![],
                neighbors: vec![],
                associates: vec![],
                organizing: false,
                is_proxy: false,
            },
            ids_stored: 0,
        }
    }

    #[test]
    fn renders_glyphs() {
        let s = snap(vec![
            head(0, Point::ORIGIN, true),
            head(1, Point::new(100.0, 0.0), false),
            NodeView {
                id: NodeId::new(2),
                pos: Point::new(50.0, 40.0),
                alive: true,
                is_big: false,
                role: RoleView::Associate {
                    head: NodeId::new(0),
                    cell_il: Point::ORIGIN,
                    surrogate: false,
                    is_candidate: false,
                },
                ids_stored: 0,
            },
        ]);
        let art = render(&s, RenderOptions::default());
        assert!(art.contains('B'));
        assert!(art.contains('H'));
        assert!(art.contains('.'));
        assert!(art.contains("B=big"));
    }

    #[test]
    fn empty_network() {
        let s = snap(vec![]);
        assert!(render(&s, RenderOptions::default()).contains("empty"));
    }

    #[test]
    fn canvas_dimensions() {
        let s = snap(vec![head(0, Point::ORIGIN, true), head(1, Point::new(10.0, 10.0), false)]);
        let opts = RenderOptions { width: 20, height: 8, ..Default::default() };
        let art = render(&s, opts);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 9); // 8 canvas rows + legend
        assert!(lines[..8].iter().all(|l| l.len() == 20));
    }
}
