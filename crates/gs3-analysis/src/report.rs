//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple aligned-column table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a float compactly for tables (3 significant decimals, or
/// scientific for very small magnitudes).
#[must_use]
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "bbb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a'));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["x", "y", "z"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(0.5), "0.500");
        assert_eq!(num(1234.7), "1235");
        assert!(num(1e-6).contains('e'));
    }
}
