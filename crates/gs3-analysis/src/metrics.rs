//! Structure-quality metrics over a configured network.
//!
//! Quantifies the properties the paper's Corollaries 1–2 bound — cell
//! radius, neighbor-head spacing, children counts — plus the empirical
//! counterparts of Section 4.3.4: the realized ratio of non-ideal cells
//! and the diameters of `R_t`-gap perturbed regions.

use std::collections::BTreeMap;

use gs3_core::snapshot::{RoleView, Snapshot};
use gs3_core::invariants::{
    physically_connected_to_big, physically_connected_to_big_with, SnapshotIndex,
};
use gs3_geometry::hex::{Axial, HexLayout};
use gs3_geometry::{head_spacing, Point};
use gs3_sim::NodeId;

use crate::stats::Summary;

/// Measured structure quality.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureMetrics {
    /// Alive heads.
    pub heads: usize,
    /// Alive associates.
    pub associates: usize,
    /// Alive nodes still in bootup.
    pub bootup: usize,
    /// Distance from each associate to its head.
    pub cell_radius: Summary,
    /// Per-cell maximum member distance (the paper's cell radius).
    pub max_cell_radius: Summary,
    /// Distance between lattice-neighboring heads (compare `√3R ± 2R_t`).
    pub neighbor_head_distance: Summary,
    /// Children per head.
    pub children_counts: Summary,
    /// Distance from each head to its IL (compare `R_t`).
    pub head_il_deviation: Summary,
    /// Fraction of big-connected alive nodes that are in a cell.
    pub coverage_ratio: f64,
    /// Lattice sites that hold nodes but no head (the *non-ideal* /
    /// gap-perturbed cells of Section 4.3.4).
    pub nonideal_cells: usize,
    /// Lattice sites that hold nodes at all (the denominator).
    pub populated_cells: usize,
    /// Diameters of contiguous gap-perturbed regions (in meters; compare
    /// Figure 8's expectation).
    pub gap_region_diameters: Vec<f64>,
}

impl StructureMetrics {
    /// The realized non-ideal cell ratio (Figure 7's empirical
    /// counterpart). 0 when no cell is populated.
    #[must_use]
    pub fn nonideal_ratio(&self) -> f64 {
        if self.populated_cells == 0 {
            0.0
        } else {
            self.nonideal_cells as f64 / self.populated_cells as f64
        }
    }

    /// Mean gap-region diameter (0 when none exist).
    #[must_use]
    pub fn mean_gap_region_diameter(&self) -> f64 {
        if self.gap_region_diameters.is_empty() {
            0.0
        } else {
            self.gap_region_diameters.iter().sum::<f64>() / self.gap_region_diameters.len() as f64
        }
    }
}

/// The coverage ratio alone, reusing a caller-maintained
/// [`SnapshotIndex`] so tight sampling loops (lifetime experiments poll
/// every few simulated seconds) pay for the churn since the last sample
/// instead of an `O(n)` connectivity rebuild. The index must already
/// reflect `snap` (call [`SnapshotIndex::update`] first).
#[must_use]
pub fn coverage_ratio_with(snap: &Snapshot, idx: &SnapshotIndex) -> f64 {
    coverage_of(snap, &physically_connected_to_big_with(snap, idx))
}

/// Fraction of big-connected alive nodes that are in a cell.
fn coverage_of(snap: &Snapshot, reachable: &std::collections::BTreeSet<NodeId>) -> f64 {
    let covered = snap
        .nodes
        .iter()
        .filter(|n| {
            n.alive
                && reachable.contains(&n.id)
                && !matches!(n.role, RoleView::Bootup | RoleView::BigAway { .. })
        })
        .count();
    if reachable.is_empty() {
        0.0
    } else {
        // The big node itself is counted covered whatever its role.
        (covered + usize::from(reachable.contains(&snap.big))).min(reachable.len()) as f64
            / reachable.len() as f64
    }
}

/// Measures a snapshot.
#[must_use]
pub fn measure(snap: &Snapshot) -> StructureMetrics {
    let heads: Vec<(NodeId, Point, Point)> = snap
        .heads()
        .filter_map(|n| match &n.role {
            RoleView::Head { il, .. } => Some((n.id, n.pos, *il)),
            _ => None,
        })
        .collect();
    let head_pos: BTreeMap<NodeId, Point> = heads.iter().map(|(id, p, _)| (*id, *p)).collect();

    // Per-associate distance to head; per-cell maximum.
    let mut dists = Vec::new();
    let mut per_cell_max: BTreeMap<NodeId, f64> = BTreeMap::new();
    for n in snap.associates() {
        let RoleView::Associate { head, surrogate, .. } = &n.role else {
            continue;
        };
        if *surrogate {
            continue;
        }
        if let Some(hp) = head_pos.get(head) {
            let d = n.pos.distance(*hp);
            dists.push(d);
            let slot = per_cell_max.entry(*head).or_insert(0.0);
            *slot = slot.max(d);
        }
    }

    // Neighbor-head spacing: pairs whose IL distance is one lattice step.
    let spacing = head_spacing(snap.r);
    let mut neighbor_d = Vec::new();
    for (i, (_, pa, ila)) in heads.iter().enumerate() {
        for (_, pb, ilb) in &heads[i + 1..] {
            if (ila.distance(*ilb) - spacing).abs() <= 0.25 * spacing {
                neighbor_d.push(pa.distance(*pb));
            }
        }
    }

    let children: Vec<f64> = snap
        .heads()
        .filter_map(|n| match &n.role {
            RoleView::Head { children, .. } => Some(children.len() as f64),
            _ => None,
        })
        .collect();

    let il_dev: Vec<f64> = heads.iter().map(|(_, p, il)| p.distance(*il)).collect();

    // Coverage.
    let coverage_ratio = coverage_of(snap, &physically_connected_to_big(snap));

    // Lattice occupancy: anchor the ideal lattice at the big node's OIL
    // (its original cell center) and classify each populated site.
    let origin = snap
        .nodes
        .get(snap.big.raw() as usize)
        .and_then(|b| match &b.role {
            RoleView::Head { oil, .. } => Some(*oil),
            _ => None,
        })
        .unwrap_or_else(|| {
            snap.nodes.get(snap.big.raw() as usize).map(|b| b.pos).unwrap_or(Point::ORIGIN)
        });
    let layout = HexLayout::new(origin, snap.r, snap.gr);
    let mut populated: BTreeMap<Axial, bool> = BTreeMap::new(); // site → has a head
    for n in &snap.nodes {
        if n.alive {
            populated.entry(layout.cell_at(n.pos)).or_insert(false);
        }
    }
    for (_, _, il) in &heads {
        // A head claims the site its *IL* falls in (positions may straddle
        // borders).
        if let Some(flag) = populated.get_mut(&layout.cell_at(*il)) {
            *flag = true;
        }
    }
    let nonideal: Vec<Axial> =
        populated.iter().filter(|(_, has)| !**has).map(|(ax, _)| *ax).collect();

    // Contiguous gap regions: connected components of non-ideal sites;
    // diameter = (max pairwise site distance + 1) lattice steps × √3R,
    // matching the paper's cell-diameter units (2R per cell ≈ one step).
    let gap_region_diameters = gap_regions(&nonideal)
        .into_iter()
        .map(|comp| {
            let max_steps = comp
                .iter()
                .flat_map(|a| comp.iter().map(move |b| a.distance(*b)))
                .max()
                .unwrap_or(0);
            (max_steps as f64 + 1.0) * 2.0 * snap.r
        })
        .collect();

    StructureMetrics {
        heads: heads.len(),
        associates: snap.associates().count(),
        bootup: snap.bootup_count(),
        cell_radius: Summary::of(&dists),
        max_cell_radius: Summary::of(&per_cell_max.into_values().collect::<Vec<_>>()),
        neighbor_head_distance: Summary::of(&neighbor_d),
        children_counts: Summary::of(&children),
        head_il_deviation: Summary::of(&il_dev),
        coverage_ratio,
        nonideal_cells: nonideal.len(),
        populated_cells: populated.len(),
        gap_region_diameters,
    }
}

/// Occupancy of one ideal-lattice site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteOccupancy {
    /// The site's axial coordinates (relative to the big node's cell).
    pub site: Axial,
    /// The site's ideal location on the plane.
    pub center: Point,
    /// Number of alive nodes whose position falls in this site's hexagon.
    pub nodes: usize,
    /// Whether some head's IL falls in this site's hexagon.
    pub has_head: bool,
}

/// Per-site occupancy of the ideal lattice anchored at the big node's
/// original cell. The Figure-7/8 empirical bins use this to classify
/// *interior* sites only (edge sites straddle the deployment boundary and
/// would inflate the non-ideal count for reasons unrelated to `R_t`-gaps).
#[must_use]
pub fn lattice_occupancy(snap: &Snapshot) -> Vec<SiteOccupancy> {
    let origin = snap
        .nodes
        .get(snap.big.raw() as usize)
        .and_then(|b| match &b.role {
            RoleView::Head { oil, .. } => Some(*oil),
            _ => None,
        })
        .unwrap_or_else(|| {
            snap.nodes.get(snap.big.raw() as usize).map(|b| b.pos).unwrap_or(Point::ORIGIN)
        });
    let layout = HexLayout::new(origin, snap.r, snap.gr);
    let mut sites: BTreeMap<Axial, (usize, bool)> = BTreeMap::new();
    for n in &snap.nodes {
        if n.alive {
            sites.entry(layout.cell_at(n.pos)).or_insert((0, false)).0 += 1;
        }
    }
    for n in snap.heads() {
        if let RoleView::Head { il, .. } = &n.role {
            if let Some(entry) = sites.get_mut(&layout.cell_at(*il)) {
                entry.1 = true;
            }
        }
    }
    sites
        .into_iter()
        .map(|(site, (nodes, has_head))| SiteOccupancy {
            site,
            center: layout.ideal_location(site),
            nodes,
            has_head,
        })
        .collect()
}

/// Connected components (6-neighbor adjacency) of a set of lattice sites.
fn gap_regions(sites: &[Axial]) -> Vec<Vec<Axial>> {
    use std::collections::BTreeSet;
    let set: BTreeSet<Axial> = sites.iter().copied().collect();
    let mut seen: BTreeSet<Axial> = BTreeSet::new();
    let mut out = Vec::new();
    for &start in &set {
        if seen.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(cur) = stack.pop() {
            comp.push(cur);
            for n in cur.neighbors() {
                if set.contains(&n) && seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        out.push(comp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs3_core::snapshot::NodeView;
    use gs3_geometry::spiral::IccIcp;
    use gs3_geometry::Angle;

    fn head(id: u64, pos: Point, il: Point, children: Vec<u64>) -> NodeView {
        NodeView {
            id: NodeId::new(id),
            pos,
            alive: true,
            is_big: id == 0,
            role: RoleView::Head {
                il,
                oil: il,
                icc_icp: IccIcp::ORIGIN,
                parent: NodeId::new(0),
                hops: u32::from(id != 0),
                children: children.into_iter().map(NodeId::new).collect(),
                neighbors: vec![],
                associates: vec![],
                organizing: false,
                is_proxy: false,
            },
            ids_stored: 1,
        }
    }

    fn assoc(id: u64, pos: Point, h: u64) -> NodeView {
        NodeView {
            id: NodeId::new(id),
            pos,
            alive: true,
            is_big: false,
            role: RoleView::Associate {
                head: NodeId::new(h),
                cell_il: Point::ORIGIN,
                surrogate: false,
                is_candidate: false,
            },
            ids_stored: 1,
        }
    }

    fn snap(nodes: Vec<NodeView>) -> Snapshot {
        Snapshot {
            r: 100.0,
            r_t: 10.0,
            big: NodeId::new(0),
            max_range: 400.0,
            gr: Angle::ZERO,
            nodes,
        }
    }

    #[test]
    fn basic_measurement() {
        let spacing = head_spacing(100.0);
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, vec![1]),
            head(1, Point::new(spacing, 0.0), Point::new(spacing, 0.0), vec![]),
            assoc(2, Point::new(50.0, 0.0), 0),
            assoc(3, Point::new(-40.0, 0.0), 0),
        ]);
        let m = measure(&s);
        assert_eq!(m.heads, 2);
        assert_eq!(m.associates, 2);
        assert_eq!(m.cell_radius.n, 2);
        assert!((m.max_cell_radius.max - 50.0).abs() < 1e-9);
        assert_eq!(m.neighbor_head_distance.n, 1);
        assert!((m.neighbor_head_distance.mean - spacing).abs() < 1e-9);
        assert!((m.coverage_ratio - 1.0).abs() < 1e-12);
        assert_eq!(m.nonideal_cells, 0);
        assert!(m.populated_cells >= 2);
    }

    #[test]
    fn detects_nonideal_cell() {
        // A populated lattice site two cells east with no head.
        let spacing = head_spacing(100.0);
        let far = Point::new(2.0 * spacing, 0.0);
        let mut lone = assoc(1, far, 0);
        lone.role = RoleView::Bootup;
        let s = snap(vec![head(0, Point::ORIGIN, Point::ORIGIN, vec![]), lone]);
        let m = measure(&s);
        assert_eq!(m.nonideal_cells, 1);
        assert!(m.nonideal_ratio() > 0.0);
        assert_eq!(m.gap_region_diameters.len(), 1);
        assert!((m.gap_region_diameters[0] - 200.0).abs() < 1e-9);
    }

    #[test]
    fn gap_regions_merge_adjacent() {
        let comps = gap_regions(&[Axial::new(0, 0), Axial::new(1, 0), Axial::new(5, 5)]);
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = comps.iter().map(Vec::len).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn empty_snapshot() {
        let s = snap(vec![]);
        let m = measure(&s);
        assert_eq!(m.heads, 0);
        assert_eq!(m.nonideal_ratio(), 0.0);
        assert_eq!(m.mean_gap_region_diameter(), 0.0);
    }
}
