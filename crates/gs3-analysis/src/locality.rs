//! Locality measurement: how far the effects of a perturbation spread and
//! how long healing takes (the paper's §4.3.5.2 scalable self-healing
//! claims and Theorem 11's `√3·d/2` containment bound for big-node moves).

use gs3_core::snapshot::{RoleView, Snapshot};
use gs3_core::harness::Network;
use gs3_geometry::Point;
use gs3_sim::{NodeId, SimDuration, SimTime};


/// The observable impact of one perturbation.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpactReport {
    /// Nodes whose structural state (role, head, parent) changed.
    pub changed: Vec<NodeId>,
    /// Heads whose head-graph edge (parent pointer) changed, including
    /// heads created or demoted.
    pub changed_head_edges: Vec<NodeId>,
    /// Maximum distance of any changed node from the perturbation center.
    pub impact_radius: f64,
    /// Maximum distance of any changed head-graph edge endpoint from the
    /// center (Theorem 11's measure).
    pub edge_impact_radius: f64,
    /// How long the structure took to settle again (`None` = timed out).
    pub heal_time: Option<SimDuration>,
}

/// A node's structural fingerprint used for diffing.
fn fingerprint(view: &RoleView) -> (u8, Option<NodeId>, Option<NodeId>) {
    match view {
        RoleView::Bootup => (0, None, None),
        RoleView::Head { parent, .. } => (1, Some(*parent), None),
        RoleView::Associate { head, .. } => (2, Some(*head), None),
        RoleView::BigAway { proxy, .. } => (3, *proxy, None),
    }
}

/// Nodes whose structural fingerprint differs between two snapshots
/// (newly spawned nodes count as changed; dead nodes do not — their
/// removal *is* the perturbation).
#[must_use]
pub fn changed_nodes(before: &Snapshot, after: &Snapshot) -> Vec<NodeId> {
    let mut out = Vec::new();
    for a in &after.nodes {
        if !a.alive {
            continue;
        }
        match before.node(a.id) {
            Some(b) => {
                if fingerprint(&b.role) != fingerprint(&a.role) {
                    out.push(a.id);
                }
            }
            None => out.push(a.id),
        }
    }
    out
}

/// Heads whose head-graph edge changed between two snapshots: parent
/// switched, head newly created, or head demoted.
#[must_use]
pub fn changed_head_edges(before: &Snapshot, after: &Snapshot) -> Vec<NodeId> {
    let parent_of = |snap: &Snapshot, id: NodeId| -> Option<NodeId> {
        snap.node(id).and_then(|n| match &n.role {
            RoleView::Head { parent, .. } => Some(*parent),
            _ => None,
        })
    };
    let mut out = Vec::new();
    let ids: std::collections::BTreeSet<NodeId> = before
        .heads()
        .map(|n| n.id)
        .chain(after.heads().map(|n| n.id))
        .collect();
    for id in ids {
        if parent_of(before, id) != parent_of(after, id) {
            // Skip heads that changed because they died.
            if after.node(id).is_some_and(|n| n.alive) || before.node(id).is_some_and(|n| n.alive) {
                out.push(id);
            }
        }
    }
    out
}

/// Applies `perturb` to the network, lets it re-stabilize, and reports the
/// spatial extent of every induced change relative to `center`.
///
/// Healing time is the instant of the *last structural change*: the
/// network is polled at `settle_poll` until its structural signature has
/// been quiet for a window covering both the failure-detection timeouts
/// and the sanity-check period (so silences between repair waves are not
/// mistaken for convergence), or `deadline` passes.
pub fn measure_impact<F>(
    net: &mut Network,
    center: Point,
    settle_poll: SimDuration,
    deadline: SimDuration,
    perturb: F,
) -> ImpactReport
where
    F: FnOnce(&mut Network),
{
    let before = net.snapshot();
    let start = net.now();
    perturb(net);
    let cfg = net.config();
    let quiet_needed = (cfg.intra_timeout() * 2)
        + (cfg.inter_timeout() * 2)
        + cfg.sanity_period
        + cfg.sanity_window;
    let hard_deadline = start + deadline;
    let mut last_sig = net.snapshot().structural_signature();
    let mut last_change: Option<SimTime> = if last_sig == before.structural_signature() {
        None
    } else {
        Some(start)
    };
    let mut timed_out = true;
    while net.now() < hard_deadline {
        net.run_for(settle_poll);
        let sig = net.snapshot().structural_signature();
        if sig != last_sig {
            last_sig = sig;
            last_change = Some(net.now());
        }
        let quiet_since = last_change.unwrap_or(start);
        if net.now().saturating_since(quiet_since) >= quiet_needed {
            timed_out = false;
            break;
        }
    }
    let heal_time = match (last_change, timed_out) {
        (_, true) => None,
        (Some(t), false) => Some(t.since(start)),
        (None, false) => Some(SimDuration::ZERO),
    };
    let after = net.snapshot();

    let changed = changed_nodes(&before, &after);
    let changed_edges = changed_head_edges(&before, &after);
    let radius_of = |ids: &[NodeId]| {
        ids.iter()
            .filter_map(|id| after.node(*id).or_else(|| before.node(*id)))
            .map(|n| center.distance(n.pos))
            .fold(0.0, f64::max)
    };
    ImpactReport {
        impact_radius: radius_of(&changed),
        edge_impact_radius: radius_of(&changed_edges),
        changed,
        changed_head_edges: changed_edges,
        heal_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs3_core::harness::NetworkBuilder;

    fn settled_net(seed: u64) -> Network {
        let mut net = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(16.0)
            .area_radius(180.0)
            .expected_nodes(450)
            .seed(seed)
            .build()
            .unwrap();
        let _ = net.run_to_fixpoint().unwrap();
        net
    }

    #[test]
    fn no_perturbation_no_change() {
        let mut net = settled_net(21);
        let report = measure_impact(
            &mut net,
            Point::ORIGIN,
            SimDuration::from_millis(500),
            SimDuration::from_secs(180),
            |_| {},
        );
        assert!(report.changed.is_empty(), "changed: {:?}", report.changed);
        assert_eq!(report.impact_radius, 0.0);
        assert!(report.heal_time.is_some());
    }

    #[test]
    fn killing_one_associate_changes_nothing_structural() {
        let mut net = settled_net(22);
        // Pick a non-candidate associate far from any IL.
        let snap = net.snapshot();
        let victim = snap
            .associates()
            .find(|n| matches!(n.role, RoleView::Associate { is_candidate: false, .. }))
            .map(|n| (n.id, n.pos))
            .expect("some plain associate exists");
        let report = measure_impact(
            &mut net,
            victim.1,
            SimDuration::from_millis(500),
            SimDuration::from_secs(180),
            |net| net.kill(victim.0),
        );
        // The death is masked inside the cell: no alive node changes its
        // structural state.
        assert!(
            report.changed.is_empty(),
            "associate death must be masked, changed: {:?}",
            report.changed
        );
    }
}
