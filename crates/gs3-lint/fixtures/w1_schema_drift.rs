// pretend: crates/gs3-core/src/messages.rs
// W1: the wire enum drifted from the committed schema — Ping's payload
// widened and a variant was appended without regenerating the pin.
pub enum Msg {
    Ping(u64),
    Data { x: f64 },
    Stop,
    Probe,
}
