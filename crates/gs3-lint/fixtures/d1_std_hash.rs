// pretend: crates/gs3-core/src/state.rs
// D1: std hash containers in a protocol path.
use std::collections::HashMap;
use std::collections::BTreeMap; // ordered: fine

fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    let ok: BTreeMap<u32, u32> = BTreeMap::new();
    let _ = (m, ok);
}
