// pretend: crates/gs3-sim/src/queue.rs
// A2 green: owned state passed explicitly, constants instead of statics,
// and `&'static str` lifetimes (invisible to the lexer) don't trip.
const LANES: usize = 4;

struct Queue {
    items: Vec<Event>,
    cursor: usize,
}

fn name(q: &Queue) -> &'static str {
    "queue"
}

fn drain(q: &mut Queue) -> Option<Event> {
    q.items.pop()
}
