// pretend: crates/gs3-core/src/join.rs
// T2: Timer::Retry is set but no dispatch match handles its expiry.
fn arm(&mut self, ctx: &mut Ctx) {
    ctx.set_timer(self.cfg.tick, Timer::Tick);
    ctx.set_timer(self.cfg.rto, Timer::Retry { n: 0 });
}

fn on_timer(&mut self, t: Timer) {
    match t {
        Timer::Tick => self.on_tick(),
    }
}
