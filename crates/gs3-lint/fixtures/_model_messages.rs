// Mini protocol model used by the fixture harness: stands in for
// crates/gs3-core/src/messages.rs so totality rules have a variant set.
pub enum Msg {
    Ping(u32),
    Data { x: f64 },
    Stop,
}
