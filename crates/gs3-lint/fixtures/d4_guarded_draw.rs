// pretend: crates/gs3-core/src/reliable.rs
// D4 green: the draw fn reads no guard itself, but every call path into
// it is dominated by the subsystem's enabled flag.
impl Gs3Node {
    fn retransmit_after(&self, ctx: &mut Ctx) -> u64 {
        ctx.rng().gen_range(0..100)
    }
    fn on_message(&mut self, ctx: &mut Ctx) {
        if self.cfg.reliability.enabled {
            let _rto = self.retransmit_after(ctx);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx) {
        if !self.cfg.reliability.enabled {
            return;
        }
        let _rto = self.retransmit_after(ctx);
    }
}
