// pretend: crates/gs3-core/src/handlers.rs
// T3: Msg::Data is constructed but never dispatched, and Msg::Stop is
// dispatched but never constructed (dead protocol arm).
fn on_message(&mut self, msg: Msg, ctx: &mut Ctx) {
    match msg {
        Msg::Ping(n) => ctx.reply(Msg::Ping(n)),
    }
}

fn on_control(&mut self, msg: Msg) {
    match msg {
        Msg::Stop => self.halt(),
    }
}

fn announce(&mut self, ctx: &mut Ctx) {
    ctx.emit(Msg::Data { x: 0.5 });
}
