// pretend: crates/gs3-core/src/inter.rs
// D3: NaN-unsafe comparisons on geometry values.
fn f(a: Point, b: Point, cfg: &Config) -> bool {
    let same_spot = a.distance(b) == 0.0;
    let reversed = 0.0 == a.distance(b);
    let axis = a.x == 0.0;
    let ranked = x.partial_cmp(&y).unwrap();
    let sentinel = cfg.energy == 0.0; // config sentinel, not geometry
    let guarded = a.distance(b).total_cmp(&0.0).is_eq(); // the sanctioned form
    same_spot || reversed || axis || sentinel || guarded || ranked == Ordering::Less
}
