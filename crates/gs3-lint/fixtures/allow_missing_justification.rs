// pretend: crates/gs3-core/src/sanity.rs
// An allow directive without the mandatory `-- justification` is itself a
// finding, and the violation it tried to cover still counts.
// gs3-lint: allow(d1)
use std::collections::HashSet;
