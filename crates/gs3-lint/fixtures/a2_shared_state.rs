// pretend: crates/gs3-sim/src/queue.rs
// A2: interior mutability and ambient globals in the engine hot path.
static mut DRAINED: u64 = 0;

struct Queue {
    items: RefCell<Vec<Event>>,
    lock: Mutex<()>,
}

fn bump() {
    thread_local!(static LOCAL: u64 = 0);
}
