// pretend: crates/gs3-sim/src/engine.rs
// A1: heap indirection in the per-event hot path.
use std::collections::BTreeMap;

struct Slots {
    nodes: Vec<Box<Node>>,
    timers: BTreeMap<u32, u64>,
    owner: Rc<CellRec>,
    cache: HashMap<u32, u64>, // also d1: unordered std hash in gs3-sim
}

fn f() {
    let shared = Rc::new(Slots::default());
    let dense: Vec<u64> = Vec::new(); // dense columns are the point: fine
    let _ = (shared, dense);
}
