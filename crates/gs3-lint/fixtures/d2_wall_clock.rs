// pretend: crates/gs3-core/src/node.rs
// D2: ambient time and entropy outside gs3-sim/src/time.rs.
use std::time::{Duration, Instant};

fn f() {
    let _rng = rand::thread_rng();
    let _t = Instant::now();
    let _s = std::time::SystemTime::now();
    let _ok = Duration::from_secs(1); // Duration is an inert value type
}
