// pretend: crates/gs3-sim/src/metrics.rs
// D5: hash-ordered iteration leaking into a digest.
struct Metrics {
    counts: FxHashMap<u32, u64>,
}

impl Metrics {
    fn digest(&self, d: &mut Digest) {
        for (k, v) in self.counts.iter() {
            d.push(*k, *v);
        }
    }
}
