// pretend: crates/gs3-core/src/messages.rs
// W1 green: layout byte-identical to the committed schema pin.
pub enum Msg {
    Ping(u32),
    Data { x: f64 },
    Stop,
}
