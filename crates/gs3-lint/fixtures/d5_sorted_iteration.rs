// pretend: crates/gs3-sim/src/metrics.rs
// D5 green: sorted keys and order-commutative reductions are exempt.
struct Metrics {
    counts: FxHashMap<u32, u64>,
}

impl Metrics {
    fn digest(&self, d: &mut Digest) {
        let mut keys: Vec<u32> = self.counts.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            d.push(k, self.counts[&k]);
        }
    }
    fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}
