// pretend: crates/gs3-core/src/intra.rs
// T1: a protocol dispatch with a wildcard arm, and a near-total dispatch
// missing a variant.
fn on_message(&mut self, msg: Msg) {
    match msg {
        Msg::Ping(n) => self.on_ping(n),
        _ => {}
    }
}

fn kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::Ping(_) => "ping",
        Msg::Data { .. } => "data",
    }
}

fn send_all(&mut self, ctx: &mut Ctx) {
    // Constructions keeping t3 quiet: this fixture is about t1 totality.
    ctx.emit(Msg::Ping(1));
    ctx.emit(Msg::Data { x: 0.0 });
}
