// pretend: crates/gs3-core/src/reliable.rs
// D4: a draw in a config-gated subsystem with one unguarded call path.
impl Gs3Node {
    fn retransmit_after(&self, ctx: &mut Ctx) -> u64 {
        ctx.rng().gen_range(0..100)
    }
    fn on_message(&mut self, ctx: &mut Ctx) {
        if self.cfg.reliability.enabled {
            let _rto = self.retransmit_after(ctx);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx) {
        let _rto = self.retransmit_after(ctx); // no guard on this path
    }
}
