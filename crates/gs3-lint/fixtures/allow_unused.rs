// pretend: crates/gs3-core/src/big.rs
// A directive that covers nothing is stale and must be removed.
fn clean() -> u32 {
    // gs3-lint: allow(d3) -- left behind after a refactor
    1 + 1
}
