// Mini timer model used by the fixture harness: stands in for
// crates/gs3-core/src/timers.rs.
pub enum Timer {
    Tick,
    Retry { n: u32 },
}
