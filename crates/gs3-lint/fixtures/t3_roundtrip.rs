// pretend: crates/gs3-core/src/handlers.rs
// T3 green: every constructed variant is dispatched and vice versa.
fn on_message(&mut self, msg: Msg, ctx: &mut Ctx) {
    match msg {
        Msg::Ping(n) => ctx.reply(Msg::Data { x: 1.0 }),
        Msg::Data { x } => self.absorb(x),
        Msg::Stop => self.halt(),
    }
}

fn kick(&mut self, ctx: &mut Ctx) {
    ctx.emit(Msg::Ping(1));
    ctx.emit(Msg::Stop);
}
