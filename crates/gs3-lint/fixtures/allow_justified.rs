// pretend: crates/gs3-bench/src/bin/timing.rs
// A finding covered by a justified allow directive: reported, marked
// allowed, and the run stays green.
fn measure() {
    let start = Instant::now(); // gs3-lint: allow(d2) -- wall-clock measurement is this harness's product
    let _ = start;
}
