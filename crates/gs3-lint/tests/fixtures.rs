//! Fixture-driven self-tests: each `fixtures/*.rs` is a known-bad (or
//! known-allowlisted) snippet; its `.expect` sidecar lists the exact
//! diagnostics the analyzer must produce, as `rule:line` for errors and
//! `allowed:rule:line` for justified allowlistings.
//!
//! Fixtures declare the workspace-relative path they pretend to live at
//! via a `// pretend: <path>` first line, since every rule scopes by path.
//! The harness always adds the `_model_*.rs` mini enums as
//! `gs3-core/src/{messages,timers}.rs` stand-ins so totality rules have a
//! variant universe.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use gs3_lint::model::ProtocolModel;
use gs3_lint::{analyze_with, SchemaCheck, SourceFile};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn pretend_path(src: &str) -> String {
    src.lines()
        .next()
        .and_then(|l| l.strip_prefix("// pretend:"))
        .map(str::trim)
        .expect("fixture must start with `// pretend: <path>`")
        .to_string()
}

fn model_files() -> Vec<SourceFile> {
    let dir = fixtures_dir();
    let msgs = std::fs::read_to_string(dir.join("_model_messages.rs")).unwrap();
    let timers = std::fs::read_to_string(dir.join("_model_timers.rs")).unwrap();
    vec![
        SourceFile::new("crates/gs3-core/src/messages.rs", &msgs),
        SourceFile::new("crates/gs3-core/src/timers.rs", &timers),
    ]
}

/// The wire schema pinned to the `_model_*.rs` stand-ins: a fixture that
/// redefines a wire enum differently drifts from this and trips `w1`.
fn model_schema() -> String {
    let files = model_files();
    let model = ProtocolModel::extract(
        files.iter().map(|f| (f.rel.as_str(), f.lexed.toks.as_slice())),
    );
    gs3_lint::schema::render(&model.layouts)
}

/// Runs one fixture and returns the actual diagnostic set on its path.
fn run_fixture(name: &str) -> BTreeSet<String> {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join(name)).unwrap();
    let rel = pretend_path(&src);
    let mut files = model_files();
    files.push(SourceFile::new(&rel, &src));
    let schema = model_schema();
    analyze_with(&files, SchemaCheck::Committed(Some(&schema)))
        .into_iter()
        .filter(|f| f.rel == rel)
        .map(|f| {
            if f.allowed.is_some() {
                format!("allowed:{}:{}", f.rule, f.line)
            } else {
                format!("{}:{}", f.rule, f.line)
            }
        })
        .collect()
}

fn expected(name: &str) -> BTreeSet<String> {
    let path = fixtures_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()))
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

fn check(stem: &str) {
    let actual = run_fixture(&format!("{stem}.rs"));
    let want = expected(&format!("{stem}.expect"));
    assert_eq!(actual, want, "fixture {stem} diagnostics diverge");
}

#[test]
fn d1_std_hash() {
    check("d1_std_hash");
}

#[test]
fn d2_wall_clock() {
    check("d2_wall_clock");
}

#[test]
fn d3_float_eq() {
    check("d3_float_eq");
}

#[test]
fn a1_hot_path_alloc() {
    check("a1_hot_path_alloc");
}

#[test]
fn t1_wildcard_dispatch() {
    check("t1_wildcard_dispatch");
}

#[test]
fn t2_unhandled_timer() {
    check("t2_unhandled_timer");
}

#[test]
fn d4_unguarded_draw() {
    check("d4_unguarded_draw");
}

#[test]
fn d4_guarded_draw() {
    check("d4_guarded_draw");
}

#[test]
fn d5_hash_iteration() {
    check("d5_hash_iteration");
}

#[test]
fn d5_sorted_iteration() {
    check("d5_sorted_iteration");
}

#[test]
fn w1_schema_drift() {
    check("w1_schema_drift");
}

#[test]
fn w1_schema_match() {
    check("w1_schema_match");
}

#[test]
fn t3_dead_arm() {
    check("t3_dead_arm");
}

#[test]
fn t3_roundtrip() {
    check("t3_roundtrip");
}

#[test]
fn a2_shared_state() {
    check("a2_shared_state");
}

#[test]
fn a2_owned_state() {
    check("a2_owned_state");
}

#[test]
fn allow_justified_is_green() {
    check("allow_justified");
    // The allowlisted finding must carry its justification text.
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join("allow_justified.rs")).unwrap();
    let rel = pretend_path(&src);
    let mut files = model_files();
    files.push(SourceFile::new(&rel, &src));
    let schema = model_schema();
    let findings = analyze_with(&files, SchemaCheck::Committed(Some(&schema)));
    let f = findings.iter().find(|f| f.rel == rel).unwrap();
    assert!(f.allowed.as_deref().unwrap().contains("wall-clock measurement"));
}

#[test]
fn allow_without_justification_still_fails() {
    check("allow_missing_justification");
}

#[test]
fn allow_unused_is_flagged() {
    check("allow_unused");
}

#[test]
fn every_fixture_has_a_test() {
    // Guards against adding a fixture and forgetting to wire it up.
    let mut stems: Vec<String> = std::fs::read_dir(fixtures_dir())
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?.to_string();
            name.strip_suffix(".rs")
                .filter(|s| !s.starts_with('_'))
                .map(str::to_string)
        })
        .collect();
    stems.sort();
    let wired = [
        "a1_hot_path_alloc",
        "a2_owned_state",
        "a2_shared_state",
        "allow_justified",
        "allow_missing_justification",
        "allow_unused",
        "d1_std_hash",
        "d2_wall_clock",
        "d3_float_eq",
        "d4_guarded_draw",
        "d4_unguarded_draw",
        "d5_hash_iteration",
        "d5_sorted_iteration",
        "t1_wildcard_dispatch",
        "t2_unhandled_timer",
        "t3_dead_arm",
        "t3_roundtrip",
        "w1_schema_drift",
        "w1_schema_match",
    ];
    assert_eq!(stems, wired, "update tests/fixtures.rs for new fixtures");
}
