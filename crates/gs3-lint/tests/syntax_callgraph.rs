//! Property tests for the syntax extractor and the call graph, using a
//! deterministic generator (no external proptest dependency): a seeded
//! LCG produces random-but-reproducible programs with a *known* function
//! set and call relation, and the extracted structures must match the
//! generator's ground truth exactly.
//!
//! The second half pins the analyzer's **documented limits** — the
//! over-approximations DESIGN.md promises (method-call merging, no
//! function-pointer tracking, no macro expansion) are asserted here so a
//! future "fix" that silently changes them fails a test and forces the
//! docs to move in the same commit.

use std::collections::BTreeSet;

use gs3_lint::callgraph::CallGraph;
use gs3_lint::lexer::lex;
use gs3_lint::syntax::{extract_fns, matching_close};

/// Minimal deterministic PRNG; the constants are Knuth's MMIX LCG.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One generated program: source text plus the ground-truth call relation
/// `calls[i]` = indices of functions `f{i}` calls (possibly repeating).
struct GenProgram {
    src: String,
    n_fns: usize,
    calls: Vec<Vec<usize>>,
}

/// Generates `n_fns` uniquely-named free functions, each calling a random
/// subset of the others (self-loops and cycles included on purpose) with
/// random filler statements and nested blocks between the calls.
fn gen_program(rng: &mut Lcg, n_fns: usize) -> GenProgram {
    let mut src = String::new();
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n_fns];
    for (i, out) in calls.iter_mut().enumerate() {
        src.push_str(&format!("pub fn f{i}(x: u64) -> u64 {{\n"));
        let stmts = 1 + rng.below(5);
        for _ in 0..stmts {
            match rng.below(4) {
                0 => {
                    let j = rng.below(n_fns);
                    src.push_str(&format!("    let _ = f{j}(x + 1);\n"));
                    out.push(j);
                }
                1 => src.push_str("    let s = \"noise {} fn } not code\";\n"),
                2 => {
                    // A nested block with a call inside: still attributed
                    // to the enclosing function.
                    let j = rng.below(n_fns);
                    src.push_str(&format!("    {{ let y = f{j}(x); let _ = y; }}\n"));
                    out.push(j);
                }
                _ => src.push_str("    let v: Vec<u64> = Vec::new(); let _ = v.len();\n"),
            }
        }
        src.push_str("    x\n}\n\n");
    }
    GenProgram { src, n_fns, calls }
}

#[test]
fn extraction_matches_generated_ground_truth() {
    let mut rng = Lcg(0xD06_F00D);
    for round in 0..40 {
        let n = 2 + rng.below(9);
        let prog = gen_program(&mut rng, n);
        let lexed = lex(&prog.src);
        let fns = extract_fns("crates/x/src/gen.rs", &lexed.toks);
        assert_eq!(fns.len(), prog.n_fns, "round {round}: fn count");
        for (i, f) in fns.iter().enumerate() {
            assert_eq!(f.name, format!("f{i}"), "round {round}: order/name");
            assert!(f.owner.is_none());
            assert!(!f.is_test);
            // Every body must be a balanced brace range that
            // `matching_close` agrees with.
            let (open, close) = f.body.expect("free fn has a body");
            assert_eq!(lexed.toks[open].text, "{");
            assert_eq!(lexed.toks[close].text, "}");
            assert_eq!(matching_close(&lexed.toks, open), Some(close));
            assert!(open < close && close < lexed.toks.len());
        }
        // Bodies never overlap and appear in source order.
        for w in fns.windows(2) {
            assert!(w[0].body.unwrap().1 < w[1].body.unwrap().0);
        }
    }
}

#[test]
fn callgraph_edges_match_generated_relation() {
    let mut rng = Lcg(0xBEEF);
    for round in 0..40 {
        let n = 2 + rng.below(9);
        let prog = gen_program(&mut rng, n);
        let graph = CallGraph::build([("crates/x/src/gen.rs", lex(&prog.src).toks.as_slice())]
            .iter()
            .map(|(r, t)| (*r, *t)));
        assert_eq!(graph.nodes.len(), prog.n_fns);
        for (i, want) in prog.calls.iter().enumerate() {
            // Unique free-fn names make resolution exact: the edge
            // multiset out of f{i} is the generated one.
            let mut got: Vec<usize> = graph.edges[i].iter().map(|&(callee, _)| callee).collect();
            let mut want = want.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "round {round}: edges out of f{i}");
        }
    }
}

/// Reference BFS over the generated relation, independent of CallGraph.
fn reference_reachable(calls: &[Vec<usize>], roots: &[usize]) -> BTreeSet<usize> {
    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut stack: Vec<usize> = roots.to_vec();
    while let Some(f) = stack.pop() {
        for &g in &calls[f] {
            if seen.insert(g) {
                stack.push(g);
            }
        }
    }
    seen
}

#[test]
fn reachability_agrees_with_reference_bfs_and_terminates_on_cycles() {
    let mut rng = Lcg(0xCAFE);
    for round in 0..40 {
        let n = 3 + rng.below(8);
        let prog = gen_program(&mut rng, n);
        let graph = CallGraph::build([("crates/x/src/gen.rs", lex(&prog.src).toks.as_slice())]
            .iter()
            .map(|(r, t)| (*r, *t)));
        let roots = vec![rng.below(prog.n_fns)];
        let mask = graph.reachable_from(&roots);
        let want = reference_reachable(&prog.calls, &roots);
        for (i, &reached) in mask.iter().enumerate() {
            assert_eq!(reached, want.contains(&i), "round {round}: reachability of f{i}");
        }
    }
}

#[test]
fn reaching_is_the_transpose_of_reachable_from() {
    let mut rng = Lcg(0xF00);
    for _ in 0..20 {
        let n = 3 + rng.below(6);
        let prog = gen_program(&mut rng, n);
        let graph = CallGraph::build([("crates/x/src/gen.rs", lex(&prog.src).toks.as_slice())]
            .iter()
            .map(|(r, t)| (*r, *t)));
        for a in 0..prog.n_fns {
            let fwd = graph.reachable_from(&[a]);
            for (b, &forward) in fwd.iter().enumerate() {
                let back = graph.reaching(&[b]);
                assert_eq!(
                    forward, back[a],
                    "reaching must be the transpose: f{a} ->* f{b}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Documented limits. Each test pins one deliberate over- or
// under-approximation from DESIGN.md §"Static analysis — known limits".
// ---------------------------------------------------------------------

#[test]
fn limit_method_calls_merge_all_same_name_impls() {
    // No type inference: `x.reset()` resolves to EVERY `fn reset` in any
    // impl block — the graph over-approximates reachability.
    let src = "
        impl Alpha { fn reset(&mut self) {} }
        impl Beta { fn reset(&mut self) {} }
        fn driver(x: &mut Alpha) { x.reset(); }
    ";
    let lexed = lex(src);
    let graph = CallGraph::build([("crates/x/src/m.rs", lexed.toks.as_slice())]
        .iter()
        .map(|(r, t)| (*r, *t)));
    let driver = graph
        .ids_where(|n| n.item.name == "driver")
        .pop()
        .unwrap();
    let callees: BTreeSet<&str> = graph.edges[driver]
        .iter()
        .map(|&(c, _)| graph.nodes[c].item.owner.as_deref().unwrap())
        .collect();
    assert_eq!(
        callees,
        BTreeSet::from(["Alpha", "Beta"]),
        "method merge is the documented over-approximation"
    );
}

#[test]
fn limit_qualified_calls_prefer_the_named_owner() {
    let src = "
        impl Alpha { fn reset(&mut self) {} }
        impl Beta { fn reset(&mut self) {} }
        fn driver() { Alpha::reset(); }
    ";
    let lexed = lex(src);
    let graph = CallGraph::build([("crates/x/src/q.rs", lexed.toks.as_slice())]
        .iter()
        .map(|(r, t)| (*r, *t)));
    let driver = graph.ids_where(|n| n.item.name == "driver").pop().unwrap();
    let callees: Vec<&str> = graph.edges[driver]
        .iter()
        .map(|&(c, _)| graph.nodes[c].item.owner.as_deref().unwrap())
        .collect();
    assert_eq!(callees, ["Alpha"], "qualifier narrows to the named impl");
}

#[test]
fn limit_function_pointers_and_macros_are_invisible() {
    // Calls through stored function pointers and calls fabricated by
    // macro expansion make no edges: the graph under-approximates here,
    // which is why d4/t3 scope to files where neither idiom is used.
    let src = "
        fn target() {}
        fn indirect(cb: fn()) { (cb)(); }
        fn install() { let cb: fn() = target; indirect(cb); }
        macro_rules! call_target { () => { target() }; }
        fn via_macro() { call_target!(); }
    ";
    let lexed = lex(src);
    let graph = CallGraph::build([("crates/x/src/p.rs", lexed.toks.as_slice())]
        .iter()
        .map(|(r, t)| (*r, *t)));
    let target = graph.ids_where(|n| n.item.name == "target").pop().unwrap();
    let callers: Vec<&str> = graph.callers[target]
        .iter()
        .map(|&(c, _)| graph.nodes[c].item.name.as_str())
        .collect();
    // `install` names `target` as a value, which the name-based resolver
    // conservatively counts; the pointer *invocation* in `indirect` and
    // the macro body's call site do not produce `indirect`/`via_macro`
    // edges.
    assert!(
        !callers.contains(&"indirect") && !callers.contains(&"via_macro"),
        "fn-pointer and macro call sites must stay invisible, got {callers:?}"
    );
}

#[test]
fn limit_test_functions_never_enter_the_graph() {
    let src = "
        fn live() { helper(); }
        fn helper() {}
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { super::helper(); }
        }
    ";
    let lexed = lex(src);
    let graph = CallGraph::build([("crates/x/src/t.rs", lexed.toks.as_slice())]
        .iter()
        .map(|(r, t)| (*r, *t)));
    assert!(graph.nodes.iter().all(|n| n.item.name != "t"));
    let helper = graph.ids_where(|n| n.item.name == "helper").pop().unwrap();
    let callers: Vec<&str> = graph.callers[helper]
        .iter()
        .map(|&(c, _)| graph.nodes[c].item.name.as_str())
        .collect();
    assert_eq!(callers, ["live"], "only the non-test caller counts");
}
