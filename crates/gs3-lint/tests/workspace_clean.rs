//! The workspace itself must be lint-clean: `cargo test -p gs3-lint`
//! doubles as the static-analysis gate, so a determinism or totality
//! regression fails the ordinary test suite even before CI runs the
//! dedicated `lint` job.

use gs3_lint::{analyze_with, load_workspace, SchemaCheck};

#[test]
fn workspace_has_no_unjustified_findings() {
    let root = gs3_lint::find_workspace_root();
    let files = load_workspace(&root).expect("workspace readable");
    assert!(
        files.len() > 50,
        "workspace walk looks truncated: {} files",
        files.len()
    );
    let committed = gs3_lint::load_committed_schema(&root);
    let findings = analyze_with(&files, SchemaCheck::Committed(committed.as_deref()));
    let errors: Vec<String> = findings
        .iter()
        .filter(|f| f.allowed.is_none())
        .map(|f| format!("[{}] {}:{}: {}", f.rule, f.rel, f.line, f.msg))
        .collect();
    assert!(
        errors.is_empty(),
        "unjustified lint findings:\n{}",
        errors.join("\n")
    );
}

#[test]
fn protocol_model_is_extracted_from_real_sources() {
    let root = gs3_lint::find_workspace_root();
    let files = load_workspace(&root).expect("workspace readable");
    let model = gs3_lint::model::ProtocolModel::extract(
        files.iter().map(|f| (f.rel.as_str(), f.lexed.toks.as_slice())),
    );
    // The real enums are large; an extraction regression would silently
    // disable the totality rules.
    assert!(model.msg_variants.len() >= 25, "Msg variants: {:?}", model.msg_variants);
    assert!(model.timer_variants.len() >= 12, "Timer variants: {:?}", model.timer_variants);
    assert!(model.msg_variants.contains("HeadInterAlive"));
    assert!(model.timer_variants.contains("Retransmit"));
}

#[test]
fn committed_wire_schema_matches_sources() {
    // The byte-level drift gate: regenerating the schema from today's
    // sources must reproduce the committed file exactly. CI enforces the
    // same property via `--write-schema` + `git diff --exit-code`; this
    // test catches it at `cargo test` time with a pointable message.
    let root = gs3_lint::find_workspace_root();
    let files = load_workspace(&root).expect("workspace readable");
    let model = gs3_lint::model::ProtocolModel::extract(
        files.iter().map(|f| (f.rel.as_str(), f.lexed.toks.as_slice())),
    );
    assert_eq!(
        model.layouts.len(),
        gs3_lint::model::WIRE_ENUMS.len(),
        "a pinned wire enum was not found in its source file"
    );
    let committed = gs3_lint::load_committed_schema(&root)
        .expect("protocol.schema.json missing — run `cargo run -p gs3-lint -- --write-schema`");
    let generated = gs3_lint::schema::render(&model.layouts);
    assert!(
        committed == generated,
        "wire schema drifted from crates/gs3-lint/protocol.schema.json — if the \
         protocol change is intentional, regenerate with \
         `cargo run -p gs3-lint -- --write-schema` and commit the diff"
    );
}
