//! The six contract rules.
//!
//! | rule | contract |
//! |------|----------|
//! | `d1` | no `std::collections::HashMap`/`HashSet` in protocol paths (`gs3-core`, `gs3-sim`) — iteration order would leak into traces and digests; use `FxHashMap` with sorted iteration, or `BTreeMap`/`BTreeSet` |
//! | `d2` | no `rand::thread_rng`, `Instant::now`, `SystemTime`, or `std::time` reads outside `gs3-sim/src/time.rs` — all time and randomness must flow from the seeded simulation clock |
//! | `d3` | no direct `f64 ==`/`!=` against float literals on geometry values, and no `partial_cmp(…).unwrap()` — use the NaN-total `total_cmp` comparators |
//! | `t1` | protocol dispatch matches over `Msg`/`Timer` must be total: no `_ =>` wildcard arms in handler matches, and near-total matches must name every variant |
//! | `t2` | every `Timer` class passed to `set_timer` must have a dispatch (expiry) arm somewhere in `gs3-core` |
//! | `a1` | no `Box`/`Rc` and no std map/set types in the simulator's per-event hot path (`gs3-sim` engine/queue/spatial) — the million-node target needs dense arena columns indexed by `u32`, not per-node heap indirection or keyed lookups |

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::model::{find_matches, ProtocolModel};

/// Method/function names whose `f64` results are geometry values; a
/// float-literal equality against any of these is a `d3` finding in every
/// crate (inside `gs3-geometry`, all float-literal equalities count).
const GEOM_FNS: [&str; 8] =
    ["length", "distance", "radians", "degrees", "dot", "cross", "norm", "length_squared"];

fn is_protocol_path(rel: &str) -> bool {
    rel.starts_with("crates/gs3-core/src") || rel.starts_with("crates/gs3-sim/src")
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, rel: &str, line: u32, msg: String) {
    findings.push(Finding { rule, rel: rel.to_string(), line, msg, allowed: None });
}

/// `d1`: unordered std hash containers in protocol paths.
pub fn check_d1(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    if !is_protocol_path(rel) {
        return;
    }
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                findings,
                "d1",
                rel,
                t.line,
                format!(
                    "std::collections::{} in a protocol path: hash iteration order would \
                     leak into traces/digests — use FxHashMap with sorted iteration, or \
                     BTreeMap/BTreeSet",
                    t.text
                ),
            );
        }
    }
}

/// `d2`: ambient time or entropy outside the simulation clock.
pub fn check_d2(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    if rel.ends_with("gs3-sim/src/time.rs") {
        return;
    }
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "thread_rng" => push(
                    findings,
                    "d2",
                    rel,
                    t.line,
                    "thread_rng draws ambient entropy — draw from the seeded engine RNG \
                     (ctx.rng()) instead"
                        .to_string(),
                ),
                "SystemTime" => push(
                    findings,
                    "d2",
                    rel,
                    t.line,
                    "SystemTime reads the wall clock — use the simulation clock (SimTime)"
                        .to_string(),
                ),
                "Instant" if toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| n.text == "now") =>
                {
                    push(
                        findings,
                        "d2",
                        rel,
                        t.line,
                        "Instant::now reads the wall clock — use the simulation clock (ctx.now())"
                            .to_string(),
                    );
                }
                // `std::time::<anything but Duration>` (Duration is an inert
                // value type; Instant/SystemTime are clock reads).
                "std" if toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| n.text == "time")
                    && toks.get(i + 3).is_some_and(|n| n.text == "::")
                    && toks.get(i + 4).is_some_and(|n| n.text != "Duration") =>
                {
                    push(
                        findings,
                        "d2",
                        rel,
                        t.line,
                        "std::time import beyond Duration — wall-clock types are banned in \
                         deterministic paths"
                            .to_string(),
                    );
                    i += 4;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Files forming the simulator's per-event hot path; `a1` keeps their
/// storage dense. The data-plane pair runs once per queued batch and
/// per drained frame, which at a 10k-node convergecast funnel is the
/// same per-event cadence as the engine itself.
const HOT_PATHS: [&str; 6] = [
    "crates/gs3-sim/src/engine.rs",
    "crates/gs3-sim/src/queue.rs",
    "crates/gs3-sim/src/spatial.rs",
    "crates/gs3-sim/src/channel.rs",
    "crates/gs3-dataplane/src/queue.rs",
    "crates/gs3-core/src/workload.rs",
];

/// `a1`: heap indirection in hot-path storage. The engine's scaling
/// contract is arena/SoA columns indexed by dense `u32` node ids: a
/// per-node `Box`/`Rc` adds a pointer chase per event, and a map/set
/// keyed by id adds a hash or tree walk where `column[id.index()]` is a
/// single load. (`FxHashMap` keyed by *cell coordinates* in the spatial
/// grid is the deliberate exception — cell keys are sparse — and is not
/// a std type, so it does not trip this rule.)
pub fn check_a1(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    if !HOT_PATHS.contains(&rel) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = |s: &str| toks.get(i + 1).is_some_and(|n| n.text == s);
        match t.text.as_str() {
            "Box" | "Rc" if next("<") || next("::") => push(
                findings,
                "a1",
                rel,
                t.line,
                format!(
                    "{} in the per-event hot path: per-node heap indirection defeats the \
                     arena/SoA layout — store the value inline in a dense column",
                    t.text
                ),
            ),
            "HashMap" | "HashSet" | "BTreeMap" | "BTreeSet" => push(
                findings,
                "a1",
                rel,
                t.line,
                format!(
                    "std {} in the per-event hot path: keyed lookups cost a hash/tree walk \
                     per event — index a dense Vec column by NodeId instead",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// `d3`: NaN-unsafe float comparisons on geometry values.
pub fn check_d3(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    let geometry_crate = rel.starts_with("crates/gs3-geometry");
    for (i, t) in toks.iter().enumerate() {
        // partial_cmp(…).unwrap() — a NaN anywhere poisons the unwrap.
        if t.kind == TokKind::Ident
            && t.text == "partial_cmp"
            && i > 0
            && toks[i - 1].text != "fn"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(close) = matching_close(toks, i + 1) {
                if toks.get(close + 1).is_some_and(|n| n.text == ".")
                    && toks.get(close + 2).is_some_and(|n| n.text == "unwrap")
                {
                    push(
                        findings,
                        "d3",
                        rel,
                        t.line,
                        "partial_cmp(..).unwrap() panics on NaN — use f64::total_cmp"
                            .to_string(),
                    );
                }
            }
        }
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let lit_right = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float)
            || (toks.get(i + 1).is_some_and(|n| n.text == "-")
                && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Float));
        let lit_left = i > 0 && toks[i - 1].kind == TokKind::Float;
        if !lit_right && !lit_left {
            continue;
        }
        let geom_operand = (i > 0 && lhs_is_geometry(toks, i - 1))
            || (lit_left && rhs_is_geometry(toks, i + 1));
        if geometry_crate || geom_operand {
            push(
                findings,
                "d3",
                rel,
                t.line,
                format!(
                    "float-literal `{}` on a geometry value is not NaN-total — compare via \
                     f64::total_cmp (e.g. `x.total_cmp(&0.0).is_eq()`)",
                    t.text
                ),
            );
        }
    }
}

/// Whether the expression ending at `end` is a geometry accessor: a call
/// to one of [`GEOM_FNS`] or an `.x`/`.y` field read.
fn lhs_is_geometry(toks: &[Tok], end: usize) -> bool {
    let t = &toks[end];
    if t.text == ")" {
        if let Some(open) = matching_open(toks, end) {
            return open > 0
                && toks[open - 1].kind == TokKind::Ident
                && GEOM_FNS.contains(&toks[open - 1].text.as_str());
        }
        return false;
    }
    t.kind == TokKind::Ident
        && (t.text == "x" || t.text == "y")
        && end > 0
        && toks[end - 1].text == "."
}

/// Whether the expression starting at `start` is a geometry accessor call
/// chain (e.g. `0.0 == v.length()`).
fn rhs_is_geometry(toks: &[Tok], start: usize) -> bool {
    let mut i = start;
    // Walk a `recv.method().method()`-style chain looking for a GEOM_FN.
    let mut steps = 0;
    while i < toks.len() && steps < 16 {
        let t = &toks[i];
        if t.kind == TokKind::Ident && GEOM_FNS.contains(&t.text.as_str()) {
            return toks.get(i + 1).is_some_and(|n| n.text == "(");
        }
        match t.text.as_str() {
            ";" | "," | "{" | "&&" | "||" => return false,
            _ => {}
        }
        i += 1;
        steps += 1;
    }
    false
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close`.
fn matching_open(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        match toks[j].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// `t1`: protocol dispatch totality over `Msg`/`Timer`.
pub fn check_t1(rel: &str, toks: &[Tok], model: &ProtocolModel, findings: &mut Vec<Finding>) {
    if !rel.starts_with("crates/gs3-core/src") {
        return;
    }
    for m in find_matches(toks) {
        let mut by_enum: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (e, v, _) in &m.pattern_variants {
            by_enum.entry(e.as_str()).or_default().insert(v.as_str());
        }
        if by_enum.is_empty() {
            continue;
        }
        // A wildcard arm in a match that dispatches on protocol enums hides
        // newly added variants from the compiler's exhaustiveness check.
        if let Some(line) = m.wildcard {
            push(
                findings,
                "t1",
                rel,
                line,
                "wildcard `_ =>` arm in a protocol dispatch match — name every \
                 Msg/Timer variant so new variants fail to compile until handled"
                    .to_string(),
            );
        }
        for (enum_name, seen) in &by_enum {
            let all = match *enum_name {
                "Msg" => &model.msg_variants,
                _ => &model.timer_variants,
            };
            if all.is_empty() {
                continue;
            }
            // Near-total matches (≥ half the enum) are dispatch matches and
            // must be total; small matches are ordinary conditionals.
            let threshold = (all.len() / 2).max(2);
            if seen.len() >= threshold && seen.len() < all.len() {
                let missing: Vec<&str> = all
                    .iter()
                    .map(String::as_str)
                    .filter(|v| !seen.contains(*v))
                    .collect();
                push(
                    findings,
                    "t1",
                    rel,
                    m.line,
                    format!(
                        "dispatch match covers {}/{} {enum_name} variants — missing: {}",
                        seen.len(),
                        all.len(),
                        missing.join(", ")
                    ),
                );
            }
        }
    }
}

/// `t2` (workspace pass over `gs3-core`): every timer class that is set
/// must have a reachable expiry arm in some dispatch match.
pub fn check_t2(files: &[(String, Vec<Tok>)], model: &ProtocolModel, findings: &mut Vec<Finding>) {
    if model.timer_variants.is_empty() {
        return;
    }
    // (variant, rel, line) of each first set site, and the handled set.
    let mut set_sites: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut handled: BTreeSet<String> = BTreeSet::new();
    for (rel, toks) in files {
        if !rel.starts_with("crates/gs3-core/src") {
            continue;
        }
        for m in find_matches(toks) {
            for (e, v, _) in &m.pattern_variants {
                if e == "Timer" {
                    handled.insert(v.clone());
                }
            }
        }
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && t.text == "set_timer"
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
            {
                let close = matching_close(toks, i + 1).unwrap_or(toks.len() - 1);
                for k in i + 2..close.saturating_sub(2) {
                    if toks[k].text == "Timer"
                        && toks[k + 1].text == "::"
                        && toks[k + 2].kind == TokKind::Ident
                    {
                        set_sites
                            .entry(toks[k + 2].text.clone())
                            .or_insert_with(|| (rel.clone(), toks[k].line));
                    }
                }
            }
        }
    }
    for (variant, (rel, line)) in &set_sites {
        if !handled.contains(variant) {
            findings.push(Finding {
                rule: "t2",
                rel: rel.clone(),
                line: *line,
                msg: format!(
                    "Timer::{variant} is set here but no dispatch match handles its expiry \
                     — the timer would fire into an unhandled arm"
                ),
                allowed: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_d3(rel: &str, src: &str) -> Vec<Finding> {
        let mut f = Vec::new();
        check_d3(rel, &lex(src).toks, &mut f);
        f
    }

    #[test]
    fn d1_flags_only_protocol_paths() {
        let src = "use std::collections::HashMap;";
        let mut f = Vec::new();
        check_d1("crates/gs3-core/src/x.rs", &lex(src).toks, &mut f);
        assert_eq!(f.len(), 1);
        let mut f = Vec::new();
        check_d1("crates/gs3-analysis/src/x.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn d2_duration_is_exempt() {
        let src = "use std::time::Duration; fn f() -> Duration { Duration::ZERO }";
        let mut f = Vec::new();
        check_d2("crates/gs3-bench/src/x.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
        let src = "use std::time::Instant; let t = Instant::now();";
        let mut f = Vec::new();
        check_d2("crates/gs3-bench/src/x.rs", &lex(src).toks, &mut f);
        assert_eq!(f.len(), 2, "import + call site");
    }

    #[test]
    fn d2_exempts_the_sim_clock() {
        let src = "let t = Instant::now();";
        let mut f = Vec::new();
        check_d2("crates/gs3-sim/src/time.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn a1_flags_only_hot_paths() {
        let src = "struct S { n: Vec<Box<Node>>, m: BTreeMap<u32, u64> } fn f() { Rc::new(3); }";
        let mut f = Vec::new();
        check_a1("crates/gs3-sim/src/engine.rs", &lex(src).toks, &mut f);
        assert_eq!(f.len(), 3);
        // Cold-path files in the same crate keep their ordered maps.
        let mut f = Vec::new();
        check_a1("crates/gs3-sim/src/trace.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
        // The data-plane per-batch path is held to the same standard...
        let mut f = Vec::new();
        check_a1("crates/gs3-core/src/workload.rs", &lex(src).toks, &mut f);
        assert_eq!(f.len(), 3);
        // ...but the sink ledger's sparse-keyed replay map is cold-path.
        let mut f = Vec::new();
        check_a1("crates/gs3-dataplane/src/ledger.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn a1_ignores_bare_idents_and_fxhashmap() {
        // A plain ident that merely shadows the name is not heap storage,
        // and the cell-keyed FxHashMap alias is the sanctioned exception.
        let src = "let cells: FxHashMap<(i64, i64), Vec<usize>> = FxHashMap::default();";
        let mut f = Vec::new();
        check_a1("crates/gs3-sim/src/spatial.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn d3_geometry_accessor_anywhere() {
        let f = run_d3("crates/gs3-core/src/x.rs", "if v.length() == 0.0 { }");
        assert_eq!(f.len(), 1);
        let f = run_d3("crates/gs3-core/src/x.rs", "if 0.0 == v.length() { }");
        assert_eq!(f.len(), 1);
        // Config sentinels outside the geometry crate are not geometry.
        let f = run_d3("crates/gs3-core/src/x.rs", "if cfg.energy == 0.0 { }");
        assert!(f.is_empty());
    }

    #[test]
    fn d3_everything_in_geometry_crate() {
        let f = run_d3("crates/gs3-geometry/src/x.rs", "if len == 0.0 { }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn d3_partial_cmp_unwrap() {
        let f = run_d3("crates/gs3-core/src/x.rs", "a.partial_cmp(&b).unwrap()");
        assert_eq!(f.len(), 1);
        // Trait impls (fn partial_cmp) and non-unwrap uses are fine.
        let f = run_d3(
            "crates/gs3-core/src/x.rs",
            "fn partial_cmp(&self, o: &Self) -> Option<Ordering> { a.partial_cmp(&b) }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn t2_set_without_handler() {
        let model = ProtocolModel {
            msg_variants: BTreeSet::new(),
            timer_variants: ["Ping", "Pong"].iter().map(|s| s.to_string()).collect(),
        };
        let src = "\
fn f(ctx: &mut Ctx) {
    ctx.set_timer(d, Timer::Ping);
    ctx.set_timer(d, Timer::Pong);
    match t {
        Timer::Ping => {}
        Timer::Pong => {}
    }
}\n";
        let files = vec![("crates/gs3-core/src/x.rs".to_string(), lex(src).toks)];
        let mut f = Vec::new();
        check_t2(&files, &model, &mut f);
        assert!(f.is_empty());

        let src2 = "fn f(ctx: &mut Ctx) { ctx.set_timer(d, Timer::Pong); match t { Timer::Ping => {} } }";
        let files = vec![("crates/gs3-core/src/x.rs".to_string(), lex(src2).toks)];
        let mut f = Vec::new();
        check_t2(&files, &model, &mut f);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("Timer::Pong"));
    }
}
