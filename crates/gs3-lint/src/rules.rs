//! The contract rules.
//!
//! | rule | contract |
//! |------|----------|
//! | `d1` | no `std::collections::HashMap`/`HashSet` in protocol paths (`gs3-core`, `gs3-sim`) — iteration order would leak into traces and digests; use `FxHashMap` with sorted iteration, or `BTreeMap`/`BTreeSet` |
//! | `d2` | no `rand::thread_rng`, `Instant::now`, `SystemTime`, or `std::time` reads outside `gs3-sim/src/time.rs` — all time and randomness must flow from the seeded simulation clock |
//! | `d3` | no direct `f64 ==`/`!=` against float literals on geometry values, and no `partial_cmp(…).unwrap()` — use the NaN-total `total_cmp` comparators |
//! | `d4` | RNG inertness (cross-procedural): every seeded-RNG draw in a config-gated subsystem file that is reachable from protocol entry points must be dominated by that subsystem's config guard, either in its own function or on every reachable call path — a disabled subsystem must not shift the shared RNG stream |
//! | `d5` | iteration-order audit: no iteration over `FxHashMap`/`FxHashSet` (including `for_each_cell`) in protocol paths unless the consumer sorts or the reduction is order-erasing — hash order must never flow into digests, wire traffic, or scheduling |
//! | `t1` | protocol dispatch matches over `Msg`/`Timer` must be total: no `_ =>` wildcard arms in handler matches, and near-total matches must name every variant |
//! | `t2` | every `Timer` class passed to `set_timer` must have a dispatch (expiry) arm somewhere in `gs3-core` |
//! | `t3` | sender↔handler reachability over the call graph: every `Msg` variant constructed in reachable non-test code must have a reachable `gs3-core` dispatch arm, and every dispatch arm must correspond to a variant some reachable code constructs (no dead protocol arms) |
//! | `w1` | wire-schema pinning (in `schema.rs`): the `Msg`/`Timer`/`FaultKind` layouts must byte-match the committed `protocol.schema.json`; regenerate explicitly with `--write-schema` |
//! | `a1` | no `Box`/`Rc` and no std map/set types in the simulator's per-event hot path (`gs3-sim` engine/queue/spatial) — the million-node target needs dense arena columns indexed by `u32`, not per-node heap indirection or keyed lookups |
//! | `a2` | parallel readiness: no `RefCell`/`Cell`/`Mutex`/`static`/`thread_local!` (interior mutability or ambient globals) in the engine hot-path files — the intra-run parallel DES roadmap item needs these files `Sync`-safe with explicit state passing |

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::model::{find_matches, ProtocolModel};
use crate::syntax::extract_fns;

/// Method/function names whose `f64` results are geometry values; a
/// float-literal equality against any of these is a `d3` finding in every
/// crate (inside `gs3-geometry`, all float-literal equalities count).
const GEOM_FNS: [&str; 8] =
    ["length", "distance", "radians", "degrees", "dot", "cross", "norm", "length_squared"];

fn is_protocol_path(rel: &str) -> bool {
    rel.starts_with("crates/gs3-core/src") || rel.starts_with("crates/gs3-sim/src")
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, rel: &str, line: u32, msg: String) {
    findings.push(Finding { rule, rel: rel.to_string(), line, msg, allowed: None });
}

/// `d1`: unordered std hash containers in protocol paths.
pub fn check_d1(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    if !is_protocol_path(rel) {
        return;
    }
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                findings,
                "d1",
                rel,
                t.line,
                format!(
                    "std::collections::{} in a protocol path: hash iteration order would \
                     leak into traces/digests — use FxHashMap with sorted iteration, or \
                     BTreeMap/BTreeSet",
                    t.text
                ),
            );
        }
    }
}

/// `d2`: ambient time or entropy outside the simulation clock.
pub fn check_d2(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    if rel.ends_with("gs3-sim/src/time.rs") {
        return;
    }
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "thread_rng" => push(
                    findings,
                    "d2",
                    rel,
                    t.line,
                    "thread_rng draws ambient entropy — draw from the seeded engine RNG \
                     (ctx.rng()) instead"
                        .to_string(),
                ),
                "SystemTime" => push(
                    findings,
                    "d2",
                    rel,
                    t.line,
                    "SystemTime reads the wall clock — use the simulation clock (SimTime)"
                        .to_string(),
                ),
                "Instant" if toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| n.text == "now") =>
                {
                    push(
                        findings,
                        "d2",
                        rel,
                        t.line,
                        "Instant::now reads the wall clock — use the simulation clock (ctx.now())"
                            .to_string(),
                    );
                }
                // `std::time::<anything but Duration>` (Duration is an inert
                // value type; Instant/SystemTime are clock reads).
                "std" if toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| n.text == "time")
                    && toks.get(i + 3).is_some_and(|n| n.text == "::")
                    && toks.get(i + 4).is_some_and(|n| n.text != "Duration") =>
                {
                    push(
                        findings,
                        "d2",
                        rel,
                        t.line,
                        "std::time import beyond Duration — wall-clock types are banned in \
                         deterministic paths"
                            .to_string(),
                    );
                    i += 4;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Files forming the simulator's per-event hot path; `a1` keeps their
/// storage dense. The data-plane pair runs once per queued batch and
/// per drained frame, which at a 10k-node convergecast funnel is the
/// same per-event cadence as the engine itself.
const HOT_PATHS: [&str; 6] = [
    "crates/gs3-sim/src/engine.rs",
    "crates/gs3-sim/src/queue.rs",
    "crates/gs3-sim/src/spatial.rs",
    "crates/gs3-sim/src/channel.rs",
    "crates/gs3-dataplane/src/queue.rs",
    "crates/gs3-core/src/workload.rs",
];

/// `a1`: heap indirection in hot-path storage. The engine's scaling
/// contract is arena/SoA columns indexed by dense `u32` node ids: a
/// per-node `Box`/`Rc` adds a pointer chase per event, and a map/set
/// keyed by id adds a hash or tree walk where `column[id.index()]` is a
/// single load. (`FxHashMap` keyed by *cell coordinates* in the spatial
/// grid is the deliberate exception — cell keys are sparse — and is not
/// a std type, so it does not trip this rule.)
pub fn check_a1(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    if !HOT_PATHS.contains(&rel) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = |s: &str| toks.get(i + 1).is_some_and(|n| n.text == s);
        match t.text.as_str() {
            "Box" | "Rc" if next("<") || next("::") => push(
                findings,
                "a1",
                rel,
                t.line,
                format!(
                    "{} in the per-event hot path: per-node heap indirection defeats the \
                     arena/SoA layout — store the value inline in a dense column",
                    t.text
                ),
            ),
            "HashMap" | "HashSet" | "BTreeMap" | "BTreeSet" => push(
                findings,
                "a1",
                rel,
                t.line,
                format!(
                    "std {} in the per-event hot path: keyed lookups cost a hash/tree walk \
                     per event — index a dense Vec column by NodeId instead",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// `d3`: NaN-unsafe float comparisons on geometry values.
pub fn check_d3(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    let geometry_crate = rel.starts_with("crates/gs3-geometry");
    for (i, t) in toks.iter().enumerate() {
        // partial_cmp(…).unwrap() — a NaN anywhere poisons the unwrap.
        if t.kind == TokKind::Ident
            && t.text == "partial_cmp"
            && i > 0
            && toks[i - 1].text != "fn"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(close) = matching_close(toks, i + 1) {
                if toks.get(close + 1).is_some_and(|n| n.text == ".")
                    && toks.get(close + 2).is_some_and(|n| n.text == "unwrap")
                {
                    push(
                        findings,
                        "d3",
                        rel,
                        t.line,
                        "partial_cmp(..).unwrap() panics on NaN — use f64::total_cmp"
                            .to_string(),
                    );
                }
            }
        }
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let lit_right = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float)
            || (toks.get(i + 1).is_some_and(|n| n.text == "-")
                && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Float));
        let lit_left = i > 0 && toks[i - 1].kind == TokKind::Float;
        if !lit_right && !lit_left {
            continue;
        }
        let geom_operand = (i > 0 && lhs_is_geometry(toks, i - 1))
            || (lit_left && rhs_is_geometry(toks, i + 1));
        if geometry_crate || geom_operand {
            push(
                findings,
                "d3",
                rel,
                t.line,
                format!(
                    "float-literal `{}` on a geometry value is not NaN-total — compare via \
                     f64::total_cmp (e.g. `x.total_cmp(&0.0).is_eq()`)",
                    t.text
                ),
            );
        }
    }
}

/// Whether the expression ending at `end` is a geometry accessor: a call
/// to one of [`GEOM_FNS`] or an `.x`/`.y` field read.
fn lhs_is_geometry(toks: &[Tok], end: usize) -> bool {
    let t = &toks[end];
    if t.text == ")" {
        if let Some(open) = matching_open(toks, end) {
            return open > 0
                && toks[open - 1].kind == TokKind::Ident
                && GEOM_FNS.contains(&toks[open - 1].text.as_str());
        }
        return false;
    }
    t.kind == TokKind::Ident
        && (t.text == "x" || t.text == "y")
        && end > 0
        && toks[end - 1].text == "."
}

/// Whether the expression starting at `start` is a geometry accessor call
/// chain (e.g. `0.0 == v.length()`).
fn rhs_is_geometry(toks: &[Tok], start: usize) -> bool {
    let mut i = start;
    // Walk a `recv.method().method()`-style chain looking for a GEOM_FN.
    let mut steps = 0;
    while i < toks.len() && steps < 16 {
        let t = &toks[i];
        if t.kind == TokKind::Ident && GEOM_FNS.contains(&t.text.as_str()) {
            return toks.get(i + 1).is_some_and(|n| n.text == "(");
        }
        match t.text.as_str() {
            ";" | "," | "{" | "&&" | "||" => return false,
            _ => {}
        }
        i += 1;
        steps += 1;
    }
    false
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close`.
fn matching_open(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        match toks[j].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// `t1`: protocol dispatch totality over `Msg`/`Timer`.
pub fn check_t1(rel: &str, toks: &[Tok], model: &ProtocolModel, findings: &mut Vec<Finding>) {
    if !rel.starts_with("crates/gs3-core/src") {
        return;
    }
    for m in find_matches(toks) {
        let mut by_enum: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (e, v, _) in &m.pattern_variants {
            by_enum.entry(e.as_str()).or_default().insert(v.as_str());
        }
        if by_enum.is_empty() {
            continue;
        }
        // A wildcard arm in a match that dispatches on protocol enums hides
        // newly added variants from the compiler's exhaustiveness check.
        if let Some(line) = m.wildcard {
            push(
                findings,
                "t1",
                rel,
                line,
                "wildcard `_ =>` arm in a protocol dispatch match — name every \
                 Msg/Timer variant so new variants fail to compile until handled"
                    .to_string(),
            );
        }
        for (enum_name, seen) in &by_enum {
            let all = match *enum_name {
                "Msg" => &model.msg_variants,
                _ => &model.timer_variants,
            };
            if all.is_empty() {
                continue;
            }
            // Near-total matches (≥ half the enum) are dispatch matches and
            // must be total; small matches are ordinary conditionals.
            let threshold = (all.len() / 2).max(2);
            if seen.len() >= threshold && seen.len() < all.len() {
                let missing: Vec<&str> = all
                    .iter()
                    .map(String::as_str)
                    .filter(|v| !seen.contains(*v))
                    .collect();
                push(
                    findings,
                    "t1",
                    rel,
                    m.line,
                    format!(
                        "dispatch match covers {}/{} {enum_name} variants — missing: {}",
                        seen.len(),
                        all.len(),
                        missing.join(", ")
                    ),
                );
            }
        }
    }
}

/// `t2` (workspace pass over `gs3-core`): every timer class that is set
/// must have a reachable expiry arm in some dispatch match.
pub fn check_t2(files: &[(String, Vec<Tok>)], model: &ProtocolModel, findings: &mut Vec<Finding>) {
    if model.timer_variants.is_empty() {
        return;
    }
    // (variant, rel, line) of each first set site, and the handled set.
    let mut set_sites: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut handled: BTreeSet<String> = BTreeSet::new();
    for (rel, toks) in files {
        if !rel.starts_with("crates/gs3-core/src") {
            continue;
        }
        for m in find_matches(toks) {
            for (e, v, _) in &m.pattern_variants {
                if e == "Timer" {
                    handled.insert(v.clone());
                }
            }
        }
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && t.text == "set_timer"
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
            {
                let close = matching_close(toks, i + 1).unwrap_or(toks.len() - 1);
                for k in i + 2..close.saturating_sub(2) {
                    if toks[k].text == "Timer"
                        && toks[k + 1].text == "::"
                        && toks[k + 2].kind == TokKind::Ident
                    {
                        set_sites
                            .entry(toks[k + 2].text.clone())
                            .or_insert_with(|| (rel.clone(), toks[k].line));
                    }
                }
            }
        }
    }
    for (variant, (rel, line)) in &set_sites {
        if !handled.contains(variant) {
            findings.push(Finding {
                rule: "t2",
                rel: rel.clone(),
                line: *line,
                msg: format!(
                    "Timer::{variant} is set here but no dispatch match handles its expiry \
                     — the timer would fire into an unhandled arm"
                ),
                allowed: None,
            });
        }
    }
}

/// Method names that draw from the seeded RNG. `fill` is deliberately
/// absent (slice `fill` is common in hot paths); turbofish-only forms
/// (`gen::<f64>()`) are not method calls and are not seen — every real
/// draw site in this workspace uses one of these.
const DRAW_FNS: [&str; 9] = [
    "gen", "gen_range", "gen_bool", "gen_ratio", "sample", "fill_bytes", "next_u32", "next_u64",
    "random",
];

/// Config-guard identifiers whose lexical presence before a call site
/// counts as gating that path, across all subsystems.
const GUARD_IDENTS: [&str; 7] =
    ["enabled", "is_off", "is_zero", "unicast_loss", "duplicate", "delay_prob", "broadcast_loss"];

/// Files whose RNG draws sit behind a config switch, with the guard
/// identifiers that switch is read through. A draw in any other file is
/// the protocol's always-on baseline randomness and needs no guard.
fn gate_guards(rel: &str) -> Option<&'static [&'static str]> {
    const ENABLED: &[&str] = &["enabled"];
    const FAULTS: &[&str] = &["is_off", "unicast_loss", "duplicate", "delay_prob"];
    const RADIO: &[&str] = &["is_zero", "broadcast_loss"];
    if rel.ends_with("gs3-core/src/reliable.rs")
        || rel.ends_with("gs3-core/src/congestion.rs")
        || rel.ends_with("gs3-core/src/workload.rs")
        || rel.ends_with("gs3-sim/src/engine.rs")
        || rel.ends_with("gs3-sim/src/medium.rs")
        || rel.starts_with("crates/gs3-dataplane/src/")
    {
        Some(ENABLED)
    } else if rel.ends_with("gs3-sim/src/faults.rs") {
        Some(FAULTS)
    } else if rel.ends_with("gs3-sim/src/radio.rs") {
        Some(RADIO)
    } else {
        None
    }
}

/// Whether any guard identifier appears in `toks[start..end]`. Lexical
/// dominance is an approximation of control dominance: the workspace
/// guard idiom is an early `if !cfg.….enabled { return; }` or a
/// short-circuit `cfg.p > 0.0 && rng.…`, both of which place the guard
/// identifier strictly before the draw in token order.
fn guard_before(toks: &[Tok], start: usize, end: usize, guards: &[&str]) -> bool {
    toks[start..end.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && guards.contains(&t.text.as_str()))
}

/// Graph roots for reachability: every non-test function with no
/// workspace caller is presumed externally reachable (simulation entry
/// points, public API, harness `main`s). Everything else is reached only
/// through its callers.
fn entry_roots(graph: &CallGraph) -> Vec<usize> {
    (0..graph.nodes.len()).filter(|&i| graph.callers[i].is_empty()).collect()
}

/// `d4` (workspace pass): config-gated subsystems must be RNG-inert when
/// disabled. For every draw site in a gated file reachable from entry
/// roots, either the draw's own function reads the subsystem's guard
/// before drawing, or — computed as a least fixpoint over the call graph
/// — every reachable call path into the function passes a guard. Cycles
/// of unguarded callers conservatively stay unguarded.
pub fn check_d4(files: &[(String, Vec<Tok>)], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let toks_of: BTreeMap<&str, &[Tok]> =
        files.iter().map(|(rel, toks)| (rel.as_str(), toks.as_slice())).collect();
    let reachable = graph.reachable_from(&entry_roots(graph));
    // covered[f]: every reachable call path into f passes some guard.
    // Monotone: a node flips to covered only when all its reachable
    // callers' sites are guarded-or-covered, so iteration to fixpoint
    // terminates and unguarded cycles stay uncovered.
    let mut covered = vec![false; graph.nodes.len()];
    loop {
        let mut changed = false;
        for f in 0..graph.nodes.len() {
            if covered[f] || graph.callers[f].is_empty() {
                continue;
            }
            let all_guarded = graph.callers[f].iter().all(|&(caller, idx)| {
                if !reachable[caller] {
                    return true;
                }
                if covered[caller] {
                    return true;
                }
                let node = &graph.nodes[caller];
                let Some(toks) = toks_of.get(node.rel.as_str()) else { return false };
                node.item
                    .body
                    .is_some_and(|(open, _)| guard_before(toks, open, idx, &GUARD_IDENTS))
            });
            if all_guarded && graph.callers[f].iter().any(|&(c, _)| reachable[c]) {
                covered[f] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (f, node) in graph.nodes.iter().enumerate() {
        if !reachable[f] {
            continue;
        }
        let Some(guards) = gate_guards(&node.rel) else { continue };
        let Some((open, _)) = node.item.body else { continue };
        let Some(toks) = toks_of.get(node.rel.as_str()) else { continue };
        for c in &node.calls {
            if !DRAW_FNS.contains(&c.callee.as_str()) || !c.method {
                continue;
            }
            if guard_before(toks, open, c.idx, guards) || covered[f] {
                continue;
            }
            push(
                findings,
                "d4",
                &node.rel,
                c.line,
                format!(
                    "RNG draw `{}` in `{}` is reachable from protocol entry points without \
                     a dominating config guard ({}) in this fn or on every call path — a \
                     disabled subsystem must be RNG-inert, or the shared seeded stream \
                     shifts and every digest changes",
                    c.callee,
                    node.item.name,
                    guards.join("/"),
                ),
            );
        }
    }
}

/// Iterator adapters whose order leaks to the consumer.
const ITER_FNS: [&str; 7] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter"];

/// Tokens in the consuming expression that erase or restore order: the
/// sort family, re-collection into ordered maps, and order-commutative
/// reductions.
const ORDER_SAFE: [&str; 16] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    "sum",
    "count",
    "min",
    "max",
    "all",
    "any",
    "is_empty",
];

/// Whether an order-restoring/erasing token appears in the window. The
/// scan stops at a `fn` keyword so a lookahead tail never credits the
/// *next* item's tokens to this consumer.
fn order_safe_within(toks: &[Tok], start: usize, end: usize) -> bool {
    for t in &toks[start..end.min(toks.len())] {
        if t.kind == TokKind::Ident {
            if t.text == "fn" {
                return false;
            }
            if ORDER_SAFE.contains(&t.text.as_str()) {
                return true;
            }
        }
    }
    false
}

/// `d5`: iteration over hash-ordered containers in protocol paths.
/// Tracks names declared with `FxHashMap`/`FxHashSet` types and flags
/// iteration over them (plus every `for_each_cell` spatial-grid visit,
/// which forwards hash order to its closure) unless the consuming
/// expression sorts or reduces order away. Test functions are exempt —
/// they assert on sims, they don't feed digests.
pub fn check_d5(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    let scoped = rel.starts_with("crates/gs3-core/src")
        || rel.starts_with("crates/gs3-sim/src")
        || rel.starts_with("crates/gs3-dataplane/src");
    if !scoped || rel.ends_with("fxhash.rs") {
        return;
    }
    let test_bodies: Vec<(usize, usize)> = extract_fns(rel, toks)
        .into_iter()
        .filter(|f| f.is_test)
        .filter_map(|f| f.body)
        .collect();
    let in_test = |i: usize| test_bodies.iter().any(|&(a, b)| i > a && i < b);
    // Names declared with an FxHash* type (`name: FxHashMap<…>`,
    // `name: &FxHashMap<…>`, `name = FxHashMap::default()`).
    let mut tracked: BTreeSet<&str> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "FxHashMap" && t.text != "FxHashSet") {
            continue;
        }
        let name_at = |k: usize| {
            (toks[k].kind == TokKind::Ident).then(|| toks[k].text.as_str())
        };
        if i >= 2 && (toks[i - 1].text == ":" || toks[i - 1].text == "=") {
            tracked.extend(name_at(i - 2));
        } else if i >= 3 && toks[i - 1].text == "&" && toks[i - 2].text == ":" {
            tracked.extend(name_at(i - 3));
        }
    }
    let mut flagged: BTreeSet<u32> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(i) {
            continue;
        }
        // `name.iter()` family on a tracked container: audit to the end
        // of the statement for a sort or order-erasing reduction.
        if tracked.contains(t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == ".")
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident && ITER_FNS.contains(&n.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|n| n.text == "(")
        {
            // Audit through the statement plus a short tail: the
            // collect-then-sort idiom sorts in the *next* statement.
            let stmt_end = statement_end(toks, i);
            if !order_safe_within(toks, i, stmt_end + 40) && flagged.insert(t.line) {
                push(findings, "d5", rel, t.line, d5_msg(&t.text));
            }
        }
        // `for pat in …tracked…` headers: audit the loop body plus the
        // statements just after it (collect-then-sort idiom).
        if t.text == "for" {
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let header_hit = toks[i..j.min(toks.len())]
                .iter()
                .find(|h| h.kind == TokKind::Ident && tracked.contains(h.text.as_str()));
            if let (Some(hit), Some(close)) = (header_hit, matching_close(toks, j.min(toks.len().saturating_sub(1)))) {
                if !order_safe_within(toks, i, close + 40) && flagged.insert(hit.line) {
                    push(findings, "d5", rel, hit.line, d5_msg(&hit.text));
                }
            }
        }
        // Spatial-grid visits forward hash order into the closure.
        if t.text == "for_each_cell"
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(close) = matching_close(toks, i + 1) {
                if !order_safe_within(toks, i, close + 40) && flagged.insert(t.line) {
                    push(
                        findings,
                        "d5",
                        rel,
                        t.line,
                        "for_each_cell visits spatial-grid cells in hash order — sort in \
                         the closure or prove the consumer order-independent"
                            .to_string(),
                    );
                }
            }
        }
    }
}

fn d5_msg(name: &str) -> String {
    format!(
        "iteration over FxHash-ordered `{name}` — hash order must not flow into \
         digests, wire traffic, or scheduling; sort the keys first or reduce \
         order-commutatively"
    )
}

/// End of the statement starting at token `i`: the next `;` at relative
/// bracket depth ≤ 0 (capped lookahead keeps pathological token streams
/// cheap).
fn statement_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(i).take(400) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth <= 0 => return j,
            _ => {}
        }
    }
    (i + 400).min(toks.len())
}

/// `t3` (workspace pass): sender↔handler correspondence for `Msg` over
/// the call graph. A variant constructed in reachable non-test code must
/// be named by some reachable dispatch arm in `gs3-core`, and every
/// dispatch arm's variant must be constructed somewhere reachable (a
/// never-sent variant's arm is dead protocol surface). `messages.rs`
/// itself is exempt from the handler side — its `kind()`-style
/// introspection matches name every variant without handling any.
pub fn check_t3(
    files: &[(String, Vec<Tok>)],
    graph: &CallGraph,
    model: &ProtocolModel,
    findings: &mut Vec<Finding>,
) {
    if model.msg_variants.is_empty() {
        return;
    }
    let reachable = graph.reachable_from(&entry_roots(graph));
    // Reachable body ranges per file.
    let mut live: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (f, node) in graph.nodes.iter().enumerate() {
        if reachable[f] {
            if let Some(range) = node.item.body {
                live.entry(node.rel.as_str()).or_default().push(range);
            }
        }
    }
    let mut constructed: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut handled: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for (rel, toks) in files {
        let Some(ranges) = live.get(rel.as_str()) else { continue };
        let in_live = |i: usize| ranges.iter().any(|&(a, b)| i > a && i < b);
        // Token positions that are patterns, not constructions: match arm
        // patterns (guards included), `let`/`if let`/`while let` bindings,
        // and `matches!(…)` bodies.
        let matches = find_matches(toks);
        let mut pattern = vec![false; toks.len()];
        for m in &matches {
            for &(a, b) in &m.pattern_ranges {
                for slot in pattern.iter_mut().take(b.min(toks.len())).skip(a) {
                    *slot = true;
                }
            }
        }
        mark_let_and_macro_patterns(toks, &mut pattern);
        for k in 0..toks.len().saturating_sub(2) {
            if toks[k].text == "Msg"
                && toks[k + 1].text == "::"
                && toks[k + 2].kind == TokKind::Ident
                && !pattern[k]
                && in_live(k)
                && model.msg_variants.contains(&toks[k + 2].text)
            {
                constructed
                    .entry(toks[k + 2].text.clone())
                    .or_insert_with(|| (rel.clone(), toks[k].line));
            }
        }
        if rel.starts_with("crates/gs3-core/src") && !rel.ends_with("messages.rs") {
            for m in &matches {
                if !in_live(m.idx) {
                    continue;
                }
                for (e, v, line) in &m.pattern_variants {
                    if e == "Msg" {
                        handled.entry(v.clone()).or_insert_with(|| (rel.clone(), *line));
                    }
                }
            }
        }
    }
    for (variant, (rel, line)) in &constructed {
        if !handled.contains_key(variant) {
            push(
                findings,
                "t3",
                rel,
                *line,
                format!(
                    "Msg::{variant} is constructed here but no reachable gs3-core dispatch \
                     arm names it — the message would arrive unhandled"
                ),
            );
        }
    }
    for (variant, (rel, line)) in &handled {
        if !constructed.contains_key(variant) {
            push(
                findings,
                "t3",
                rel,
                *line,
                format!(
                    "dead protocol arm: Msg::{variant} is dispatched here but no reachable \
                     code constructs it"
                ),
            );
        }
    }
}

/// Marks `let`-binding patterns (`let P = …`, `if let P = …`,
/// `while let P = …`) and `matches!(…)` argument ranges in `pattern`.
fn mark_let_and_macro_patterns(toks: &[Tok], pattern: &mut [bool]) {
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if toks[i].text == "let" {
            let mut depth = 0i32;
            for (j, t) in toks.iter().enumerate().skip(i + 1) {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" | ";" if depth == 0 => break,
                    _ => {}
                }
                if let Some(slot) = pattern.get_mut(j) {
                    *slot = true;
                }
            }
        } else if toks[i].text == "matches"
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
            && toks.get(i + 2).is_some_and(|n| n.text == "(")
        {
            if let Some(close) = matching_close(toks, i + 2) {
                for slot in pattern.iter_mut().take(close).skip(i + 2) {
                    *slot = true;
                }
            }
        }
    }
}

/// Files the intra-run parallel DES roadmap item will shard across
/// threads; `a2` keeps them free of interior mutability and globals.
const A2_PATHS: [&str; 4] = [
    "crates/gs3-sim/src/engine.rs",
    "crates/gs3-sim/src/queue.rs",
    "crates/gs3-sim/src/spatial.rs",
    "crates/gs3-sim/src/medium.rs",
];

/// Interior-mutability and ambient-global constructs banned by `a2`.
/// (`&'static` lifetimes never appear here: the lexer drops lifetime
/// tokens entirely, so a bare `static` ident is always a static item.)
const A2_BANNED: [&str; 12] = [
    "RefCell",
    "Cell",
    "UnsafeCell",
    "SyncUnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
    "Mutex",
    "RwLock",
    "thread_local",
    "lazy_static",
];

/// `a2`: parallel readiness of the engine hot path. Interior mutability
/// makes a type `!Sync`; statics and `thread_local!` are ambient state a
/// sharded engine cannot replicate per worker. All engine state must be
/// owned fields passed explicitly.
pub fn check_a2(rel: &str, toks: &[Tok], findings: &mut Vec<Finding>) {
    if !A2_PATHS.contains(&rel) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "static" {
            let mutable = toks.get(i + 1).is_some_and(|n| n.text == "mut");
            push(
                findings,
                "a2",
                rel,
                t.line,
                if mutable {
                    "`static mut` in an engine hot-path file is a data race the moment the \
                     parallel DES shards this code — move the state into an owned engine field"
                        .to_string()
                } else {
                    "static item in an engine hot-path file is ambient global state the \
                     parallel DES cannot replicate per worker — pass it explicitly or make \
                     it a `const`"
                        .to_string()
                },
            );
        } else if A2_BANNED.contains(&t.text.as_str()) {
            push(
                findings,
                "a2",
                rel,
                t.line,
                format!(
                    "`{}` in an engine hot-path file defeats `Sync` — the intra-run \
                     parallel DES needs explicit state passing, not interior mutability \
                     or ambient globals",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_d3(rel: &str, src: &str) -> Vec<Finding> {
        let mut f = Vec::new();
        check_d3(rel, &lex(src).toks, &mut f);
        f
    }

    #[test]
    fn d1_flags_only_protocol_paths() {
        let src = "use std::collections::HashMap;";
        let mut f = Vec::new();
        check_d1("crates/gs3-core/src/x.rs", &lex(src).toks, &mut f);
        assert_eq!(f.len(), 1);
        let mut f = Vec::new();
        check_d1("crates/gs3-analysis/src/x.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn d2_duration_is_exempt() {
        let src = "use std::time::Duration; fn f() -> Duration { Duration::ZERO }";
        let mut f = Vec::new();
        check_d2("crates/gs3-bench/src/x.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
        let src = "use std::time::Instant; let t = Instant::now();";
        let mut f = Vec::new();
        check_d2("crates/gs3-bench/src/x.rs", &lex(src).toks, &mut f);
        assert_eq!(f.len(), 2, "import + call site");
    }

    #[test]
    fn d2_exempts_the_sim_clock() {
        let src = "let t = Instant::now();";
        let mut f = Vec::new();
        check_d2("crates/gs3-sim/src/time.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn a1_flags_only_hot_paths() {
        let src = "struct S { n: Vec<Box<Node>>, m: BTreeMap<u32, u64> } fn f() { Rc::new(3); }";
        let mut f = Vec::new();
        check_a1("crates/gs3-sim/src/engine.rs", &lex(src).toks, &mut f);
        assert_eq!(f.len(), 3);
        // Cold-path files in the same crate keep their ordered maps.
        let mut f = Vec::new();
        check_a1("crates/gs3-sim/src/trace.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
        // The data-plane per-batch path is held to the same standard...
        let mut f = Vec::new();
        check_a1("crates/gs3-core/src/workload.rs", &lex(src).toks, &mut f);
        assert_eq!(f.len(), 3);
        // ...but the sink ledger's sparse-keyed replay map is cold-path.
        let mut f = Vec::new();
        check_a1("crates/gs3-dataplane/src/ledger.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn a1_ignores_bare_idents_and_fxhashmap() {
        // A plain ident that merely shadows the name is not heap storage,
        // and the cell-keyed FxHashMap alias is the sanctioned exception.
        let src = "let cells: FxHashMap<(i64, i64), Vec<usize>> = FxHashMap::default();";
        let mut f = Vec::new();
        check_a1("crates/gs3-sim/src/spatial.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn d3_geometry_accessor_anywhere() {
        let f = run_d3("crates/gs3-core/src/x.rs", "if v.length() == 0.0 { }");
        assert_eq!(f.len(), 1);
        let f = run_d3("crates/gs3-core/src/x.rs", "if 0.0 == v.length() { }");
        assert_eq!(f.len(), 1);
        // Config sentinels outside the geometry crate are not geometry.
        let f = run_d3("crates/gs3-core/src/x.rs", "if cfg.energy == 0.0 { }");
        assert!(f.is_empty());
    }

    #[test]
    fn d3_everything_in_geometry_crate() {
        let f = run_d3("crates/gs3-geometry/src/x.rs", "if len == 0.0 { }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn d3_partial_cmp_unwrap() {
        let f = run_d3("crates/gs3-core/src/x.rs", "a.partial_cmp(&b).unwrap()");
        assert_eq!(f.len(), 1);
        // Trait impls (fn partial_cmp) and non-unwrap uses are fine.
        let f = run_d3(
            "crates/gs3-core/src/x.rs",
            "fn partial_cmp(&self, o: &Self) -> Option<Ordering> { a.partial_cmp(&b) }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn t2_set_without_handler() {
        let model = ProtocolModel {
            timer_variants: ["Ping", "Pong"].iter().map(|s| s.to_string()).collect(),
            ..ProtocolModel::default()
        };
        let src = "\
fn f(ctx: &mut Ctx) {
    ctx.set_timer(d, Timer::Ping);
    ctx.set_timer(d, Timer::Pong);
    match t {
        Timer::Ping => {}
        Timer::Pong => {}
    }
}\n";
        let files = vec![("crates/gs3-core/src/x.rs".to_string(), lex(src).toks)];
        let mut f = Vec::new();
        check_t2(&files, &model, &mut f);
        assert!(f.is_empty());

        let src2 = "fn f(ctx: &mut Ctx) { ctx.set_timer(d, Timer::Pong); match t { Timer::Ping => {} } }";
        let files = vec![("crates/gs3-core/src/x.rs".to_string(), lex(src2).toks)];
        let mut f = Vec::new();
        check_t2(&files, &model, &mut f);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("Timer::Pong"));
    }

    fn lex_files(srcs: &[(&str, &str)]) -> Vec<(String, Vec<Tok>)> {
        srcs.iter().map(|(rel, s)| (rel.to_string(), lex(s).toks)).collect()
    }

    fn graph_of(files: &[(String, Vec<Tok>)]) -> CallGraph {
        CallGraph::build(files.iter().map(|(rel, toks)| (rel.as_str(), toks.as_slice())))
    }

    fn run_d4(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files = lex_files(srcs);
        let graph = graph_of(&files);
        let mut f = Vec::new();
        check_d4(&files, &graph, &mut f);
        f
    }

    #[test]
    fn d4_unguarded_draw_in_gated_file() {
        let f = run_d4(&[(
            "crates/gs3-core/src/reliable.rs",
            "impl R { fn on_message(&mut self, ctx: &mut Ctx) { ctx.rng().gen_bool(0.5); } }",
        )]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "d4");
        assert!(f[0].msg.contains("gen_bool"));
    }

    #[test]
    fn d4_direct_guard_is_clean() {
        let f = run_d4(&[(
            "crates/gs3-core/src/reliable.rs",
            "impl R { fn on_message(&mut self, ctx: &mut Ctx) { \
             if !self.cfg.reliability.enabled { return; } ctx.rng().gen_bool(0.5); } }",
        )]);
        assert!(f.is_empty());
    }

    #[test]
    fn d4_guarded_callers_cover_the_draw() {
        // The draw fn itself reads no guard, but every reachable call path
        // passes one — the covered fixpoint must clear it.
        let f = run_d4(&[(
            "crates/gs3-core/src/reliable.rs",
            "impl R { \
             fn draw(&mut self, ctx: &mut Ctx) { ctx.rng().gen_range(0..4); } \
             fn on_message(&mut self, ctx: &mut Ctx) { \
               if self.cfg.reliability.enabled { self.draw(ctx); } } }",
        )]);
        assert!(f.is_empty());
        // One unguarded caller breaks coverage.
        let f = run_d4(&[(
            "crates/gs3-core/src/reliable.rs",
            "impl R { \
             fn draw(&mut self, ctx: &mut Ctx) { ctx.rng().gen_range(0..4); } \
             fn on_message(&mut self, ctx: &mut Ctx) { \
               if self.cfg.reliability.enabled { self.draw(ctx); } } \
             fn on_timer(&mut self, ctx: &mut Ctx) { self.draw(ctx); } }",
        )]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn d4_unguarded_cycle_stays_flagged() {
        let f = run_d4(&[(
            "crates/gs3-core/src/reliable.rs",
            "impl R { \
             fn on_message(&mut self, ctx: &mut Ctx) { self.a(ctx); } \
             fn a(&mut self, ctx: &mut Ctx) { self.b(ctx); } \
             fn b(&mut self, ctx: &mut Ctx) { self.a(ctx); ctx.rng().gen_bool(0.5); } }",
        )]);
        assert_eq!(f.len(), 1, "a mutually-recursive unguarded pair must not self-cover");
    }

    #[test]
    fn d4_ungated_files_and_tests_are_exempt() {
        // join.rs baseline jitter is always-on randomness: no gate, no rule.
        let f = run_d4(&[(
            "crates/gs3-core/src/join.rs",
            "fn jitter(ctx: &mut Ctx) { ctx.rng().gen_range(0..100); }",
        )]);
        assert!(f.is_empty());
        let f = run_d4(&[(
            "crates/gs3-core/src/reliable.rs",
            "#[cfg(test)] mod tests { #[test] fn t() { rng().gen_bool(0.5); } }",
        )]);
        assert!(f.is_empty());
    }

    fn run_d5(rel: &str, src: &str) -> Vec<Finding> {
        let mut f = Vec::new();
        check_d5(rel, &lex(src).toks, &mut f);
        f
    }

    #[test]
    fn d5_unsorted_iteration_is_flagged() {
        let src = "struct S { m: FxHashMap<u32, u64> } \
                   impl S { fn leak(&self, d: &mut Digest) { \
                     for (k, v) in self.m.iter() { d.push(*k); } } }";
        let f = run_d5("crates/gs3-sim/src/metrics.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "d5");
    }

    #[test]
    fn d5_sorted_and_commutative_consumers_are_clean() {
        let src = "struct S { m: FxHashMap<u32, u64> } \
                   impl S { \
                     fn ok(&self) -> Vec<u32> { \
                       let mut ks: Vec<u32> = self.m.keys().copied().collect(); \
                       ks.sort_unstable(); ks } \
                     fn total(&self) -> u64 { self.m.values().sum() } }";
        let f = run_d5("crates/gs3-sim/src/metrics.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d5_for_each_cell_and_scope() {
        let src = "fn scan(g: &Grid) { g.for_each_cell(|c| emit(c)); }";
        assert_eq!(run_d5("crates/gs3-core/src/invariants.rs", src).len(), 1);
        // Out-of-scope crates and test fns are exempt.
        assert!(run_d5("crates/gs3-analysis/src/x.rs", src).is_empty());
        let test_src = "#[cfg(test)] mod tests { use super::*; #[test] fn t() { \
                        let m: FxHashMap<u32, u32> = FxHashMap::default(); \
                        for k in m.keys() { check(k); } } }";
        assert!(run_d5("crates/gs3-sim/src/metrics.rs", test_src).is_empty());
    }

    fn run_t3(srcs: &[(&str, &str)], msg_variants: &[&str]) -> Vec<Finding> {
        let files = lex_files(srcs);
        let graph = graph_of(&files);
        let model = ProtocolModel {
            msg_variants: msg_variants.iter().map(|s| s.to_string()).collect(),
            ..ProtocolModel::default()
        };
        let mut f = Vec::new();
        check_t3(&files, &graph, &model, &mut f);
        f
    }

    #[test]
    fn t3_roundtrip_is_clean() {
        let f = run_t3(
            &[(
                "crates/gs3-core/src/node.rs",
                "fn send(ctx: &mut Ctx) { ctx.emit(Msg::Ping(3)); } \
                 fn on_message(m: Msg) { match m { Msg::Ping(x) => on_ping(x), } } \
                 fn on_ping(x: u32) {}",
            )],
            &["Ping"],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn t3_constructed_but_unhandled() {
        let f = run_t3(
            &[(
                "crates/gs3-core/src/node.rs",
                "fn send(ctx: &mut Ctx) { ctx.emit(Msg::Ping(3)); } \
                 fn on_message(m: Msg) { match m { Msg::Pong => {} } } \
                 fn send2(ctx: &mut Ctx) { ctx.emit(Msg::Pong); }",
            )],
            &["Ping", "Pong"],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("Msg::Ping"));
        assert!(f[0].msg.contains("unhandled"));
    }

    #[test]
    fn t3_dead_arm() {
        let f = run_t3(
            &[(
                "crates/gs3-core/src/node.rs",
                "fn on_message(m: Msg) { match m { Msg::Ping(x) => {} Msg::Pong => {} } } \
                 fn send(ctx: &mut Ctx) { ctx.emit(Msg::Ping(3)); }",
            )],
            &["Ping", "Pong"],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("dead protocol arm"));
        assert!(f[0].msg.contains("Msg::Pong"));
    }

    #[test]
    fn t3_patterns_do_not_count_as_constructions() {
        // `if let` and `matches!` mention variants without sending them.
        let f = run_t3(
            &[(
                "crates/gs3-core/src/node.rs",
                "fn peek(m: &Msg) -> bool { \
                   if let Msg::Ping(_) = m { return true; } \
                   matches!(m, Msg::Ping(_)) } \
                 fn on_message(m: Msg) { match m { Msg::Ping(x) => {} } }",
            )],
            &["Ping"],
        );
        assert_eq!(f.len(), 1, "Ping is handled but never constructed: {f:?}");
        assert!(f[0].msg.contains("dead protocol arm"));
    }

    #[test]
    fn a2_bans_interior_mutability_and_statics() {
        let src = "static mut COUNTER: u64 = 0; \
                   struct S { c: RefCell<u32>, q: Mutex<Vec<u8>> } \
                   fn f() { thread_local!(static TL: u32 = 0); }";
        let mut f = Vec::new();
        check_a2("crates/gs3-sim/src/queue.rs", &lex(src).toks, &mut f);
        // static mut, RefCell, Mutex, thread_local, inner static.
        assert_eq!(f.len(), 5, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "a2"));
        assert!(f[0].msg.contains("data race"));
        // Same tokens in a cold-path file are fine.
        let mut f = Vec::new();
        check_a2("crates/gs3-sim/src/trace.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn a2_static_lifetimes_do_not_trip() {
        // The lexer drops lifetime tokens, so `&'static str` is invisible.
        let src = "fn name(&self) -> &'static str { \"engine\" }";
        let mut f = Vec::new();
        check_a2("crates/gs3-sim/src/engine.rs", &lex(src).toks, &mut f);
        assert!(f.is_empty());
    }
}
