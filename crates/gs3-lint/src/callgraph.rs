//! A name-resolved workspace call graph over extracted `fn` items.
//!
//! Resolution is *name-based*: a call `foo(..)` or `recv.foo(..)` edges
//! to **every** function named `foo` in the workspace, and `T::foo(..)`
//! prefers functions inside an `impl` block for `T` (falling back to all
//! `foo`s when `T` defines none). With no type inference this
//! over-approximates — two unrelated methods sharing a name are merged —
//! which is the conservative direction for every client: reachability
//! and draws-randomness sets only grow, so rules may flag a borderline
//! site but never silently miss one. The limits are pinned by tests in
//! `tests/syntax_callgraph.rs`.
//!
//! Test functions (`#[test]`, `#[cfg(test)]` modules, `tests/` trees) are
//! excluded from the graph entirely: the protocol rules reason about
//! simulation executions, and a test calling into a gated subsystem must
//! not make that subsystem look reachable from the protocol.

use std::collections::BTreeMap;

use crate::lexer::Tok;
use crate::syntax::{calls_in, extract_fns, CallSite, FnItem};

/// One function node of the graph.
#[derive(Debug)]
pub struct FnNode {
    /// The extracted item.
    pub item: FnItem,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// Calls made from this function's body (nested fns excluded).
    pub calls: Vec<CallSite>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions, in file order. Indices are node ids.
    pub nodes: Vec<FnNode>,
    /// Function ids by name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Resolved edges: `edges[f]` lists `(callee_id, call_tok_idx)`.
    pub edges: Vec<Vec<(usize, usize)>>,
    /// Reverse edges: `callers[f]` lists `(caller_id, call_tok_idx)`.
    pub callers: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    /// Builds the graph from lexed workspace files.
    #[must_use]
    pub fn build<'a, I>(files: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a [Tok])>,
    {
        let mut g = CallGraph::default();
        for (rel, toks) in files {
            let items = extract_fns(rel, toks);
            let bodies: Vec<(usize, usize)> = items.iter().filter_map(|f| f.body).collect();
            for item in items {
                if item.is_test {
                    continue;
                }
                let calls = item.body.map_or_else(Vec::new, |range| {
                    // Nested fn bodies are separate items; exclude every
                    // *other* body range strictly inside this one.
                    let inner: Vec<(usize, usize)> = bodies
                        .iter()
                        .copied()
                        .filter(|&(a, b)| a > range.0 && b < range.1)
                        .collect();
                    calls_in(toks, (range.0 + 1, range.1), &inner)
                });
                g.by_name.entry(item.name.clone()).or_default().push(g.nodes.len());
                g.nodes.push(FnNode { item, rel: rel.to_string(), calls });
            }
        }
        g.edges = vec![Vec::new(); g.nodes.len()];
        g.callers = vec![Vec::new(); g.nodes.len()];
        for f in 0..g.nodes.len() {
            for c in &g.nodes[f].calls {
                for callee in g.resolve(c) {
                    g.edges[f].push((callee, c.idx));
                    g.callers[callee].push((f, c.idx));
                }
            }
        }
        g
    }

    /// Resolves one call site to candidate function ids (empty for names
    /// defined nowhere in the workspace, e.g. std functions).
    #[must_use]
    pub fn resolve(&self, call: &CallSite) -> Vec<usize> {
        let Some(candidates) = self.by_name.get(&call.callee) else {
            return Vec::new();
        };
        if let Some(q) = &call.qualifier {
            let qualified: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&id| self.nodes[id].item.owner.as_deref() == Some(q.as_str()))
                .collect();
            if !qualified.is_empty() {
                return qualified;
            }
        }
        candidates.clone()
    }

    /// Ids of functions matching `pred`.
    #[must_use]
    pub fn ids_where<P: Fn(&FnNode) -> bool>(&self, pred: P) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| pred(&self.nodes[i])).collect()
    }

    /// The set of functions reachable from `roots` (roots included).
    /// Plain BFS; cycles are harmless.
    #[must_use]
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push(r);
            }
        }
        while let Some(f) = queue.pop() {
            for &(callee, _) in &self.edges[f] {
                if !seen[callee] {
                    seen[callee] = true;
                    queue.push(callee);
                }
            }
        }
        seen
    }

    /// The set of functions that can *reach* any seed (seeds included):
    /// the transitive closure over reverse edges. Used for the
    /// draws-randomness set — every function from which a seeded-RNG draw
    /// is dynamically possible.
    #[must_use]
    pub fn reaching(&self, seeds: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        while let Some(f) = queue.pop() {
            for &(caller, _) in &self.callers[f] {
                if !seen[caller] {
                    seen[caller] = true;
                    queue.push(caller);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph(srcs: &[(&str, &str)]) -> (CallGraph, Vec<crate::lexer::Lexed>) {
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let g = CallGraph::build(
            srcs.iter()
                .zip(&lexed)
                .map(|((rel, _), l)| (*rel, l.toks.as_slice())),
        );
        (g, lexed)
    }

    fn id(g: &CallGraph, name: &str) -> usize {
        g.by_name[name][0]
    }

    #[test]
    fn direct_and_transitive_reachability() {
        let (g, _l) = graph(&[("crates/a/src/x.rs", "fn a() { b(); } fn b() { c(); } fn c() {} fn island() {}")]);
        let r = g.reachable_from(&[id(&g, "a")]);
        assert!(r[id(&g, "a")] && r[id(&g, "b")] && r[id(&g, "c")]);
        assert!(!r[id(&g, "island")]);
    }

    #[test]
    fn cycles_terminate_both_directions() {
        let (g, _l) = graph(&[(
            "crates/a/src/x.rs",
            "fn a() { b(); } fn b() { a(); c(); } fn c() {}",
        )]);
        let fwd = g.reachable_from(&[id(&g, "a")]);
        assert!(fwd.iter().all(|&x| x));
        let back = g.reaching(&[id(&g, "c")]);
        assert!(back[id(&g, "a")] && back[id(&g, "b")] && back[id(&g, "c")]);
    }

    #[test]
    fn qualified_calls_prefer_owner() {
        let (g, _l) = graph(&[(
            "crates/a/src/x.rs",
            "impl Foo { fn make() {} } impl Bar { fn make() {} } fn f() { Foo::make(); }",
        )]);
        let f = id(&g, "f");
        assert_eq!(g.edges[f].len(), 1);
        let (callee, _) = g.edges[f][0];
        assert_eq!(g.nodes[callee].item.owner.as_deref(), Some("Foo"));
    }

    #[test]
    fn method_calls_merge_same_name() {
        // Documented limitation: without type inference, `x.make()` edges
        // to every fn named `make`.
        let (g, _l) = graph(&[(
            "crates/a/src/x.rs",
            "impl Foo { fn make(&self) {} } impl Bar { fn make(&self) {} } fn f(x: Foo) { x.make(); }",
        )]);
        assert_eq!(g.edges[id(&g, "f")].len(), 2);
    }

    #[test]
    fn test_fns_are_excluded() {
        let (g, _l) = graph(&[(
            "crates/a/src/x.rs",
            "fn gated() {} #[cfg(test)] mod tests { use super::*; #[test] fn t() { gated(); } }",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert!(g.callers[id(&g, "gated")].is_empty(), "test call must not create an edge");
    }

    #[test]
    fn cross_file_resolution() {
        let (g, _l) = graph(&[
            ("crates/a/src/x.rs", "pub fn helper() {}"),
            ("crates/b/src/y.rs", "fn driver() { helper(); }"),
        ]);
        let r = g.reachable_from(&[id(&g, "driver")]);
        assert!(r[id(&g, "helper")]);
    }

    #[test]
    fn unresolved_std_calls_make_no_edges() {
        let (g, _l) = graph(&[("crates/a/src/x.rs", "fn f() { Vec::new(); format(); }")]);
        assert!(g.edges[id(&g, "f")].is_empty());
    }
}
