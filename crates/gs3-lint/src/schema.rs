//! Wire-schema pinning (`w1`): canonical serialization of the wire enums
//! (`Msg`, `Timer`, `FaultKind`) and comparison against the committed
//! `crates/gs3-lint/protocol.schema.json`.
//!
//! Every trace digest, chaos JSON byte-comparison, and mc fingerprint in
//! this workspace implicitly hashes the wire enums' *layout*: adding,
//! reordering, or retyping a variant silently changes `Payload::kind`
//! tables, dispatch order, and serialized plans. `w1` makes that loud —
//! the extracted layout must byte-match the committed schema file, and
//! the only way to change it is the explicit
//! `cargo run -p gs3-lint -- --write-schema` regeneration (reviewed like
//! any other pinned artifact, CI-gated by `git diff --exit-code`).
//!
//! The file format is generated one variant per line so git diffs and
//! drift findings name the exact variant that moved.

use crate::diag::Finding;
use crate::model::EnumLayout;

/// Version of the schema *file format* (not of the protocol itself);
/// bumped only when this module changes how layouts are serialized.
pub const SCHEMA_FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit over the canonical layout content — the wire-schema
/// fingerprint embedded in the file and in `--json` reports.
#[must_use]
pub fn fingerprint(layouts: &[EnumLayout]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f; // field separator
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for l in layouts {
        eat(&l.name);
        for v in &l.variants {
            eat(&v.name);
            eat(&v.payload);
        }
    }
    h
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the canonical schema file: deterministic, one variant per
/// line, enums in [`WIRE_ENUMS`] pin order.
#[must_use]
pub fn render(layouts: &[EnumLayout]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_FORMAT_VERSION},\n"));
    out.push_str(&format!("  \"fingerprint\": \"{:#018x}\",\n", fingerprint(layouts)));
    out.push_str("  \"enums\": [\n");
    for (i, l) in layouts.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{}\", \"variants\": [\n", esc(&l.name)));
        for (j, v) in l.variants.iter().enumerate() {
            let comma = if j + 1 == l.variants.len() { "" } else { "," };
            out.push_str(&format!(
                "      {{\"variant\": \"{}\", \"payload\": \"{}\"}}{comma}\n",
                esc(&v.name),
                esc(&v.payload)
            ));
        }
        let comma = if i + 1 == layouts.len() { "" } else { "," };
        out.push_str(&format!("    ]}}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal parse of a committed schema file back into per-enum variant
/// line lists. Only ever reads files [`render`] wrote, so a line-shape
/// scan suffices; anything unrecognized parses as empty and shows up as
/// total drift.
#[must_use]
pub fn parse_committed(text: &str) -> Vec<(String, Vec<String>)> {
    let mut out: Vec<(String, Vec<String>)> = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("{\"name\": \"") {
            if let Some(name) = rest.split('"').next() {
                out.push((name.to_string(), Vec::new()));
            }
        } else if t.starts_with("{\"variant\": ") {
            if let Some((_, vs)) = out.last_mut() {
                vs.push(t.trim_end_matches(',').to_string());
            }
        }
    }
    out
}

/// Compares extracted layouts against the committed schema text, pushing
/// one `w1` finding per drifted enum (at its definition site) plus a
/// file-level finding when the schema file itself is missing or stale in
/// structure. `committed` is `None` when the file does not exist.
pub fn check_w1(layouts: &[EnumLayout], committed: Option<&str>, findings: &mut Vec<Finding>) {
    const SCHEMA_REL: &str = "crates/gs3-lint/protocol.schema.json";
    const REGEN: &str =
        "regenerate explicitly with `cargo run -p gs3-lint -- --write-schema` and review the diff";
    let Some(committed) = committed else {
        findings.push(Finding {
            rule: "w1",
            rel: SCHEMA_REL.to_string(),
            line: 1,
            msg: format!(
                "committed wire schema is missing — the {} layouts are unpinned; {REGEN}",
                layouts.len()
            ),
            allowed: None,
        });
        return;
    };
    if committed == render(layouts) {
        return;
    }
    // Name the drifted enums at their definition sites.
    let committed_enums = parse_committed(committed);
    let mut any_enum_finding = false;
    for l in layouts {
        let generated: Vec<String> = {
            let section = render(std::slice::from_ref(l));
            parse_committed(&section).into_iter().flat_map(|(_, vs)| vs).collect()
        };
        let pinned = committed_enums
            .iter()
            .find(|(n, _)| n == &l.name)
            .map(|(_, vs)| vs.clone())
            .unwrap_or_default();
        if generated != pinned {
            let detail = first_divergence(&pinned, &generated);
            findings.push(Finding {
                rule: "w1",
                rel: l.rel.clone(),
                line: l.line,
                msg: format!(
                    "wire enum `{}` drifted from the committed schema ({detail}) — every \
                     pinned digest and serialized plan depends on this layout; {REGEN}",
                    l.name
                ),
                allowed: None,
            });
            any_enum_finding = true;
        }
    }
    if !any_enum_finding {
        // Byte drift without layout drift: header/format changes, an enum
        // added/removed from the pin list, or a hand-edited file.
        findings.push(Finding {
            rule: "w1",
            rel: SCHEMA_REL.to_string(),
            line: 1,
            msg: format!("committed wire schema is stale (format or enum-set drift); {REGEN}"),
            allowed: None,
        });
    }
}

/// Human-readable first difference between pinned and generated variant
/// line lists.
fn first_divergence(pinned: &[String], generated: &[String]) -> String {
    let variant_of = |line: &String| {
        line.split('"').nth(3).map_or_else(|| line.clone(), str::to_string)
    };
    for i in 0..pinned.len().max(generated.len()) {
        match (pinned.get(i), generated.get(i)) {
            (Some(p), Some(g)) if p == g => {}
            (Some(p), Some(g)) => {
                return format!(
                    "variant #{i}: pinned `{}` vs source `{}`",
                    variant_of(p),
                    variant_of(g)
                );
            }
            (Some(p), None) => return format!("variant `{}` removed from source", variant_of(p)),
            (None, Some(g)) => return format!("variant `{}` added in source", variant_of(g)),
            (None, None) => unreachable!(),
        }
    }
    "identical variant lists but differing bytes".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::enum_layout;

    fn layout(src: &str, name: &str) -> EnumLayout {
        enum_layout("crates/gs3-core/src/messages.rs", &lex(src).toks, name).unwrap()
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let l = layout("enum Msg { A(u32), B { x: f64 }, C, }", "Msg");
        let text = render(std::slice::from_ref(&l));
        let parsed = parse_committed(&text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "Msg");
        assert_eq!(parsed[0].1.len(), 3);
    }

    #[test]
    fn matching_schema_is_clean() {
        let l = layout("enum Msg { A, B, }", "Msg");
        let text = render(std::slice::from_ref(&l));
        let mut f = Vec::new();
        check_w1(std::slice::from_ref(&l), Some(&text), &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn variant_add_reorder_and_field_change_all_drift() {
        let pinned = render(&[layout("enum Msg { A(u32), B, }", "Msg")]);
        for (changed, what) in [
            ("enum Msg { A(u32), B, C, }", "added variant"),
            ("enum Msg { B, A(u32), }", "reordered"),
            ("enum Msg { A(u64), B, }", "field type change"),
            ("enum Msg { A(u32), }", "removed variant"),
        ] {
            let l = layout(changed, "Msg");
            let mut f = Vec::new();
            check_w1(std::slice::from_ref(&l), Some(&pinned), &mut f);
            assert_eq!(f.len(), 1, "{what} must drift");
            assert_eq!(f[0].rule, "w1");
            assert!(f[0].rel.ends_with("messages.rs"), "finding sits at the enum: {what}");
        }
    }

    #[test]
    fn missing_schema_is_a_finding() {
        let l = layout("enum Msg { A, }", "Msg");
        let mut f = Vec::new();
        check_w1(std::slice::from_ref(&l), None, &mut f);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("missing"));
    }

    #[test]
    fn fingerprint_is_layout_sensitive() {
        let a = layout("enum Msg { A(u32), B, }", "Msg");
        let b = layout("enum Msg { B, A(u32), }", "Msg");
        assert_ne!(
            fingerprint(std::slice::from_ref(&a)),
            fingerprint(std::slice::from_ref(&b))
        );
    }
}
