//! A minimal Rust lexer: just enough fidelity for project lint rules.
//!
//! The build environment has no crate registry, so `syn` is unavailable;
//! rules instead pattern-match over this token stream. The lexer gets the
//! hard parts right — nested block comments, raw strings, raw identifiers,
//! char literals vs. lifetimes, float literals — so that rules never fire
//! inside strings or comments, and float-literal comparisons are
//! recognizable. Everything else (grouping, precedence) is left to the
//! rules, which track bracket depth themselves.

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, exponent, or f32/f64 suffix).
    Float,
    /// String, raw-string, byte-string, or char literal.
    Lit,
    /// Operator or punctuation. Multi-char operators the rules care about
    /// (`::`, `=>`, `==`, `!=`, `->`, `..`, `<=`, `>=`, `&&`, `||`) are
    /// single tokens; everything else is one char.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A `// gs3-lint: ...` comment found during lexing.
#[derive(Debug, Clone)]
pub struct RawDirective {
    /// The comment body after `//`, trimmed.
    pub text: String,
    /// The line the comment sits on.
    pub line: u32,
    /// Whether source tokens precede the comment on its line (a trailing
    /// directive applies to its own line; a standalone one to the next
    /// source line).
    pub trailing: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub directives: Vec<RawDirective>,
}

const TWO_CHAR_OPS: [&str; 10] = ["::", "=>", "==", "!=", "->", "..", "<=", ">=", "&&", "||"];

/// Lexes `src`, discarding comments except `gs3-lint:` directives.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = src[start..i].trim();
                // Only comments that *start* with the marker are directives;
                // prose merely mentioning `gs3-lint:` is not.
                if text.starts_with("gs3-lint:") {
                    let trailing = out.toks.last().is_some_and(|t| t.line == line);
                    out.directives.push(RawDirective {
                        text: text.to_string(),
                        line,
                        trailing,
                    });
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                out.toks.push(Tok { kind: TokKind::Lit, text: String::new(), line });
            }
            b'\'' => {
                // Lifetime (`'a`) vs. char literal (`'x'`, `'\n'`).
                let is_lifetime = b
                    .get(i + 1)
                    .is_some_and(|&n| n.is_ascii_alphabetic() || n == b'_')
                    && b.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                } else {
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    out.toks.push(Tok { kind: TokKind::Lit, text: String::new(), line });
                }
            }
            c if c.is_ascii_digit() => {
                let (end, is_float) = scan_number(b, i);
                let kind = if is_float { TokKind::Float } else { TokKind::Int };
                out.toks.push(Tok { kind, text: src[i..end].to_string(), line });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                // Raw strings / byte strings share an ident-like prefix.
                if let Some(end) = raw_or_byte_string(b, i, &mut line) {
                    out.toks.push(Tok { kind: TokKind::Lit, text: String::new(), line });
                    i = end;
                    continue;
                }
                let mut j = i;
                // Raw identifier `r#name`.
                if c == b'r' && b.get(i + 1) == Some(&b'#') {
                    j += 2;
                }
                let start = j;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.toks.push(Tok { kind: TokKind::Ident, text: src[start..j].to_string(), line });
                i = j;
            }
            _ => {
                let two = &src[i..(i + 2).min(src.len())];
                if TWO_CHAR_OPS.contains(&two) {
                    // `..` may extend to `..=` / `...`; the extra char is
                    // irrelevant to every rule.
                    out.toks.push(Tok { kind: TokKind::Punct, text: two.to_string(), line });
                    i += 2;
                } else {
                    out.toks.push(Tok {
                        kind: TokKind::Punct,
                        text: src[i..i + 1].to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() && b[i] != b'"' {
        if b[i] == b'\\' {
            i += 1;
        } else if b[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    i + 1
}

/// Recognizes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` (any hash count) at `i`;
/// returns the index past the literal, or `None` if `i` is not one.
fn raw_or_byte_string(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let hashes_start = j;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    let hashes = j - hashes_start;
    if j >= b.len() || b[j] != b'"' || (!raw && hashes > 0) || (i == j) {
        return None;
    }
    if !raw {
        // Plain byte string `b"…"`: escape-aware skip.
        return Some(skip_string(b, j, line));
    }
    // Raw string: ends at `"` followed by `hashes` hashes, no escapes.
    j += 1;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
        }
        if b[j] == b'"' && b[j + 1..].iter().take_while(|&&h| h == b'#').count() >= hashes {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(j)
}

/// Scans a numeric literal starting at a digit; returns (end, is_float).
fn scan_number(b: &[u8], start: usize) -> (usize, bool) {
    let mut i = start;
    let hex = b[i] == b'0' && matches!(b.get(i + 1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    if hex {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return (i, false);
    }
    let mut is_float = false;
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // A fractional part only when `.` is followed by a digit (so `1..n`
    // ranges and `1.max(2)` method calls stay integers).
    if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let sign = usize::from(matches!(b.get(i + 1), Some(b'+' | b'-')));
        if b.get(i + 1 + sign).is_some_and(u8::is_ascii_digit) {
            is_float = true;
            i += 1 + sign;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`f64`, `u32`, …).
    if i < b.len() && b[i].is_ascii_alphabetic() {
        let suffix_start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if matches!(&b[suffix_start..i], b"f32" | b"f64") {
            is_float = true;
        }
    }
    (i, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_paths() {
        assert_eq!(texts("std::time::Instant"), ["std", "::", "time", "::", "Instant"]);
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let l = lex("let x = \"thread_rng // not code\"; /* Instant::now */ y");
        let idents: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| &t.text).collect();
        assert_eq!(idents, ["let", "x", "y"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let l = lex("r#\"Instant\"# r#match b\"SystemTime\" br##\"x\"##");
        let idents: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| &t.text).collect();
        assert_eq!(idents, ["match"]);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 3);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let l = lex("0.0 1 1e-5 2f64 0x1f 1..4 1.max(2)");
        let kinds: Vec<_> = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(kinds[0], (TokKind::Float, "0.0".into()));
        assert_eq!(kinds[1], (TokKind::Int, "1".into()));
        assert_eq!(kinds[2], (TokKind::Float, "1e-5".into()));
        assert_eq!(kinds[3], (TokKind::Float, "2f64".into()));
        assert_eq!(kinds[4], (TokKind::Int, "0x1f".into()));
        assert_eq!(kinds[5], (TokKind::Int, "1".into()));
        assert_eq!(kinds[6], (TokKind::Int, "4".into()));
        assert_eq!(kinds[7], (TokKind::Int, "1".into()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 2);
    }

    #[test]
    fn directives_are_captured_with_position() {
        let src = "\
let a = 1; // gs3-lint: allow(d2) -- trailing
// gs3-lint: allow(d1) -- standalone
let b = 2;
// plain comment\n";
        let l = lex(src);
        assert_eq!(l.directives.len(), 2);
        assert!(l.directives[0].trailing);
        assert_eq!(l.directives[0].line, 1);
        assert!(!l.directives[1].trailing);
        assert_eq!(l.directives[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ ident");
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].text, "ident");
    }

    #[test]
    fn line_numbers_advance_through_literals() {
        let l = lex("\"multi\nline\"\nx");
        let x = l.toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.line, 3);
    }
}
