//! The protocol model lint rules check against: the `Msg` and `Timer`
//! enum variant sets, full enum *layouts* (ordered variants with payload
//! shapes, pinned by the `w1` wire-schema rule), and a bracket-aware
//! `match` expression parser.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};

/// One enum variant with its payload shape: the variant's tokens after
/// the name, normalized to a single-space-joined string (`( OrgInfo )`,
/// `{ seq : u64 , inner : Box < Msg > }`, or empty for unit variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantLayout {
    pub name: String,
    pub payload: String,
}

/// The full source-order layout of one wire enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumLayout {
    pub name: String,
    /// Line of the `enum` keyword in its defining file.
    pub line: u32,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// Variants in *source order* — reorders change the layout.
    pub variants: Vec<VariantLayout>,
}

/// Variant sets extracted from `gs3-core/src/messages.rs` and
/// `gs3-core/src/timers.rs`, plus the pinned wire-enum layouts
/// (`Msg`, `Timer`, `FaultKind`).
#[derive(Debug, Default)]
pub struct ProtocolModel {
    pub msg_variants: BTreeSet<String>,
    pub timer_variants: BTreeSet<String>,
    /// Layouts of the wire enums, in pin order (Msg, Timer, FaultKind);
    /// an enum whose source file is absent is simply missing here.
    pub layouts: Vec<EnumLayout>,
}

/// `(enum name, defining file suffix)` of every wire enum `w1` pins.
pub const WIRE_ENUMS: [(&str, &str); 3] = [
    ("Msg", "gs3-core/src/messages.rs"),
    ("Timer", "gs3-core/src/timers.rs"),
    ("FaultKind", "gs3-core/src/chaos.rs"),
];

impl ProtocolModel {
    /// Extracts variant sets from the lexed workspace files.
    /// `files` yields `(relative_path, tokens)`.
    #[must_use]
    pub fn extract<'a, I>(files: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a [Tok])>,
    {
        let mut model = ProtocolModel::default();
        let mut found: Vec<Option<EnumLayout>> = vec![None; WIRE_ENUMS.len()];
        for (rel, toks) in files {
            if rel.ends_with("gs3-core/src/messages.rs") {
                model.msg_variants = enum_variants(toks, "Msg");
            } else if rel.ends_with("gs3-core/src/timers.rs") {
                model.timer_variants = enum_variants(toks, "Timer");
            }
            for (slot, (name, suffix)) in WIRE_ENUMS.iter().enumerate() {
                if rel.ends_with(suffix) {
                    if let Some(l) = enum_layout(rel, toks, name) {
                        found[slot] = Some(l);
                    }
                }
            }
        }
        model.layouts = found.into_iter().flatten().collect();
        model
    }
}

/// Extracts the source-order layout of `enum <name>` from a token stream,
/// or `None` when the file does not define it.
#[must_use]
pub fn enum_layout(rel: &str, toks: &[Tok], name: &str) -> Option<EnumLayout> {
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].text == "enum" && toks[i + 1].text == name && toks[i + 2].text == "{" {
            let mut layout = EnumLayout {
                name: name.to_string(),
                line: toks[i].line,
                rel: rel.to_string(),
                variants: Vec::new(),
            };
            let mut depth = 1u32;
            let mut j = i + 3;
            let mut current: Option<VariantLayout> = None;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                // Skip `#[...]` attributes wholesale at variant level.
                if depth == 1 && t.text == "#" && toks.get(j + 1).is_some_and(|n| n.text == "[")
                {
                    let mut d = 0i32;
                    let mut k = j + 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" | "(" | "{" => d += 1,
                            "]" | ")" | "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    j = k + 1;
                    continue;
                }
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    _ => {}
                }
                if depth == 0 {
                    break;
                }
                if depth == 1 && t.text == "," {
                    layout.variants.extend(current.take());
                } else if let Some(v) = &mut current {
                    if !v.payload.is_empty() {
                        v.payload.push(' ');
                    }
                    v.payload.push_str(&t.text);
                } else if t.kind == TokKind::Ident {
                    current = Some(VariantLayout { name: t.text.clone(), payload: String::new() });
                }
                j += 1;
            }
            layout.variants.extend(current.take());
            return Some(layout);
        }
        i += 1;
    }
    None
}

/// Collects the variant names of `enum <name> { … }` from a token stream.
#[must_use]
pub fn enum_variants(toks: &[Tok], name: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].text == "enum" && toks[i + 1].text == name && toks[i + 2].text == "{" {
            let mut depth = 1u32;
            let mut j = i + 3;
            let mut at_variant_start = true;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 1 => at_variant_start = true,
                    "#" => {} // attribute on the next variant
                    _ if depth == 1 && at_variant_start && t.kind == TokKind::Ident => {
                        out.insert(t.text.clone());
                        at_variant_start = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// One parsed `match` expression.
#[derive(Debug)]
pub struct MatchExpr {
    /// Line of the `match` keyword.
    pub line: u32,
    /// Token index of the `match` keyword.
    pub idx: usize,
    /// `Enum::Variant` pairs found in arm *patterns* (never bodies).
    pub pattern_variants: Vec<(String, String, u32)>,
    /// Token ranges `[start, end)` of every arm pattern (guard included),
    /// so construction-site scans can exclude pattern positions.
    pub pattern_ranges: Vec<(usize, usize)>,
    /// Line of a top-level `_ =>` wildcard arm, if present.
    pub wildcard: Option<u32>,
}

/// Parses every `match` expression in a token stream.
///
/// Pattern tokens (between an arm's start and its `=>`) are separated from
/// body tokens by bracket-depth tracking, so enum paths constructed inside
/// arm bodies never count as dispatch coverage.
#[must_use]
pub fn find_matches(toks: &[Tok]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "match" {
            // Skip the scrutinee to its opening brace at relative depth 0.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() {
                break;
            }
            out.push(parse_match_body(toks, i, j));
            // Continue from inside the match so nested matches (inside arm
            // bodies, at deeper bracket depth for this parse) are found too.
        }
        i += 1;
    }
    out
}

/// Parses one match body whose `{` is at index `open`.
fn parse_match_body(toks: &[Tok], match_idx: usize, open: usize) -> MatchExpr {
    let mut m = MatchExpr {
        line: toks[match_idx].line,
        idx: match_idx,
        pattern_variants: Vec::new(),
        pattern_ranges: Vec::new(),
        wildcard: None,
    };
    let mut depth = 1i32;
    let mut j = open + 1;
    let mut in_pattern = true;
    let mut pattern_start = j;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                // A `{ … }` arm body closing back to depth 1 ends the arm.
                if depth == 1 && !in_pattern {
                    in_pattern = true;
                    pattern_start = j + 1;
                }
            }
            "=>" if depth == 1 && in_pattern => {
                scan_pattern(toks, pattern_start, j, &mut m);
                in_pattern = false;
            }
            // A comma at arm depth separates arms whether the previous arm
            // was an expression or a block followed by an optional comma.
            "," if depth == 1 => {
                in_pattern = true;
                pattern_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    m
}

/// Scans one arm pattern `toks[start..end]` for `Enum::Variant` pairs and
/// top-level wildcards (`end` is the `=>` index).
fn scan_pattern(toks: &[Tok], start: usize, end: usize, m: &mut MatchExpr) {
    m.pattern_ranges.push((start, end));
    // Guards (`if …`) can mention enum paths without matching them; stop
    // pattern scanning at a top-level `if`.
    let mut limit = end;
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(end).skip(start) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "if" if depth == 0 && t.kind == TokKind::Ident => {
                limit = k;
                break;
            }
            _ => {}
        }
    }
    if limit == start + 1 && toks[start].text == "_" {
        m.wildcard = Some(toks[start].line);
    }
    for k in start..limit.saturating_sub(2) {
        if toks[k].kind == TokKind::Ident
            && toks[k + 1].text == "::"
            && toks[k + 2].kind == TokKind::Ident
            && matches!(toks[k].text.as_str(), "Msg" | "Timer")
        {
            m.pattern_variants.push((
                toks[k].text.clone(),
                toks[k + 2].text.clone(),
                toks[k].line,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn extracts_variants_with_payloads_and_attrs() {
        let src = "\
pub enum Msg {
    /// doc
    A(OrgInfo),
    B { pos: Point, current: Option<(NodeId, f64)> },
    #[cfg(feature = \"x\")]
    C,
}\n";
        let l = lex(src);
        let v = enum_variants(&l.toks, "Msg");
        assert_eq!(v.into_iter().collect::<Vec<_>>(), ["A", "B", "C"]);
    }

    #[test]
    fn patterns_only_not_bodies() {
        let src = "\
fn f(m: Msg) {
    match m {
        Msg::A(x) => send(Msg::C),
        Msg::B { .. } => {}
    }
}\n";
        let l = lex(src);
        let ms = find_matches(&l.toks);
        assert_eq!(ms.len(), 1);
        let names: Vec<_> = ms[0].pattern_variants.iter().map(|(_, v, _)| v.as_str()).collect();
        assert_eq!(names, ["A", "B"], "Msg::C in the body must not count");
        assert!(ms[0].wildcard.is_none());
    }

    #[test]
    fn wildcard_detection_is_top_level_only() {
        let src = "\
match m {
    Msg::A(_) => 1,
    _ => 0,
}\n";
        let l = lex(src);
        let ms = find_matches(&l.toks);
        assert!(ms[0].wildcard.is_some());

        let src2 = "match m { Msg::A(_) => 1, Msg::B { .. } => 0, }";
        let ms2 = find_matches(&lex(src2).toks);
        assert!(ms2[0].wildcard.is_none(), "`_` inside a payload is not a wildcard arm");
    }

    #[test]
    fn guard_paths_do_not_count_as_patterns() {
        let src = "match m { x if x == Msg::A => 1, _ => 0, }";
        let ms = find_matches(&lex(src).toks);
        assert!(ms[0].pattern_variants.is_empty());
    }

    #[test]
    fn nested_matches_are_separate() {
        let src = "\
match a {
    Msg::A(x) => match x {
        Timer::T1 => 1,
        _ => 2,
    },
    _ => 3,
}\n";
        let ms = find_matches(&lex(src).toks);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].pattern_variants.len(), 1);
        assert_eq!(ms[1].pattern_variants.len(), 1);
    }

    #[test]
    fn struct_literal_scrutinee_does_not_confuse() {
        let src = "match (f(a), g[0]) { (x, y) => x + y }";
        let ms = find_matches(&lex(src).toks);
        assert_eq!(ms.len(), 1);
    }
}
