//! gs3-lint — project-specific static analysis for the GS³ workspace.
//!
//! Every guarantee the workspace ships (bit-identical digests at any
//! thread count, RNG-inert subsystems, byte-equal chaos JSON) rests on
//! conventions a compiler never checks: no unordered hash iteration in
//! protocol paths, no ambient time or entropy, NaN-total comparisons, and
//! total dispatch over the protocol's message and timer enums. This crate
//! turns those conventions into machine-checked rules with `file:line`
//! diagnostics and an explicit, justified allowlist
//! (`// gs3-lint: allow(<rule>) -- <why this is sound>`).
//!
//! Run it with `cargo run -p gs3-lint` from anywhere in the workspace; it
//! exits non-zero when any finding lacks a justified allow directive. See
//! DESIGN.md §"Static analysis" for the rule table.

pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod schema;
pub mod syntax;

use std::path::{Path, PathBuf};

use diag::{apply_directives, parse_directives, Finding};
use model::ProtocolModel;

/// One source file prepared for analysis.
pub struct SourceFile {
    /// Workspace-relative path (rule scoping keys off this).
    pub rel: String,
    pub lexed: lexer::Lexed,
}

impl SourceFile {
    /// Lexes `src` under the given workspace-relative path.
    #[must_use]
    pub fn new(rel: &str, src: &str) -> Self {
        SourceFile { rel: rel.to_string(), lexed: lexer::lex(src) }
    }
}

/// What the `w1` wire-schema rule checks against.
#[derive(Clone, Copy)]
pub enum SchemaCheck<'a> {
    /// Skip `w1` entirely — unit contexts with no schema notion.
    Skip,
    /// Check against the committed `protocol.schema.json` content;
    /// `None` means the file is missing, which is itself a finding.
    Committed(Option<&'a str>),
}

/// Runs every rule over the files and resolves allow directives, with
/// the `w1` wire-schema drift check skipped (no schema in scope).
///
/// Returned findings include allowlisted ones (with their justification);
/// callers decide the exit status from the unallowed count.
#[must_use]
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    analyze_with(files, SchemaCheck::Skip)
}

/// Runs every rule over the files and resolves allow directives. The CLI
/// and the workspace gate pass `SchemaCheck::Committed` with whatever
/// [`load_committed_schema`] found on disk.
#[must_use]
pub fn analyze_with(files: &[SourceFile], schema_check: SchemaCheck<'_>) -> Vec<Finding> {
    let model = ProtocolModel::extract(
        files.iter().map(|f| (f.rel.as_str(), f.lexed.toks.as_slice())),
    );
    let mut findings = Vec::new();
    let toks_by_file: Vec<(String, Vec<lexer::Tok>)> =
        files.iter().map(|f| (f.rel.clone(), f.lexed.toks.clone())).collect();
    // One call graph serves every cross-procedural rule.
    let graph = callgraph::CallGraph::build(
        files.iter().map(|f| (f.rel.as_str(), f.lexed.toks.as_slice())),
    );
    for f in files {
        rules::check_d1(&f.rel, &f.lexed.toks, &mut findings);
        rules::check_d2(&f.rel, &f.lexed.toks, &mut findings);
        rules::check_d3(&f.rel, &f.lexed.toks, &mut findings);
        rules::check_d5(&f.rel, &f.lexed.toks, &mut findings);
        rules::check_a1(&f.rel, &f.lexed.toks, &mut findings);
        rules::check_a2(&f.rel, &f.lexed.toks, &mut findings);
        rules::check_t1(&f.rel, &f.lexed.toks, &model, &mut findings);
    }
    rules::check_t2(&toks_by_file, &model, &mut findings);
    rules::check_d4(&toks_by_file, &graph, &mut findings);
    rules::check_t3(&toks_by_file, &graph, &model, &mut findings);
    if let SchemaCheck::Committed(committed) = schema_check {
        schema::check_w1(&model.layouts, committed, &mut findings);
    }
    // Resolve allowlists per file (directives only ever cover findings in
    // their own file).
    for f in files {
        let (mut dirs, mut bad) = parse_directives(&f.rel, &f.lexed);
        findings.append(&mut bad);
        apply_directives(&f.rel, &mut dirs, &mut findings);
    }
    findings.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));
    findings
}

/// Workspace-relative location of the committed wire schema.
pub const SCHEMA_REL: &str = "crates/gs3-lint/protocol.schema.json";

/// Reads the committed `protocol.schema.json`, `None` when absent.
#[must_use]
pub fn load_committed_schema(root: &Path) -> Option<String> {
    std::fs::read_to_string(root.join(SCHEMA_REL)).ok()
}

/// Directories under the workspace root that hold first-party sources.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Subtrees excluded from the workspace scan: the vendored `rand` API shim
/// (external idiom, no protocol code) and this crate's deliberately-bad
/// lint fixtures.
const EXCLUDES: [&str; 2] = ["crates/rand-shim", "crates/gs3-lint/fixtures"];

/// Collects and lexes every first-party `.rs` file under `root`,
/// depth-first in sorted order so reports are deterministic.
///
/// # Errors
/// Propagates I/O errors from directory traversal or file reads.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        if EXCLUDES.iter().any(|e| rel.starts_with(e)) || rel.contains("/target/") {
            continue;
        }
        let src = std::fs::read_to_string(&p)?;
        files.push(SourceFile::new(&rel, &src));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `CARGO_MANIFEST_DIR` (or the
/// current directory) to the first directory holding a `Cargo.toml` with a
/// `[workspace]` table.
#[must_use]
pub fn find_workspace_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map_or_else(|| std::env::current_dir().unwrap_or_default(), PathBuf::from);
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_links_directives_to_findings() {
        let files = vec![SourceFile::new(
            "crates/gs3-core/src/x.rs",
            "use std::collections::HashMap; // gs3-lint: allow(d1) -- never iterated\n",
        )];
        let findings = analyze(&files);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "d1");
        assert_eq!(findings[0].allowed.as_deref(), Some("never iterated"));
    }

    #[test]
    fn analyze_reports_are_sorted() {
        let files = vec![
            SourceFile::new("crates/gs3-core/src/b.rs", "use std::collections::HashMap;\n"),
            SourceFile::new("crates/gs3-core/src/a.rs", "let x = thread_rng();\n"),
        ];
        let f = analyze(&files);
        assert_eq!(f.len(), 2);
        assert!(f[0].rel < f[1].rel);
    }
}
