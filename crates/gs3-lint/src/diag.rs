//! Findings, allowlist directives, and report rendering.

use crate::lexer::{Lexed, RawDirective};

/// Rule identifiers accepted by `allow(...)` directives.
pub const RULES: [&str; 13] = [
    "d1", "d2", "d3", "d4", "d5", "t1", "t2", "t3", "w1", "a1", "a2", "allow-syntax",
    "allow-unused",
];

/// Version of the `--json` report format. Bumped to 2 when the report
/// gained this field, rule-major ordering, and the `schema_version` key.
pub const JSON_SCHEMA_VERSION: u32 = 2;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`d1`…`t2`, or the allowlist meta-rules).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
    /// `Some(justification)` when an allow directive covers the finding.
    pub allowed: Option<String>,
}

/// A parsed `gs3-lint:` allow directive.
#[derive(Debug)]
pub struct Directive {
    pub rules: Vec<String>,
    pub justification: String,
    /// The source line the directive covers (`None` = whole file).
    pub target_line: Option<u32>,
    /// Where the directive itself sits (for `allow-unused`).
    pub line: u32,
    pub used: bool,
}

/// Parses every raw `gs3-lint:` comment of a file into directives,
/// emitting `allow-syntax` findings for malformed ones.
///
/// Syntax: `// gs3-lint: allow(rule[, rule…]) -- justification` covering
/// the directive's own line when trailing code, otherwise the next source
/// line; `allow-file(rule…)` covers the whole file. The justification
/// after ` -- ` is mandatory and must be non-empty: an allowlist entry
/// without a recorded reason is itself a contract violation.
pub fn parse_directives(rel: &str, lexed: &Lexed) -> (Vec<Directive>, Vec<Finding>) {
    let mut dirs = Vec::new();
    let mut findings = Vec::new();
    for raw in &lexed.directives {
        match parse_one(raw, lexed) {
            Ok(d) => dirs.push(d),
            Err(msg) => findings.push(Finding {
                rule: "allow-syntax",
                rel: rel.to_string(),
                line: raw.line,
                msg,
                allowed: None,
            }),
        }
    }
    (dirs, findings)
}

fn parse_one(raw: &RawDirective, lexed: &Lexed) -> Result<Directive, String> {
    let body = raw.text[raw.text.find("gs3-lint:").expect("captured by lexer") + 9..].trim();
    let (file_scope, rest) = if let Some(r) = body.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("allow(") {
        (false, r)
    } else {
        return Err(format!("unrecognized gs3-lint directive `{body}`"));
    };
    let close = rest
        .find(')')
        .ok_or_else(|| "unterminated rule list in allow directive".to_string())?;
    let mut rules = Vec::new();
    for r in rest[..close].split(',') {
        let r = r.trim();
        if !RULES.contains(&r) {
            return Err(format!("unknown lint rule `{r}` in allow directive"));
        }
        rules.push(r.to_string());
    }
    let tail = rest[close + 1..].trim();
    let justification = tail
        .strip_prefix("--")
        .map(str::trim)
        .filter(|j| !j.is_empty())
        .ok_or_else(|| {
            "allow directive requires a justification: `-- <why this is sound>`".to_string()
        })?;
    let target_line = if file_scope {
        None
    } else if raw.trailing {
        Some(raw.line)
    } else {
        // A standalone directive covers the next line holding source.
        Some(
            lexed
                .toks
                .iter()
                .map(|t| t.line)
                .find(|&l| l > raw.line)
                .unwrap_or(raw.line + 1),
        )
    };
    Ok(Directive {
        rules,
        justification: justification.to_string(),
        target_line,
        line: raw.line,
        used: false,
    })
}

/// Marks findings covered by directives and appends `allow-unused`
/// findings for directives that cover nothing.
pub fn apply_directives(rel: &str, dirs: &mut [Directive], findings: &mut Vec<Finding>) {
    for f in findings.iter_mut().filter(|f| f.rel == rel) {
        for d in dirs.iter_mut() {
            let rule_match = d.rules.iter().any(|r| r == f.rule);
            let line_match = d.target_line.is_none_or(|l| l == f.line);
            if rule_match && line_match {
                d.used = true;
                f.allowed = Some(d.justification.clone());
                break;
            }
        }
    }
    for d in dirs.iter().filter(|d| !d.used) {
        findings.push(Finding {
            rule: "allow-unused",
            rel: rel.to_string(),
            line: d.line,
            msg: format!(
                "allow({}) covers no finding — remove the stale directive",
                d.rules.join(", ")
            ),
            allowed: None,
        });
    }
}

/// Renders findings as a human-readable report.
#[must_use]
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings.iter().filter(|f| f.allowed.is_none()) {
        out.push_str(&format!("error[{}]: {}:{}: {}\n", f.rule, f.rel, f.line, f.msg));
    }
    let allowed = findings.iter().filter(|f| f.allowed.is_some()).count();
    let errors = findings.len() - allowed;
    out.push_str(&format!(
        "gs3-lint: {errors} finding(s), {allowed} allowlisted with justification\n"
    ));
    out
}

/// Renders findings as a machine-readable JSON report.
///
/// The report carries a `schema_version` so downstream consumers (CI
/// artifact uploads, dashboards) can detect format changes, and findings
/// are emitted in a stable rule-major order (`rule`, then path, then
/// line) independent of the text report's path-major order.
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut findings: Vec<&Finding> = findings.iter().collect();
    findings.sort_by(|a, b| (a.rule, &a.rel, a.line).cmp(&(b.rule, &b.rel, b.line)));
    let mut out = format!("{{\"schema_version\":{JSON_SCHEMA_VERSION},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"",
            esc(f.rule),
            esc(&f.rel),
            f.line,
            esc(&f.msg)
        ));
        match &f.allowed {
            Some(j) => out.push_str(&format!(",\"allowed\":true,\"justification\":\"{}\"}}", esc(j))),
            None => out.push_str(",\"allowed\":false}"),
        }
    }
    let allowed = findings.iter().filter(|f| f.allowed.is_some()).count();
    out.push_str(&format!(
        "],\"summary\":{{\"errors\":{},\"allowlisted\":{}}}}}\n",
        findings.len() - allowed,
        allowed
    ));
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_and_standalone_targets() {
        let src = "\
let a = 1; // gs3-lint: allow(d2) -- measuring wall time on purpose
// gs3-lint: allow(d1) -- std map never iterated

let b = 2;\n";
        let lexed = lex(src);
        let (dirs, bad) = parse_directives("f.rs", &lexed);
        assert!(bad.is_empty());
        assert_eq!(dirs[0].target_line, Some(1));
        assert_eq!(dirs[1].target_line, Some(4), "skips the blank line");
    }

    #[test]
    fn justification_is_mandatory() {
        let lexed = lex("// gs3-lint: allow(d1)\n// gs3-lint: allow(d1) --   \n");
        let (dirs, bad) = parse_directives("f.rs", &lexed);
        assert!(dirs.is_empty());
        assert_eq!(bad.len(), 2);
        assert!(bad.iter().all(|f| f.rule == "allow-syntax"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let lexed = lex("// gs3-lint: allow(d9) -- because\n");
        let (dirs, bad) = parse_directives("f.rs", &lexed);
        assert!(dirs.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unused_directive_is_flagged() {
        let lexed = lex("// gs3-lint: allow-file(d2) -- benchmark harness\n");
        let (mut dirs, mut findings) = parse_directives("f.rs", &lexed);
        apply_directives("f.rs", &mut dirs, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "allow-unused");
    }

    #[test]
    fn file_scope_covers_every_line() {
        let lexed = lex("// gs3-lint: allow-file(d2) -- benchmark harness\n");
        let (mut dirs, mut findings) = parse_directives("f.rs", &lexed);
        findings.push(Finding {
            rule: "d2",
            rel: "f.rs".into(),
            line: 40,
            msg: String::new(),
            allowed: None,
        });
        apply_directives("f.rs", &mut dirs, &mut findings);
        assert!(findings.iter().all(|f| f.allowed.is_some() || f.rule != "d2"));
        assert!(!findings.iter().any(|f| f.rule == "allow-unused"));
    }

    #[test]
    fn json_report_is_well_formed() {
        let findings = vec![Finding {
            rule: "d1",
            rel: "a\"b.rs".into(),
            line: 3,
            msg: "std::collections::HashMap".into(),
            allowed: None,
        }];
        let json = render_json(&findings);
        assert!(json.contains("\\\"b.rs"));
        assert!(json.contains("\"errors\":1"));
    }

    #[test]
    fn json_report_is_versioned_and_rule_sorted() {
        let mk = |rule: &'static str, rel: &str, line: u32| Finding {
            rule,
            rel: rel.into(),
            line,
            msg: String::new(),
            allowed: None,
        };
        // Path-major input order (what `analyze` returns) must come out
        // rule-major in the JSON report.
        let findings =
            vec![mk("t1", "a.rs", 1), mk("d1", "z.rs", 9), mk("d1", "a.rs", 5)];
        let json = render_json(&findings);
        assert!(json.starts_with("{\"schema_version\":2,"));
        let pos = |needle: &str| json.find(needle).unwrap();
        assert!(pos("\"line\":5") < pos("\"line\":9"));
        assert!(pos("\"line\":9") < pos("\"rule\":\"t1\""));
    }
}
