//! `gs3-lint` CLI: run the project rules over the workspace.
//!
//! ```text
//! cargo run -p gs3-lint                # human-readable report, exit 1 on findings
//! cargo run -p gs3-lint -- --json r.json   # also write a machine-readable report
//! cargo run -p gs3-lint -- --root PATH     # lint a different checkout
//! cargo run -p gs3-lint -- --write-schema  # regenerate protocol.schema.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut write_schema = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--write-schema" => write_schema = true,
            "--help" | "-h" => {
                eprintln!("usage: gs3-lint [--root DIR] [--json FILE] [--write-schema]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gs3-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(gs3_lint::find_workspace_root);
    let files = match gs3_lint::load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gs3-lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if write_schema {
        // The only sanctioned way to change the pinned wire schema: an
        // explicit regeneration whose diff gets reviewed and committed.
        let model = gs3_lint::model::ProtocolModel::extract(
            files.iter().map(|f| (f.rel.as_str(), f.lexed.toks.as_slice())),
        );
        let path = root.join(gs3_lint::SCHEMA_REL);
        let text = gs3_lint::schema::render(&model.layouts);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("gs3-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "gs3-lint: wrote {} ({} enums, fingerprint {:#018x})",
            path.display(),
            model.layouts.len(),
            gs3_lint::schema::fingerprint(&model.layouts)
        );
        return ExitCode::SUCCESS;
    }
    let committed = gs3_lint::load_committed_schema(&root);
    let findings =
        gs3_lint::analyze_with(&files, gs3_lint::SchemaCheck::Committed(committed.as_deref()));
    print!("{}", gs3_lint::diag::render_text(&findings));
    if let Some(path) = json_out {
        let json = gs3_lint::diag::render_json(&findings);
        let to_stdout = path.as_os_str() == "-";
        if to_stdout {
            print!("{json}");
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("gs3-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if findings.iter().any(|f| f.allowed.is_none()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
