//! `gs3-lint` CLI: run the project rules over the workspace.
//!
//! ```text
//! cargo run -p gs3-lint                # human-readable report, exit 1 on findings
//! cargo run -p gs3-lint -- --json r.json   # also write a machine-readable report
//! cargo run -p gs3-lint -- --root PATH     # lint a different checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: gs3-lint [--root DIR] [--json FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gs3-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(gs3_lint::find_workspace_root);
    let files = match gs3_lint::load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gs3-lint: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = gs3_lint::analyze(&files);
    print!("{}", gs3_lint::diag::render_text(&findings));
    if let Some(path) = json_out {
        let json = gs3_lint::diag::render_json(&findings);
        let to_stdout = path.as_os_str() == "-";
        if to_stdout {
            print!("{json}");
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("gs3-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if findings.iter().any(|f| f.allowed.is_none()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
