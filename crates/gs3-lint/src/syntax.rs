//! A lightweight item/expression extractor layered on the token lexer.
//!
//! [`extract_fns`] recovers every `fn` item from a token stream — name,
//! owning `impl` type, body token range, and whether the item is test
//! code — and [`calls_in`] lists the call expressions inside a body.
//! Together they feed the workspace call graph (`callgraph.rs`) that the
//! cross-procedural rules (`d4`, `t3`) walk.
//!
//! This is deliberately *not* a parser: there is no type inference, no
//! name resolution beyond `Type::method` qualifiers, and no expression
//! tree. The extractor gets item boundaries right (generic parameter
//! lists containing `Fn(..)` parens, where-clauses, trait methods without
//! bodies, nested functions, `#[cfg(test)]` modules) and leaves semantic
//! questions to the rules, which over-approximate by design. Known
//! limitations are documented on each item and exercised in tests.

use crate::lexer::{Tok, TokKind};

/// One extracted `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name (raw-identifier prefix stripped by the lexer).
    pub name: String,
    /// The `impl` type the function sits in, when inside an `impl` block
    /// (`impl Trait for Type` records `Type`).
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token range `(open, close)` of the body braces, inclusive of both
    /// brace tokens. `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// True for functions in test code: `#[test]`/`#[cfg(test)]`
    /// attributes, `#[cfg(test)] mod` bodies, or files under a crate's
    /// `tests/`, `benches/`, or `examples/` tree.
    pub is_test: bool,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (`foo` in `foo(..)`, `.foo(..)`, `T::foo(..)`).
    pub callee: String,
    /// `Some("T")` for path calls `T::foo(..)`.
    pub qualifier: Option<String>,
    /// True for method-call syntax `recv.foo(..)`.
    pub method: bool,
    /// Token index of the callee identifier.
    pub idx: usize,
    /// 1-based source line of the call.
    pub line: u32,
}

/// Keywords that read like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "move", "in", "as",
    "where", "unsafe",
];

/// Extracts every `fn` item of a lexed file.
///
/// `rel` is the workspace-relative path; files under `tests/`, `benches/`,
/// or `examples/` are test code wholesale (integration tests and harness
/// binaries never run inside a simulation).
#[must_use]
pub fn extract_fns(rel: &str, toks: &[Tok]) -> Vec<FnItem> {
    let file_is_test = rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    let test_regions = test_mod_regions(toks);
    let impl_regions = impl_regions(toks);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            if let Some(item) = parse_fn(rel, toks, i, file_is_test, &test_regions, &impl_regions)
            {
                i = item.body.map_or(item.fn_idx + 1, |(open, _)| open + 1);
                out.push(item);
                continue;
            }
        }
        i += 1;
    }
    out
}

fn parse_fn(
    _rel: &str,
    toks: &[Tok],
    fn_idx: usize,
    file_is_test: bool,
    test_regions: &[(usize, usize)],
    impl_regions: &[(usize, usize, String)],
) -> Option<FnItem> {
    let name_tok = toks.get(fn_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Find the parameter list: the first `(` at angle-depth 0 after the
    // name. Generic parameter lists may contain `Fn(usize) -> bool`
    // bounds, whose parens sit at angle-depth ≥ 1 and are skipped.
    let mut j = fn_idx + 2;
    let mut angle = 0i32;
    let params_open = loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "(" if angle == 0 => break j,
            ";" | "{" | "}" => return None, // malformed / not a fn item
            _ => {}
        }
        j += 1;
    };
    let params_close = matching_close(toks, params_open)?;
    // After the parameters: return type and where clause hold no braces
    // at angle-depth 0 (const-generic `{N}` braces only occur inside
    // `<...>`), so the first depth-0 `{` opens the body and a `;` first
    // means a bodiless trait declaration.
    let mut j = params_close + 1;
    let mut angle = 0i32;
    let body = loop {
        match toks.get(j) {
            None => break None,
            Some(t) => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                ";" if angle == 0 => break None,
                "{" if angle == 0 => break matching_close(toks, j).map(|c| (j, c)),
                _ => {}
            },
        }
        j += 1;
    };
    let is_test = file_is_test
        || test_regions.iter().any(|&(a, b)| fn_idx > a && fn_idx < b)
        || has_test_attr(toks, fn_idx);
    let owner = impl_regions
        .iter()
        .filter(|&&(a, b, _)| fn_idx > a && fn_idx < b)
        .min_by_key(|&&(a, b, _)| b - a)
        .map(|(_, _, ty)| ty.clone());
    Some(FnItem { name, owner, line: toks[fn_idx].line, fn_idx, body, is_test })
}

/// Whether the attribute tokens immediately before `fn_idx` contain
/// `#[test]`, `#[cfg(test)]`, or a `#[tokio::test]`-style suffix. Scans
/// backward through any stack of attributes, doc comments having been
/// discarded by the lexer.
fn has_test_attr(toks: &[Tok], fn_idx: usize) -> bool {
    let mut end = fn_idx;
    // Visibility / qualifiers between attributes and `fn`.
    while end > 0
        && matches!(toks[end - 1].text.as_str(), "pub" | "const" | "async" | "unsafe" | ")" | "(" | "crate" | "super")
    {
        end -= 1;
    }
    while end > 0 && toks[end - 1].text == "]" {
        let close = end - 1;
        let Some(open) = matching_open_bracket(toks, close) else { return false };
        if open == 0 || toks[open - 1].text != "#" {
            return false;
        }
        let attr: Vec<&str> = toks[open + 1..close].iter().map(|t| t.text.as_str()).collect();
        if attr.first() == Some(&"test")
            || attr.last() == Some(&"test")
            || (attr.contains(&"cfg") && attr.contains(&"test"))
        {
            return true;
        }
        end = open - 1;
    }
    false
}

/// Body ranges of `#[cfg(test)] mod … { … }` blocks.
fn test_mod_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "mod" && has_test_attr(toks, i) {
            // Skip `mod name` to the `{` (a `;` is an out-of-line module).
            let mut j = i + 1;
            while j < toks.len() && !matches!(toks[j].text.as_str(), "{" | ";") {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                if let Some(close) = matching_close(toks, j) {
                    out.push((j, close));
                    i = j + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// `(open_brace, close_brace, type_name)` of every `impl` block. For
/// `impl Trait for Type` the name is `Type`; generic arguments are
/// dropped (`impl Foo<T>` records `Foo`).
fn impl_regions(toks: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "impl" {
            // Walk to the `{` at angle-depth 0, remembering the last
            // identifier seen at depth 0 before a `for` (trait name) and
            // after it (type name).
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut last_ident: Option<String> = None;
            let mut after_for: Option<String> = None;
            let mut saw_for = false;
            while j < toks.len() {
                let t = &toks[j];
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle = (angle - 1).max(0),
                    "for" if angle == 0 => saw_for = true,
                    "where" if angle == 0 => {}
                    "{" if angle == 0 => break,
                    ";" => break, // `impl Trait for Type;` (never in this workspace)
                    _ if t.kind == TokKind::Ident && angle == 0 => {
                        if saw_for {
                            after_for.get_or_insert_with(|| t.text.clone());
                        } else {
                            last_ident = Some(t.text.clone());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                if let (Some(close), Some(ty)) =
                    (matching_close(toks, j), after_for.or(last_ident))
                {
                    out.push((j, close, ty));
                }
            }
        }
        i += 1;
    }
    out
}

/// Lists the call expressions in `toks[range.0..=range.1]`, skipping any
/// `exclude` sub-ranges (nested `fn` bodies, so an inner function's calls
/// are not attributed to its enclosing item).
///
/// Macro invocations (`name!(..)`) are not calls; tuple-struct
/// constructors (`Some(x)`) are indistinguishable from calls at token
/// level and are reported — the call graph simply finds no function of
/// that name.
#[must_use]
pub fn calls_in(toks: &[Tok], range: (usize, usize), exclude: &[(usize, usize)]) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (start, end) = range;
    let mut i = start;
    while i < end {
        if exclude.iter().any(|&(a, b)| i >= a && i <= b) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            && !(i > 0 && toks[i - 1].text == "fn")
        {
            let method = i > 0 && toks[i - 1].text == ".";
            let qualifier = (!method && i >= 2 && toks[i - 1].text == "::"
                && toks[i - 2].kind == TokKind::Ident)
                .then(|| toks[i - 2].text.clone());
            out.push(CallSite {
                callee: t.text.clone(),
                qualifier,
                method,
                idx: i,
                line: t.line,
            });
        }
        i += 1;
    }
    out
}

/// Index of the closing token matching the opener at `open` (`(`/`[`/`{`).
#[must_use]
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn matching_open_bracket(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        match toks[j].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        extract_fns("crates/x/src/a.rs", &lex(src).toks)
    }

    #[test]
    fn plain_fn_with_body() {
        let f = fns("fn alpha(x: u32) -> u32 { x + 1 }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "alpha");
        assert!(f[0].body.is_some());
        assert!(!f[0].is_test);
        assert!(f[0].owner.is_none());
    }

    #[test]
    fn generic_fn_bound_parens_are_not_params() {
        // The `Fn(usize)` parens inside the generic list must not be
        // mistaken for the parameter list.
        let f = fns("fn each<F: Fn(usize) -> bool>(mut f: F) { f(1); }");
        assert_eq!(f.len(), 1);
        let calls = calls_in(&lex("fn each<F: Fn(usize) -> bool>(mut f: F) { f(1); }").toks,
            f[0].body.unwrap(), &[]);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].callee, "f");
    }

    #[test]
    fn trait_decl_without_body() {
        let f = fns("trait T { fn required(&self) -> u32; fn provided(&self) -> u32 { 1 } }");
        assert_eq!(f.len(), 2);
        assert!(f[0].body.is_none());
        assert!(f[1].body.is_some());
    }

    #[test]
    fn impl_owner_and_trait_impl_owner() {
        let f = fns("impl Foo { fn a(&self) {} } impl Bar for Baz<T> { fn b(&self) {} }");
        assert_eq!(f[0].owner.as_deref(), Some("Foo"));
        assert_eq!(f[1].owner.as_deref(), Some("Baz"));
    }

    #[test]
    fn generic_impl_owner() {
        let f = fns("impl<N: Node> Engine<N> { fn step(&mut self) {} }");
        assert_eq!(f[0].owner.as_deref(), Some("Engine"));
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let src = "fn live() {} #[cfg(test)] mod tests { fn helper() {} #[test] fn t() {} }";
        let f = fns(src);
        assert_eq!(f.len(), 3);
        assert!(!f[0].is_test);
        assert!(f[1].is_test, "helper inside #[cfg(test)] mod");
        assert!(f[2].is_test);
    }

    #[test]
    fn test_attr_direct() {
        let f = fns("#[test] fn t() {} #[tokio::test] fn t2() {} pub fn live() {}");
        assert!(f[0].is_test);
        assert!(f[1].is_test);
        assert!(!f[2].is_test);
    }

    #[test]
    fn tests_dir_files_are_test_code() {
        let f = extract_fns("crates/gs3-core/tests/chaos.rs", &lex("fn helper() {}").toks);
        assert!(f[0].is_test);
    }

    #[test]
    fn nested_fn_calls_are_excludable() {
        let src = "fn outer() { inner_call(); fn nested() { nested_call(); } }";
        let toks = lex(src).toks;
        let f = extract_fns("crates/x/src/a.rs", &toks);
        assert_eq!(f.len(), 2);
        let nested_body = f[1].body.unwrap();
        let outer_calls = calls_in(&toks, f[0].body.unwrap(), &[nested_body]);
        let names: Vec<_> = outer_calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, ["inner_call"], "nested fn's calls must not leak to outer");
    }

    #[test]
    fn call_kinds() {
        let src = "fn f() { plain(); recv.method(); Type::assoc(); mac!(no); }";
        let toks = lex(src).toks;
        let f = extract_fns("crates/x/src/a.rs", &toks);
        let calls = calls_in(&toks, f[0].body.unwrap(), &[]);
        assert_eq!(calls.len(), 3, "macro invocation is not a call");
        assert!(!calls[0].method && calls[0].qualifier.is_none());
        assert!(calls[1].method);
        assert_eq!(calls[2].qualifier.as_deref(), Some("Type"));
    }

    #[test]
    fn where_clause_and_return_impl() {
        let src = "fn f<T>(x: T) -> impl Iterator<Item = (i64, i64)> where T: Clone { std::iter::empty() }";
        let f = fns(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].body.is_some());
    }
}
