//! The sink-side delivery ledger.

use std::collections::BTreeMap;

use gs3_sim::NodeId;
use gs3_telemetry::metrics::LogHistogram;

/// Width of the per-origin anti-replay window, in sequence numbers.
///
/// Radio jitter reorders batches sent in the same drain burst (a credit
/// window's worth go out back-to-back), so the sink cannot use a bare
/// high-water mark: a batch arriving just behind its successor would be
/// misbooked as a replay. A 64-bit bitmap behind the high-water mark —
/// the classic IPsec anti-replay shape — accepts any reordering narrower
/// than 64 sequences while still rejecting true re-deliveries.
const REPLAY_WINDOW: u64 = 64;

/// Per-origin anti-replay state: highest sequence consumed plus a bitmap
/// of which of the `REPLAY_WINDOW` sequences below it were consumed.
#[derive(Debug, Clone, Copy, Default)]
struct SeqWindow {
    high: u64,
    /// Bit `k` set ⇔ sequence `high - 1 - k` was consumed.
    bitmap: u64,
}

impl SeqWindow {
    /// Marks `seq` consumed. Returns false if it was already consumed (or
    /// is too far behind the window to tell — treated as a replay).
    fn admit(&mut self, seq: u64) -> bool {
        if seq > self.high {
            let shift = seq - self.high;
            self.bitmap = if shift >= REPLAY_WINDOW {
                0
            } else {
                // The old high-water mark becomes bit (shift - 1).
                (self.bitmap << shift) | (1 << (shift - 1))
            };
            self.high = seq;
            return true;
        }
        if seq == self.high {
            return false;
        }
        let back = self.high - seq;
        if back > REPLAY_WINDOW {
            return false;
        }
        let bit = 1u64 << (back - 1);
        if self.bitmap & bit != 0 {
            return false;
        }
        self.bitmap |= bit;
        true
    }
}

/// What the big node has consumed from the convergecast stream.
///
/// Lives only on the sink (boxed behind the big node's data-plane state),
/// so its histogram never multiplies across a million-node arena.
#[derive(Debug, Clone, Default)]
pub struct SinkLedger {
    /// Batches consumed.
    pub batches: u64,
    /// Leaf reports summed across consumed batches.
    pub reports: u64,
    /// End-to-end latency (µs) from the batch's oldest report to sink
    /// consumption.
    pub latency_us: LogHistogram,
    /// Anti-replay window per originating head, for provenance:
    /// re-deliveries of an already-consumed sequence are counted instead
    /// of double-booked, while jitter-reordered arrivals still consume.
    seen: BTreeMap<NodeId, SeqWindow>,
    /// Batches whose (origin, seq) was already consumed — replay
    /// duplicates suppressed at the sink.
    pub duplicate_batches: u64,
}

impl SinkLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        SinkLedger::default()
    }

    /// Consumes one delivered batch. Returns false (and books a
    /// duplicate, counting no reports) when this origin already delivered
    /// `seq` — the sink-side half of the no-double-counting guarantee for
    /// quarantine replays.
    pub fn consume(&mut self, origin: NodeId, seq: u64, count: u32, latency_us: u64) -> bool {
        // seq 0 marks an unsequenced legacy batch — always consumed.
        if seq != 0 && !self.seen.entry(origin).or_default().admit(seq) {
            self.duplicate_batches += 1;
            return false;
        }
        self.batches += 1;
        self.reports += u64::from(count);
        self.latency_us.record(latency_us);
        true
    }

    /// Serialize as one stable-keyed JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"batches\":{},\"reports\":{},\"duplicate_batches\":{},\"latency_us\":{}}}",
            self.batches,
            self.reports,
            self.duplicate_batches,
            self.latency_us.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_tracks_and_dedups() {
        let mut l = SinkLedger::new();
        let origin = NodeId::new(7);
        assert!(l.consume(origin, 1, 3, 1000));
        assert!(l.consume(origin, 2, 2, 2000));
        assert!(!l.consume(origin, 2, 2, 2000), "replayed seq rejected");
        assert!(!l.consume(origin, 1, 3, 9000), "replayed seq rejected");
        assert_eq!(l.batches, 2);
        assert_eq!(l.reports, 5);
        assert_eq!(l.duplicate_batches, 2);
        assert_eq!(l.latency_us.count(), 2);
        // A different origin has its own sequence space.
        assert!(l.consume(NodeId::new(9), 1, 1, 500));
        assert_eq!(l.reports, 6);
    }

    #[test]
    fn reordered_burst_still_consumes() {
        // Jitter can deliver a drain burst out of order; nothing in a
        // burst is a duplicate.
        let mut l = SinkLedger::new();
        let origin = NodeId::new(4);
        assert!(l.consume(origin, 3, 1, 10));
        assert!(l.consume(origin, 1, 1, 10), "late-but-new seq consumed");
        assert!(l.consume(origin, 2, 1, 10), "late-but-new seq consumed");
        assert!(!l.consume(origin, 2, 1, 10), "second copy rejected");
        assert_eq!(l.batches, 3);
        assert_eq!(l.duplicate_batches, 1);
    }

    #[test]
    fn seq_gaps_still_consume() {
        // Drops upstream leave gaps; the ledger only rejects replays,
        // never gaps.
        let mut l = SinkLedger::new();
        let origin = NodeId::new(3);
        assert!(l.consume(origin, 5, 1, 10));
        assert!(l.consume(origin, 9, 1, 10));
        assert!(l.consume(origin, 7, 1, 10), "in-window gap fill consumed");
        assert!(!l.consume(origin, 7, 1, 10), "but only once");
        assert_eq!(l.batches, 3);
    }

    #[test]
    fn window_expiry_treats_ancient_as_replay() {
        let mut l = SinkLedger::new();
        let origin = NodeId::new(2);
        assert!(l.consume(origin, 100, 1, 10));
        assert!(!l.consume(origin, 100 - REPLAY_WINDOW - 1, 1, 10), "beyond the window");
        assert!(l.consume(origin, 100 - REPLAY_WINDOW, 1, 10), "window edge admitted");
    }

    #[test]
    fn far_jump_clears_bitmap() {
        let mut l = SinkLedger::new();
        let origin = NodeId::new(6);
        assert!(l.consume(origin, 1, 1, 10));
        assert!(l.consume(origin, 1 + 2 * REPLAY_WINDOW, 1, 10));
        assert!(!l.consume(origin, 1, 1, 10), "fell out of the window");
    }

    #[test]
    fn json_shape() {
        let mut l = SinkLedger::new();
        let _ = l.consume(NodeId::new(1), 1, 4, 128);
        let json = l.to_json();
        assert!(json.starts_with("{\"batches\":1,\"reports\":4,"));
        assert!(json.contains("\"latency_us\":{\"count\":1,"));
    }
}
