//! Data-plane configuration.

/// Parameters of the convergecast data plane.
///
/// Disabled by default: the protocol falls back to the legacy one-line
/// report tick (un-sequenced `SensorReport`s, instant `AggregateReport`
/// relay, no queues, no credits, no ledger) and the layer is *inert* — no
/// extra state, messages, timers, RNG draws, or counters, so runs are
/// byte-identical to a build without the layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataplaneConfig {
    /// Master switch.
    pub enabled: bool,
    /// Bound of each head's aggregation queue, in batches. Overflow drops
    /// the oldest batch (with its reports accounted as lost).
    pub queue_capacity: usize,
    /// Credits a head holds against its parent when freshly attached —
    /// the maximum number of its batches in flight or queued upstream.
    pub credit_window: u32,
    /// Consecutive report ticks a head may sit starved (zero credits,
    /// non-empty queue) before the stall-recovery escape hatch restores a
    /// single credit.
    pub stall_recovery_ticks: u32,
    /// In-network aggregation bound: the most sub-batches a relaying head
    /// packs into one `data_batch` frame (its MTU, in batch items). This
    /// is what makes convergecast scale — without it every origin cell
    /// costs the inner rings one whole frame per period, and the funnel's
    /// transmit budget (not its queue) becomes the lifetime bottleneck.
    /// The round-model baselines assume perfect aggregation (one frame
    /// per cluster per round, any load); a bounded MTU is the honest
    /// event-level counterpart.
    pub max_frame_items: usize,
}

impl DataplaneConfig {
    /// The inert default (see the type docs).
    #[must_use]
    pub fn disabled() -> Self {
        DataplaneConfig {
            enabled: false,
            queue_capacity: 32,
            credit_window: 4,
            stall_recovery_ticks: 4,
            max_frame_items: 32,
        }
    }

    /// The data plane with default tuning.
    #[must_use]
    pub fn on() -> Self {
        DataplaneConfig { enabled: true, ..DataplaneConfig::disabled() }
    }
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        assert!(!DataplaneConfig::default().enabled);
        assert!(DataplaneConfig::on().enabled);
        assert_eq!(
            DataplaneConfig { enabled: true, ..DataplaneConfig::disabled() },
            DataplaneConfig::on()
        );
    }
}
