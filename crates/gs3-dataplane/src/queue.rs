//! Bounded aggregation queues and the credit gate — the per-head hot
//! state of the data plane.
//!
//! Kept deliberately small: every head in a million-node run carries one
//! [`AggQueue`] and one [`CreditGate`], so both are flat (a `VecDeque`
//! plus a few words) with no per-node heap-heavy structures.

use std::collections::VecDeque;

use gs3_sim::{NodeId, SimTime};

/// One aggregated report batch queued at (or in flight between) heads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    /// The immediate child the batch arrived from (`self` for a head's
    /// own cell aggregate) — the hop a returned credit goes back to.
    pub from: NodeId,
    /// The head that produced the batch. Unlike `from`, this never
    /// changes as the batch relays hop by hop — the sink dedups on
    /// `(origin, seq)`.
    pub origin: NodeId,
    /// The originating head's batch sequence number (provenance).
    pub seq: u64,
    /// Leaf reports summed into the batch.
    pub count: u32,
    /// When the oldest report in the batch was produced — end-to-end
    /// latency is measured against this at the sink.
    pub born: SimTime,
}

/// What [`AggQueue::push`] did with the new batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Enqueue {
    /// Stored without eviction.
    Stored,
    /// Stored, but the queue was full: the oldest batch was evicted and
    /// is returned for accounting (and possible credit return).
    Evicted(BatchEntry),
}

/// A bounded FIFO of report batches with drop-oldest overflow.
///
/// Convergecast favors fresh data: when the queue is full the *oldest*
/// batch is sacrificed for the new one, mirroring the quarantine buffer's
/// drop-oldest policy (this queue *is* the quarantine buffer while the
/// head is partitioned — quarantine just stops the drain).
#[derive(Debug, Clone, Default)]
pub struct AggQueue {
    entries: VecDeque<BatchEntry>,
}

impl AggQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        AggQueue::default()
    }

    /// Appends a batch, evicting the oldest when `capacity` is reached.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn push(&mut self, entry: BatchEntry, capacity: usize) -> Enqueue {
        assert!(capacity > 0, "queue capacity must be positive");
        let evicted = if self.entries.len() >= capacity { self.entries.pop_front() } else { None };
        self.entries.push_back(entry);
        match evicted {
            Some(old) => Enqueue::Evicted(old),
            None => Enqueue::Stored,
        }
    }

    /// Removes and returns the oldest batch.
    pub fn pop(&mut self) -> Option<BatchEntry> {
        self.entries.pop_front()
    }

    /// Queued batches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total leaf reports across every queued batch.
    #[must_use]
    pub fn queued_reports(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.count)).sum()
    }

    /// Drops everything (head retirement / role loss).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates the queued batches oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &BatchEntry> {
        self.entries.iter()
    }
}

/// Credit-based backpressure state a head holds against its parent.
///
/// One credit = permission to put one batch in flight upstream. Credits
/// are granted back by the parent as it drains (or by the sink on
/// consumption), capped at the configured window. Re-parenting resets the
/// gate to a full window — the old parent's unreturned credits die with
/// the old attachment.
#[derive(Debug, Clone, Default)]
pub struct CreditGate {
    credits: u32,
    /// Consecutive starved ticks (zero credits with work queued).
    starved_ticks: u32,
}

impl CreditGate {
    /// A gate holding a full `window` of credits.
    #[must_use]
    pub fn full(window: u32) -> Self {
        CreditGate { credits: window, starved_ticks: 0 }
    }

    /// Credits currently held.
    #[must_use]
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Consumes one credit for an upstream send. Returns false (and
    /// consumes nothing) when starved.
    pub fn try_consume(&mut self) -> bool {
        if self.credits == 0 {
            return false;
        }
        self.credits -= 1;
        true
    }

    /// Returns `grant` credits, capped at `window`.
    pub fn grant(&mut self, grant: u32, window: u32) {
        self.credits = self.credits.saturating_add(grant).min(window);
        self.starved_ticks = 0;
    }

    /// Resets to a full window (fresh attachment to a parent).
    pub fn reset(&mut self, window: u32) {
        self.credits = window;
        self.starved_ticks = 0;
    }

    /// Ticks the stall detector: called once per report tick with whether
    /// the head has queued work it cannot send. After `recovery_ticks`
    /// consecutive starved ticks, restores one credit and returns true —
    /// the caller counts the recovery. Lost credits (a parent that died
    /// holding our batches, a dropped grant message) thereby degrade to a
    /// slow drip instead of a permanent stall.
    pub fn note_tick(&mut self, starved_with_work: bool, recovery_ticks: u32) -> bool {
        if !starved_with_work {
            self.starved_ticks = 0;
            return false;
        }
        self.starved_ticks = self.starved_ticks.saturating_add(1);
        if self.starved_ticks >= recovery_ticks.max(1) {
            self.starved_ticks = 0;
            self.credits = 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, count: u32) -> BatchEntry {
        BatchEntry { from: NodeId::new(1), origin: NodeId::new(1), seq, count, born: SimTime::ZERO }
    }

    #[test]
    fn push_pop_fifo() {
        let mut q = AggQueue::new();
        assert_eq!(q.push(entry(1, 3), 4), Enqueue::Stored);
        assert_eq!(q.push(entry(2, 5), 4), Enqueue::Stored);
        assert_eq!(q.len(), 2);
        assert_eq!(q.queued_reports(), 8);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut q = AggQueue::new();
        for seq in 1..=3 {
            assert_eq!(q.push(entry(seq, 1), 3), Enqueue::Stored);
        }
        match q.push(entry(4, 1), 3) {
            Enqueue::Evicted(old) => assert_eq!(old.seq, 1, "oldest evicted"),
            Enqueue::Stored => panic!("full queue must evict"),
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let mut q = AggQueue::new();
        let _ = q.push(entry(1, 1), 0);
    }

    #[test]
    fn credits_consume_and_grant_capped() {
        let mut g = CreditGate::full(2);
        assert!(g.try_consume());
        assert!(g.try_consume());
        assert!(!g.try_consume(), "starved gate must refuse");
        g.grant(5, 2);
        assert_eq!(g.credits(), 2, "grants cap at the window");
        g.reset(4);
        assert_eq!(g.credits(), 4);
    }

    #[test]
    fn stall_recovery_drips_one_credit() {
        let mut g = CreditGate::full(1);
        assert!(g.try_consume());
        // Three starved ticks under recovery_ticks = 3: fires on the third.
        assert!(!g.note_tick(true, 3));
        assert!(!g.note_tick(true, 3));
        assert!(g.note_tick(true, 3), "third consecutive starved tick recovers");
        assert_eq!(g.credits(), 1);
        // A non-starved tick resets the streak.
        assert!(g.try_consume());
        assert!(!g.note_tick(true, 3));
        assert!(!g.note_tick(false, 3));
        assert!(!g.note_tick(true, 3));
        assert!(!g.note_tick(true, 3));
        assert!(g.note_tick(true, 3));
    }
}
