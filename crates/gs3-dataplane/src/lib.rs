//! # gs3-dataplane
//!
//! The convergecast data plane carried by the GS³ head tree: the
//! machinery that turns "each associate reports periodically" into real
//! traffic with loss, queueing, and flow control — the workload the
//! paper's §4.1/§4.3.5.1 lifetime claims assume but never simulate.
//!
//! Three pieces, all engine-agnostic (pure data structures driven by the
//! protocol in `gs3-core`):
//!
//! * [`queue::AggQueue`] — a per-head bounded aggregation queue of
//!   sequence-numbered report batches. Overflow drops the *oldest* batch
//!   (fresh data beats stale data in convergecast), with exact accounting
//!   of dropped batches and the reports inside them. Doubles as the
//!   quarantine buffer: a quarantined head keeps enqueuing and simply
//!   stops draining, so re-attachment replays the backlog through the
//!   ordinary credit-gated path with no separate replay machinery.
//! * [`queue::CreditGate`] — credit-based backpressure from parent toward
//!   leaves. A head may forward one batch upstream per credit; credits
//!   return when the parent dequeues the batch (or the sink consumes it).
//!   A stall-recovery escape hatch restores one credit after a configured
//!   number of consecutive starved ticks, so credit loss under faults
//!   (dead parent, dropped grant) degrades to slow-drip instead of
//!   deadlock.
//! * [`ledger::SinkLedger`] — the big node's delivery ledger:
//!   batches/reports consumed, end-to-end latency histogram
//!   ([`gs3_telemetry::metrics::LogHistogram`]), and per-source
//!   provenance checks.
//!
//! Everything here is allocation-light and deterministic: no clocks, no
//! randomness, no hashing — state advances only when the protocol calls
//! in, so a build with the data plane disabled is byte-identical to one
//! without it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod ledger;
pub mod queue;

pub use config::DataplaneConfig;
pub use ledger::SinkLedger;
pub use queue::{AggQueue, BatchEntry, CreditGate, Enqueue};
