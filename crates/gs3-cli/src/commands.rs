//! The CLI subcommands.

use gs3_analysis::metrics::measure;
use gs3_analysis::render::{render, RenderOptions};
use gs3_analysis::report::num;
use gs3_bench::runner::run_grid;
use gs3_core::chaos::{Corruption, FaultKind, FaultPlan};
use gs3_core::harness::{Network, NetworkBuilder, RunOutcome};
use gs3_core::invariants::{check_all, Strictness};
use gs3_core::{CongestionConfig, DataplaneConfig, Mode, ReliabilityConfig};
use gs3_geometry::Point;
use gs3_mc::{Budgets, McStrategy, ModelChecker, Scenario};
use gs3_sim::faults::{BurstLoss, FaultConfig};
use gs3_sim::radio::EnergyModel;
use gs3_sim::telemetry::{export_chrome_trace, export_jsonl, RecorderMode};
use gs3_sim::ContentionConfig;
use gs3_sim::SimDuration;

use crate::args::{ArgError, Args};

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Prints usage.
pub fn help() {
    println!(
        "gs3 — GS3 cellular self-configuration, simulated\n\
         \n\
         commands:\n\
         \x20 run    configure a field and report the structure\n\
         \x20 heal   configure, kill a disk of nodes, re-heal, report locality\n\
         \x20 watch  run under energy drain and watch the structure slide\n\
         \x20 chaos  configure, then run a scheduled fault plan (burst loss,\n\
         \x20        jamming, crash wave, state corruption) and certify healing\n\
         \x20 mc     exhaustively model-check a pinned small field against a\n\
         \x20        bounded adversary and report verified properties /\n\
         \x20        minimized counterexamples\n\
         \x20 dataplane  configure with the convergecast data plane on, run\n\
         \x20        the workload, and report end-to-end delivery (sink\n\
         \x20        ledger, latency percentiles, queue/credit counters)\n\
         \x20 trace  configure, record the flight recorder for a while, and\n\
         \x20        export the event stream (JSONL or Chrome trace)\n\
         \x20 help   this text\n\
         \n\
         common options (defaults in parentheses):\n\
         \x20 --nodes N        expected node count (1400)\n\
         \x20 --radius R       ideal cell radius R in meters (80)\n\
         \x20 --tolerance RT   radius tolerance R_t in meters (18)\n\
         \x20 --area A         deployment disk radius in meters (320)\n\
         \x20 --seed S         RNG seed (2002)\n\
         \x20 --static         run GS3-S (one-shot, no maintenance)\n\
         \x20 --mobile         run GS3-M (big-node mobility handling)\n\
         \x20 --loss P         broadcast loss probability (0)\n\
         \x20 --noise SIGMA    localization noise sigma in meters (0)\n\
         \x20 --traffic SECS   enable the sensing workload at this period\n\
         \x20 --workload       enable the convergecast data plane (sequenced\n\
         \x20                  reports, bounded aggregation queues, credit\n\
         \x20                  backpressure, sink delivery ledger; implies\n\
         \x20                  --traffic 5 unless given)\n\
         \x20 --reliable       enable the control-plane reliability layer\n\
         \x20                  (acked retransmission, adaptive failure\n\
         \x20                  detection, quarantine mode)\n\
         \x20 --contended      enable the shared-medium contention layer\n\
         \x20                  (frame airtime, carrier-sense backoff,\n\
         \x20                  receiver-side collisions)\n\
         \x20 --adaptive       enable congestion-adaptive degradation\n\
         \x20                  (heartbeat stretching and broadcast\n\
         \x20                  suppression under observed contention)\n\
         \x20 --map            print an ASCII map of the structure\n\
         \x20 --quiet          suppress the metrics block\n\
         \n\
         heal options:\n\
         \x20 --kill-disk X,Y  center of the killed disk (required)\n\
         \x20 --kill-radius M  radius of the killed disk (60)\n\
         \n\
         watch options:\n\
         \x20 --budget E       per-node energy budget (500)\n\
         \x20 --duration SECS  how long to watch (1200)\n\
         \x20 --sample SECS    status-line period (60)\n\
         \n\
         chaos options (all deterministic per --seed):\n\
         \x20 --burst-enter P  Gilbert-Elliott bad-state entry prob (0.02)\n\
         \x20 --burst-len L    mean burst length in deliveries (4)\n\
         \x20 --unicast-loss P unicast loss probability (0.02)\n\
         \x20 --duplicate P    duplication probability (0)\n\
         \x20 --delay-prob P   extra-delay probability (0)\n\
         \x20 --delay-max MS   extra-delay bound in ms (0)\n\
         \x20 --crash N        crash-wave size (10)\n\
         \x20 --jam X,Y        jam disk center (0.5*area, 0)\n\
         \x20 --jam-radius M   jam disk radius (80)\n\
         \x20 --jam-secs S     jam window length (60)\n\
         \x20 --json           print the ChaosReport as JSON only\n\
         \x20 --timeline FILE  record the run and write a Chrome-trace /\n\
         \x20                  Perfetto timeline (chrome://tracing, ui.perfetto.dev)\n\
         \x20 --runs N         repeat against N consecutive seeds (1)\n\
         \x20 --threads N, -j N  worker threads for --runs > 1 (all cores);\n\
         \x20                  output is identical at any thread count\n\
         \x20 --plan FILE      replay a FaultPlan JSON file instead of the\n\
         \x20                  built-in schedule; also accepts a gs3-mc\n\
         \x20                  counterexample file (its embedded plan is used)\n\
         \n\
         mc options (field and budgets; deterministic per scenario):\n\
         \x20 --scenario NAME  pair5|triangle9|rel7|grid15|sparse7|all (all)\n\
         \x20 --strategy S     bfs | dfs (bfs)\n\
         \x20 --max-states N   state-expansion budget (50000)\n\
         \x20 --max-depth N    per-path choice budget (4000)\n\
         \x20 --max-fates N    scripted delivery fates per path (1)\n\
         \x20 --max-crashes N  node crashes per path (1)\n\
         \x20 --max-path-faults N  total faults per path (1)\n\
         \x20 --horizon SECS   simulated exploration horizon (40)\n\
         \x20 --heal-window SECS  healing bound after the last fault (25)\n\
         \x20 --json           print the full report document only\n\
         \x20 --out FILE       also write the report document here\n\
         \x20 --ce-dir DIR     write each counterexample (and its standalone\n\
         \x20                  FaultPlan) into DIR for artifact upload\n\
         \n\
         dataplane options (implies --workload):\n\
         \x20 --duration SECS  how long to run the workload (120)\n\
         \x20 --json           print the data counter block as JSON only\n\
         \n\
         trace options:\n\
         \x20 --duration SECS  how long to record after configuration (60)\n\
         \x20 --capacity N     flight-recorder ring capacity (200000)\n\
         \x20 --format F       jsonl | chrome (jsonl)\n\
         \x20 --out FILE       write here instead of stdout"
    );
}

fn build(a: &Args) -> Result<Network, Box<dyn std::error::Error>> {
    let seed: u64 = a.num("seed", 2002)?;
    build_seeded(a, seed)
}

fn build_seeded(a: &Args, seed: u64) -> Result<Network, Box<dyn std::error::Error>> {
    let nodes: usize = a.num("nodes", 1400)?;
    let radius: f64 = a.num("radius", 80.0)?;
    let tolerance: f64 = a.num("tolerance", 18.0)?;
    let area: f64 = a.num("area", 320.0)?;
    let loss: f64 = a.num("loss", 0.0)?;
    let noise: f64 = a.num("noise", 0.0)?;
    let mode = if a.flag("static") {
        Mode::Static
    } else if a.flag("mobile") {
        Mode::Mobile
    } else {
        Mode::Dynamic
    };
    let mut b = NetworkBuilder::new()
        .ideal_radius(radius)
        .radius_tolerance(tolerance)
        .area_radius(area)
        .expected_nodes(nodes)
        .seed(seed)
        .mode(mode)
        .broadcast_loss(loss)
        .position_noise(noise);
    if let Some(t) = a.get("traffic") {
        let secs: f64 = t.parse().map_err(|_| ArgError::BadValue {
            key: "traffic".into(),
            value: t.into(),
            expected: "seconds",
        })?;
        b = b.traffic(SimDuration::from_secs_f64(secs));
    }
    if let Some(budget) = a.get("budget") {
        let e: f64 = budget.parse().map_err(|_| ArgError::BadValue {
            key: "budget".into(),
            value: budget.into(),
            expected: "energy units",
        })?;
        b = b.energy(EnergyModel::normalized(2.0 * radius), e);
    }
    if a.flag("workload") {
        // The data plane needs traffic to carry; default the report
        // period when --traffic wasn't given explicitly.
        if a.get("traffic").is_none() {
            b = b.traffic(SimDuration::from_secs(5));
        }
        b = b.dataplane(DataplaneConfig::on());
    }
    if a.flag("reliable") {
        b = b.reliability(ReliabilityConfig::on());
    }
    if a.flag("contended") {
        b = b.contention(ContentionConfig::on());
    }
    if a.flag("adaptive") {
        b = b.congestion(CongestionConfig::on());
    }
    Ok(b.build()?)
}

fn configure(net: &mut Network) -> CliResult {
    match net.config().mode {
        Mode::Static => {
            let deadline = net.now() + SimDuration::from_secs(900);
            net.engine_mut()
                .run_until_quiescent(deadline)
                .ok_or("static diffusion did not terminate")?;
        }
        _ => match net.run_to_fixpoint()? {
            RunOutcome::Fixpoint { .. } => {}
            RunOutcome::TimedOut { at } => return Err(format!("not stable by {at}").into()),
        },
    }
    Ok(())
}

fn report(net: &Network, a: &Args) {
    let snap = net.snapshot();
    if !a.flag("quiet") {
        let m = measure(&snap);
        println!("nodes:                {}", net.engine().node_count());
        println!("cells (heads):        {}", m.heads);
        println!("coverage:             {:.1}%", m.coverage_ratio * 100.0);
        println!(
            "cell radius:          mean {} / max {} m",
            num(m.cell_radius.mean),
            num(m.cell_radius.max)
        );
        println!(
            "head spacing:         mean {} m (ideal {})",
            num(m.neighbor_head_distance.mean),
            num(net.config().spacing())
        );
        println!(
            "head-to-IL deviation: max {} m (bound {})",
            num(m.head_il_deviation.max),
            num(net.config().r_t)
        );
        let strictness = match net.config().mode {
            Mode::Static => Strictness::Static,
            _ => Strictness::Dynamic,
        };
        let violations = check_all(&snap, strictness);
        match violations.first() {
            None => println!("invariants:           all hold"),
            Some(v) => println!("invariants:           {} VIOLATED, first: {v}", violations.len()),
        }
    }
    if a.flag("map") {
        println!("{}", render(&snap, RenderOptions::default()));
    }
}

/// `gs3 run`.
pub fn run(a: &Args) -> CliResult {
    let mut net = build(a)?;
    configure(&mut net)?;
    println!("configured at {}", net.now());
    report(&net, a);
    Ok(())
}

/// `gs3 heal`.
pub fn heal(a: &Args) -> CliResult {
    let center = a.point("kill-disk")?;
    let radius: f64 = a.num("kill-radius", 60.0)?;
    let mut net = build(a)?;
    configure(&mut net)?;
    println!("configured at {}; killing disk r={radius} at {center}", net.now());

    let mut killed = 0;
    let impact = gs3_analysis::locality::measure_impact(
        &mut net,
        center,
        SimDuration::from_secs(1),
        SimDuration::from_secs(600),
        |net| {
            killed = net.kill_disk(center, radius).len();
        },
    );
    println!("killed:          {killed} nodes");
    match impact.heal_time {
        Some(t) => println!("healed in:       {}", t),
        None => println!("healed in:       did not re-stabilize (timed out)"),
    }
    println!("nodes affected:  {}", impact.changed.len());
    println!("impact radius:   {} m", num(impact.impact_radius));
    report(&net, a);
    Ok(())
}

/// `gs3 watch`.
pub fn watch(a: &Args) -> CliResult {
    let duration: f64 = a.num("duration", 1200.0)?;
    let sample: f64 = a.num("sample", 60.0)?;
    // Watch implies energy accounting.
    let defaulted;
    let a = if a.get("budget").is_none() {
        defaulted = with_budget(a, "500");
        &defaulted
    } else {
        a
    };
    let mut net = build(a)?;
    configure(&mut net)?;
    println!("configured; draining for {duration} s\n");
    println!("{:>7}  {:>5}  {:>6}  {:>9}  {:>8}", "t(s)", "heads", "alive", "coverage", "shifted");
    let end = net.now() + SimDuration::from_secs_f64(duration);
    while net.now() < end {
        net.run_for(SimDuration::from_secs_f64(sample));
        let snap = net.snapshot();
        let m = measure(&snap);
        let shifted = snap
            .heads()
            .filter(|h| match &h.role {
                gs3_core::RoleView::Head { icc_icp, .. } => {
                    *icc_icp != gs3_geometry::spiral::IccIcp::ORIGIN
                }
                _ => false,
            })
            .count();
        println!(
            "{:>7.0}  {:>5}  {:>6}  {:>8.1}%  {:>4}/{:<4}",
            net.now().as_secs_f64(),
            m.heads,
            net.engine().alive_count(),
            m.coverage_ratio * 100.0,
            shifted,
            m.heads
        );
        if m.heads == 0 {
            println!("\nstructure exhausted");
            break;
        }
    }
    report(&net, a);
    Ok(())
}

/// The `data` JSON counter block: every data-plane trace counter plus
/// the sink ledger (null until a delivery reaches the big node).
fn data_json(net: &Network) -> String {
    let tr = net.engine().trace();
    format!(
        "{{\"produced\":{},\"delivered\":{},\"batches_delivered\":{},\"queue_drops\":{},\
         \"reports_dropped\":{},\"misrouted\":{},\"rerouted_frames\":{},\
         \"credit_recoveries\":{},\"leaf_gaps\":{},\"leaf_dups\":{},\"flushed\":{},\
         \"ledger\":{}}}",
        tr.proto("data_reports_produced"),
        tr.proto("data_reports_delivered"),
        tr.proto("data_batches_delivered"),
        tr.proto("data_queue_drops"),
        tr.proto("data_reports_dropped"),
        tr.proto("data_reports_lost_misroute"),
        tr.proto("data_batches_rerouted"),
        tr.proto("data_credit_recovered"),
        tr.proto("data_leaf_gaps"),
        tr.proto("data_leaf_dups"),
        tr.proto("reports_flushed"),
        net.sink_ledger().map_or_else(|| "null".to_string(), |l| l.to_json()),
    )
}

/// `gs3 dataplane` — configure with the convergecast data plane enabled,
/// run the sensing workload for `--duration`, and report end-to-end
/// delivery: the sink ledger (reports, latency percentiles, dedup) plus
/// the queue/credit/provenance counters.
pub fn dataplane(a: &Args) -> CliResult {
    let duration: f64 = a.num("duration", 120.0)?;
    let mut forced = a.clone();
    forced.set_flag("workload");
    let a = &forced;
    let mut net = build(a)?;
    configure(&mut net)?;
    if !a.flag("json") {
        println!("configured at {}; running the workload for {duration} s", net.now());
    }
    net.run_for(SimDuration::from_secs_f64(duration));
    if a.flag("json") {
        println!("{{\"data\":{}}}", data_json(&net));
        return Ok(());
    }
    let tr = net.engine().trace();
    let produced = tr.proto("data_reports_produced");
    println!();
    println!("data plane (convergecast over the head tree):");
    println!("  produced:          {produced} reports");
    match net.sink_ledger() {
        Some(l) => {
            let pct = if produced > 0 {
                100.0 * l.reports as f64 / produced as f64
            } else {
                0.0
            };
            println!(
                "  delivered:         {} reports in {} sub-batches ({pct:.1}%)",
                l.reports, l.batches
            );
            println!(
                "  latency:           p50 {:.1} ms / p95 {:.1} ms / max {:.1} ms",
                l.latency_us.percentile(50.0) as f64 / 1000.0,
                l.latency_us.percentile(95.0) as f64 / 1000.0,
                l.latency_us.max() as f64 / 1000.0
            );
            println!("  sink duplicates:   {}", l.duplicate_batches);
        }
        None => println!("  delivered:         nothing reached the sink"),
    }
    println!(
        "  queue drops:       {} batches ({} reports lost)",
        tr.proto("data_queue_drops"),
        tr.proto("data_reports_dropped")
    );
    println!(
        "  misrouted:         {} reports lost, {} sub-batches rerouted via successors",
        tr.proto("data_reports_lost_misroute"),
        tr.proto("data_batches_rerouted")
    );
    println!("  credit recoveries: {}", tr.proto("data_credit_recovered"));
    println!(
        "  leaf provenance:   {} gaps, {} duplicates",
        tr.proto("data_leaf_gaps"),
        tr.proto("data_leaf_dups")
    );
    report(&net, a);
    Ok(())
}

/// `gs3 chaos` — configure, then execute a scheduled fault plan while
/// polling the invariant suite, and report per-fault healing latencies.
/// Everything is drawn from the seeded RNG: two runs with the same options
/// print the same digest, delivery for delivery.
pub fn chaos(a: &Args) -> CliResult {
    let area: f64 = a.num("area", 320.0)?;
    let burst_enter: f64 = a.num("burst-enter", 0.02)?;
    let burst_len: f64 = a.num("burst-len", 4.0)?;
    let unicast_loss: f64 = a.num("unicast-loss", 0.02)?;
    let duplicate: f64 = a.num("duplicate", 0.0)?;
    let delay_prob: f64 = a.num("delay-prob", 0.0)?;
    let delay_max: u64 = a.num("delay-max", 0)?;
    let crash: usize = a.num("crash", 10)?;
    let jam_center = match a.get("jam") {
        Some(_) => a.point("jam")?,
        None => Point::new(0.5 * area, 0.0),
    };
    let jam_radius: f64 = a.num("jam-radius", 80.0)?;
    let jam_secs: f64 = a.num("jam-secs", 60.0)?;
    let json = a.flag("json");

    for (key, p) in [
        ("burst-enter", burst_enter),
        ("unicast-loss", unicast_loss),
        ("duplicate", duplicate),
        ("delay-prob", delay_prob),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("option --{key}: expected a probability in [0, 1], got {p}").into());
        }
    }
    if unicast_loss >= 1.0 {
        return Err("option --unicast-loss: 1.0 would sever every link".into());
    }
    if burst_enter > 0.0 && burst_len < 1.0 {
        return Err(
            format!("option --burst-len: the mean burst is at least 1 attempt, got {burst_len}")
                .into(),
        );
    }

    let channel = FaultConfig {
        burst: if burst_enter > 0.0 {
            BurstLoss::bursty(burst_enter, burst_len)
        } else {
            BurstLoss::off()
        },
        unicast_loss,
        duplicate,
        delay_prob,
        delay_max: SimDuration::from_millis(delay_max),
    };
    let corrupt_near = Point::new(0.4 * area, 0.3 * area);
    let loaded = match a.get("plan") {
        Some(path) => Some(load_plan(path)?),
        None => None,
    };
    let make_plan: Box<dyn Fn() -> FaultPlan + Sync> = match loaded {
        Some(plan) => Box::new(move || plan.clone()),
        None => Box::new(move || {
            FaultPlan::new()
                .at(SimDuration::ZERO, FaultKind::SetChannel { config: channel.clone() })
                .at(SimDuration::from_secs(5), FaultKind::StartJam {
                    label: 0,
                    center: jam_center,
                    radius: jam_radius,
                })
                .at(SimDuration::from_secs(10), FaultKind::CrashRandom { count: crash })
                .at(SimDuration::from_secs(20), FaultKind::CorruptState {
                    near: corrupt_near,
                    corruption: Corruption::Il { offset: gs3_geometry::Vec2::new(150.0, 90.0) },
                })
                .at(SimDuration::from_secs_f64(5.0 + jam_secs), FaultKind::StopJam { label: 0 })
        }),
    };

    let runs: usize = a.num("runs", 1)?;
    if runs > 1 {
        return chaos_multi(a, runs, json, &*make_plan);
    }

    let timeline = a.get("timeline").map(str::to_string);
    let mut net = build(a)?;
    if timeline.is_some() {
        // Recording is pure observation: the digest printed below is
        // bit-identical with or without the timeline.
        net.engine_mut().set_recording(RecorderMode::Full { capacity: 200_000 });
    }
    configure(&mut net)?;
    if !json {
        println!("configured at {}; unleashing chaos", net.now());
    }
    let plan = make_plan();
    let rep = net.run_chaos(&plan);

    if let Some(path) = &timeline {
        let tel = net.engine().telemetry();
        let doc = export_chrome_trace(
            tel.recorder.events(),
            tel.episodes.episodes(),
            net.now().as_micros(),
        );
        std::fs::write(path, doc)?;
        if !json {
            println!("timeline:        wrote {path} ({} events in ring)", tel.recorder.len());
        }
    }

    if json {
        println!("{}", rep.to_json());
        return Ok(());
    }
    println!();
    println!("{:>12}  {:>10}  {:>7}  fault", "t(s)", "heal(s)", "killed");
    for o in &rep.outcomes {
        let heal = match o.heal_latency {
            Some(l) => format!("{:.1}", l.as_secs_f64()),
            None => "never".to_string(),
        };
        println!(
            "{:>12.1}  {:>10}  {:>7}  {} — {}",
            o.injected_at.as_secs_f64(),
            heal,
            o.killed,
            o.kind,
            o.detail
        );
    }
    println!();
    println!(
        "channel drops:   {} burst, {} jam, {} unicast",
        rep.dropped_by_burst, rep.dropped_by_jam, rep.dropped_unicast
    );
    println!("duplicated:      {}", rep.duplicated);
    println!("delayed:         {}", rep.delayed);
    if a.flag("reliable") {
        let r = &rep.reliability;
        println!(
            "reliability:     {} retransmits, {} dedup hits, {} give-ups",
            r.retransmits, r.dedup_hits, r.give_ups
        );
        println!(
            "detector/quar:   {} false suspicions, {} quarantine entries, {} exits, {} drops",
            r.false_suspicions, r.quarantine_entries, r.quarantine_exits, r.quarantine_drops
        );
    }
    if a.flag("workload") {
        let d = &rep.data;
        println!(
            "data plane:      {}/{} reports delivered, {} queue-dropped, {} misrouted",
            d.reports_delivered, d.reports_produced, d.reports_dropped, d.reports_misrouted
        );
    }
    if a.flag("contended") {
        let m = &rep.mac;
        println!(
            "medium:          {} collisions, {} defers, {} backoff exhausted",
            m.collisions, m.defers, m.backoff_exhausted
        );
        println!(
            "congestion:      {} stretches, {} relaxes, {} suppressed broadcasts",
            m.congestion_stretches, m.congestion_relaxes, m.suppressed_broadcasts
        );
    }
    println!("polls:           {} (max {} violations)", rep.polls, rep.max_violations);
    println!("digest:          {:016x}", rep.digest);
    println!(
        "verdict:         {}",
        if rep.healed() {
            "HEALED — zero invariant violations"
        } else {
            "NOT HEALED within the settle window"
        }
    );
    report(&net, a);
    if !rep.healed() {
        return Err("structure did not heal".into());
    }
    Ok(())
}

/// `gs3 chaos --runs N`: the same fault plan against `N` consecutive
/// seeds, fanned out over `--threads`/`-j` worker threads. Results print
/// in seed order, so the output is identical at any thread count.
fn chaos_multi(
    a: &Args,
    runs: usize,
    json: bool,
    make_plan: &(dyn Fn() -> FaultPlan + Sync),
) -> CliResult {
    let base_seed: u64 = a.num("seed", 2002)?;
    let seeds: Vec<u64> = (0..runs as u64).map(|i| base_seed.wrapping_add(i)).collect();
    let results = run_grid(&seeds, a.threads()?, |&seed| -> Result<_, String> {
        let mut net = build_seeded(a, seed).map_err(|e| e.to_string())?;
        configure(&mut net).map_err(|e| e.to_string())?;
        Ok(net.run_chaos(&make_plan()))
    });

    if json {
        let mut docs = Vec::with_capacity(results.len());
        for (seed, res) in seeds.iter().zip(&results) {
            match res {
                Ok(rep) => docs.push(format!("{{\"seed\":{seed},\"report\":{}}}", rep.to_json())),
                Err(e) => docs.push(format!("{{\"seed\":{seed},\"error\":{e:?}}}")),
            }
        }
        println!("{{\"runs\":[{}]}}", docs.join(","));
    } else {
        println!("{:>8}  {:>16}  verdict", "seed", "digest");
        for (seed, res) in seeds.iter().zip(&results) {
            match res {
                Ok(rep) => println!(
                    "{seed:>8}  {:016x}  {}",
                    rep.digest,
                    if rep.healed() { "HEALED" } else { "NOT HEALED" }
                ),
                Err(e) => println!("{seed:>8}  {:>16}  error: {e}", "-"),
            }
        }
    }
    let failed = results
        .iter()
        .filter(|r| !matches!(r, Ok(rep) if rep.healed()))
        .count();
    if failed > 0 {
        return Err(format!("{failed}/{runs} chaos runs did not heal").into());
    }
    Ok(())
}

/// Load a [`FaultPlan`] from `path`. Accepts either a standalone plan
/// document or a gs3-mc counterexample file, whose `plan` field is a
/// verbatim plan document — so `gs3 chaos --plan` replays a checker
/// finding directly from the artifact the checker wrote.
fn load_plan(path: &str) -> Result<FaultPlan, Box<dyn std::error::Error>> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("--plan {path}: {e}"))?;
    match FaultPlan::from_json(&doc) {
        Ok(plan) => Ok(plan),
        Err(plan_err) => match extract_embedded_plan(&doc) {
            Some(embedded) => FaultPlan::from_json(embedded)
                .map_err(|e| format!("--plan {path}: embedded plan: {e}").into()),
            None => Err(format!("--plan {path}: {plan_err}").into()),
        },
    }
}

/// Slice the balanced JSON object following `"plan":` out of a
/// counterexample document. String-aware, so braces inside quoted text
/// don't unbalance the scan.
fn extract_embedded_plan(doc: &str) -> Option<&str> {
    let start = doc.find("\"plan\":")? + "\"plan\":".len();
    let bytes = doc.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    let obj_start = i;
    let (mut depth, mut in_str, mut escaped) = (0usize, false, false);
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&doc[obj_start..=i]);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// `gs3 mc` — bounded model checking of the protocol core on pinned
/// small fields. Explores every schedule a bounded adversary can force
/// (per-attempt drop/duplicate/delay, node crashes), checks the safety
/// and convergence properties, and prints a deterministic report
/// document CI can gate on and diff byte-for-byte. Exits nonzero when
/// any property is violated; minimized counterexamples (and their
/// standalone replay plans) go to `--ce-dir`.
pub fn mc(a: &Args) -> CliResult {
    let strategy: McStrategy = a
        .get("strategy")
        .unwrap_or("bfs")
        .parse()
        .map_err(|e| format!("option --strategy: {e}"))?;
    let mut budgets = Budgets::default();
    budgets.max_states = a.num("max-states", budgets.max_states)?;
    budgets.max_depth = a.num("max-depth", budgets.max_depth)?;
    budgets.max_fates = a.num("max-fates", budgets.max_fates)?;
    budgets.max_crashes = a.num("max-crashes", budgets.max_crashes)?;
    budgets.max_path_faults = a.num("max-path-faults", budgets.max_path_faults)?;
    budgets.horizon =
        SimDuration::from_secs_f64(a.num("horizon", budgets.horizon.as_secs_f64())?);
    budgets.heal_window =
        SimDuration::from_secs_f64(a.num("heal-window", budgets.heal_window.as_secs_f64())?);

    let scenarios = match a.get("scenario").unwrap_or("all") {
        "all" => Scenario::all(),
        name => {
            let known: Vec<&str> = Scenario::all().iter().map(|s| s.name).collect();
            vec![Scenario::by_name(name).ok_or_else(|| {
                format!(
                    "option --scenario: unknown scenario {name:?} (expected one of {}, or all)",
                    known.join(", ")
                )
            })?]
        }
    };

    let json = a.flag("json");
    let mut reports = Vec::with_capacity(scenarios.len());
    for scenario in scenarios {
        if !json && !a.flag("quiet") {
            eprintln!("checking {} ({} nodes, {})...", scenario.name, scenario.nodes.len() + 1, strategy.name());
        }
        reports.push(ModelChecker { scenario, strategy, budgets }.run());
    }

    let mut doc = String::from("{\"version\":1,\"reports\":[");
    for (i, rep) in reports.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&rep.to_json());
    }
    doc.push_str("]}");

    if let Some(path) = a.get("out") {
        std::fs::write(path, &doc)?;
    }
    if let Some(dir) = a.get("ce-dir") {
        std::fs::create_dir_all(dir)?;
        for rep in &reports {
            for (i, ce) in rep.counterexamples.iter().enumerate() {
                let stem = format!("ce-{}-{}-{i}", rep.scenario, ce.property.name());
                std::fs::write(format!("{dir}/{stem}.json"), ce.to_json())?;
                std::fs::write(format!("{dir}/{stem}.plan.json"), ce.plan.to_json())?;
            }
        }
    }

    if json {
        println!("{doc}");
    } else {
        println!(
            "{:>10}  {:>8}  {:>8}  {:>9}  {:>10}  result",
            "scenario", "states", "deduped", "terminals", "coverage"
        );
        for rep in &reports {
            let violations: u64 = rep.properties.iter().map(|p| p.violations).sum();
            println!(
                "{:>10}  {:>8}  {:>8}  {:>9}  {:>10}  {}",
                rep.scenario,
                rep.states_explored,
                rep.states_deduped,
                rep.terminals,
                if rep.exhaustive { "exhaustive" } else { "partial" },
                if violations == 0 {
                    "VERIFIED".to_string()
                } else {
                    format!("{violations} VIOLATIONS")
                }
            );
        }
        println!();
        println!("{:>22}  {:>10}  {:>10}", "property", "checked", "violations");
        for p in gs3_mc::Property::all() {
            let (mut checked, mut violations) = (0u64, 0u64);
            for rep in &reports {
                for stat in &rep.properties {
                    if stat.property == *p {
                        checked += stat.checked;
                        violations += stat.violations;
                    }
                }
            }
            println!("{:>22}  {checked:>10}  {violations:>10}", p.name());
        }
        for rep in &reports {
            for ce in &rep.counterexamples {
                println!();
                println!(
                    "counterexample: {} / {} — {}",
                    rep.scenario,
                    ce.property.name(),
                    ce.detail
                );
                println!("  replay: gs3 chaos --plan <file>  (plan: {})", ce.plan.to_json());
            }
        }
    }

    let violating: Vec<&str> =
        reports.iter().filter(|r| r.has_violations()).map(|r| r.scenario.as_str()).collect();
    if !violating.is_empty() {
        return Err(format!("property violations in: {}", violating.join(", ")).into());
    }
    Ok(())
}

/// `gs3 trace` — configure a network, switch the flight recorder to full
/// ring capture, run for `--duration` simulated seconds, and export the
/// recorded event stream as JSONL (one event per line) or a Chrome-trace /
/// Perfetto timeline. Recording is pure observation, so the run is
/// bit-identical to an unrecorded one.
pub fn trace(a: &Args) -> CliResult {
    let duration: f64 = a.num("duration", 60.0)?;
    let capacity: usize = a.num("capacity", 200_000)?;
    let format = a.get("format").unwrap_or("jsonl");
    if !matches!(format, "jsonl" | "chrome") {
        return Err(format!("option --format: expected jsonl or chrome, got {format:?}").into());
    }

    let mut net = build(a)?;
    net.engine_mut().set_recording(RecorderMode::Full { capacity });
    configure(&mut net)?;
    net.run_for(SimDuration::from_secs_f64(duration));

    let tel = net.engine().telemetry();
    let doc = match format {
        "chrome" => export_chrome_trace(
            tel.recorder.events(),
            tel.episodes.episodes(),
            net.now().as_micros(),
        ),
        _ => export_jsonl(tel.recorder.events()),
    };
    match a.get("out") {
        Some(path) => {
            std::fs::write(path, doc)?;
            if !a.flag("quiet") {
                eprintln!(
                    "wrote {path}: {} events in ring ({} observed, {} evicted); metrics {}",
                    tel.recorder.len(),
                    tel.recorder.total(),
                    tel.recorder.dropped(),
                    tel.metrics.to_json()
                );
            }
        }
        None => print!("{doc}"),
    }
    Ok(())
}

/// Clones the parsed args with a default `--budget` injected (watch mode).
fn with_budget(a: &Args, budget: &str) -> Args {
    // Round-trip through the parser to keep a single construction path.
    let mut tokens = vec![a.command.clone().unwrap_or_default()];
    for key in ["nodes", "radius", "tolerance", "area", "seed", "loss", "noise", "traffic", "duration", "sample"] {
        if let Some(v) = a.get(key) {
            tokens.push(format!("--{key}"));
            tokens.push(v.to_string());
        }
    }
    for flag in ["map", "static", "mobile", "quiet", "reliable", "contended", "adaptive", "workload"] {
        if a.flag(flag) {
            tokens.push(format!("--{flag}"));
        }
    }
    tokens.push("--budget".into());
    tokens.push(budget.into());
    Args::parse(tokens).expect("re-serialized arguments always parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn run_small_network() {
        let a = parse("run --nodes 300 --area 160 --seed 4 --quiet");
        run(&a).unwrap();
    }

    #[test]
    fn run_static_mode() {
        let a = parse("run --nodes 300 --area 160 --seed 4 --static --quiet");
        run(&a).unwrap();
    }

    #[test]
    fn heal_requires_kill_disk() {
        let a = parse("heal --nodes 300 --area 160 --quiet");
        assert!(heal(&a).is_err());
    }

    #[test]
    fn with_budget_injects_default() {
        let a = parse("watch --nodes 300 --map");
        let b = with_budget(&a, "500");
        assert_eq!(b.get("budget"), Some("500"));
        assert!(b.flag("map"));
        assert_eq!(b.get("nodes"), Some("300"));
    }
}
