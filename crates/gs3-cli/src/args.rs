//! Hand-rolled argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag`
/// options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given twice.
    Duplicate(String),
    /// An option value failed to parse.
    BadValue {
        /// The offending key.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A required option was not supplied.
    Missing(String),
    /// A positional argument appeared after the subcommand.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "option --{k} given more than once"),
            ArgError::BadValue { key, value, expected } => {
                write!(f, "option --{key}: expected {expected}, got {value:?}")
            }
            ArgError::Missing(k) => write!(f, "required option --{k} is missing"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument {p:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Keys that are boolean flags (take no value).
const FLAG_KEYS: &[&str] = &[
    "map", "static", "mobile", "quiet", "help", "json", "reliable", "contended", "adaptive",
    "workload",
];

impl Args {
    /// Parses a token stream (`args[0]` must already be stripped).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on duplicates or stray positionals.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let key = key.to_string();
                if FLAG_KEYS.contains(&key.as_str()) {
                    if out.flags.contains(&key) {
                        return Err(ArgError::Duplicate(key));
                    }
                    out.flags.push(key);
                } else {
                    let value = it.next().unwrap_or_default();
                    if out.options.insert(key.clone(), value).is_some() {
                        return Err(ArgError::Duplicate(key));
                    }
                }
            } else if let Some(rest) = tok.strip_prefix("-j") {
                // `-j N` / `-jN`: alias for `--threads N`.
                let value = if rest.is_empty() {
                    it.next().unwrap_or_default()
                } else {
                    rest.to_string()
                };
                if out.options.insert("threads".to_string(), value).is_some() {
                    return Err(ArgError::Duplicate("threads".to_string()));
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                return Err(ArgError::UnexpectedPositional(tok));
            }
        }
        Ok(out)
    }

    /// True when `--key` was given as a flag.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Force-sets a boolean flag (for subcommands that imply one, e.g.
    /// `gs3 dataplane` implying `--workload`). Idempotent.
    pub fn set_flag(&mut self, key: &str) {
        if !self.flag(key) {
            self.flags.push(key.to_string());
        }
    }

    /// The raw value of `--key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// The worker-thread count: `--threads N` or `-j N` / `-jN`,
    /// defaulting to the machine's available parallelism, never zero.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when the value does not parse.
    pub fn threads(&self) -> Result<usize, ArgError> {
        Ok(self.num("threads", gs3_bench::runner::default_threads())?.max(1))
    }

    /// A parsed `x,y` point option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] on malformed coordinates,
    /// [`ArgError::Missing`] when absent.
    pub fn point(&self, key: &str) -> Result<gs3_geometry::Point, ArgError> {
        let raw = self.options.get(key).ok_or_else(|| ArgError::Missing(key.to_string()))?;
        let bad = || ArgError::BadValue {
            key: key.to_string(),
            value: raw.clone(),
            expected: "x,y",
        };
        let (x, y) = raw.split_once(',').ok_or_else(bad)?;
        Ok(gs3_geometry::Point::new(
            x.trim().parse().map_err(|_| bad())?,
            y.trim().parse().map_err(|_| bad())?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("run --nodes 500 --seed 7 --map").unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.num("nodes", 0usize).unwrap(), 500);
        assert_eq!(a.num("seed", 0u64).unwrap(), 7);
        assert!(a.flag("map"));
        assert!(!a.flag("static"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("run").unwrap();
        assert_eq!(a.num("nodes", 42usize).unwrap(), 42);
    }

    #[test]
    fn rejects_duplicates() {
        assert!(matches!(parse("run --seed 1 --seed 2"), Err(ArgError::Duplicate(_))));
        assert!(matches!(parse("run --map --map"), Err(ArgError::Duplicate(_))));
    }

    #[test]
    fn rejects_bad_numbers() {
        let a = parse("run --nodes banana").unwrap();
        assert!(matches!(a.num("nodes", 0usize), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn parses_points() {
        let a = parse("perturb --kill-disk 10,-20.5").unwrap();
        let p = a.point("kill-disk").unwrap();
        assert_eq!(p, gs3_geometry::Point::new(10.0, -20.5));
        assert!(matches!(a.point("missing"), Err(ArgError::Missing(_))));
        let b = parse("perturb --kill-disk nope").unwrap();
        assert!(matches!(b.point("kill-disk"), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn rejects_extra_positionals() {
        assert!(matches!(parse("run extra"), Err(ArgError::UnexpectedPositional(_))));
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", ArgError::Missing("x".into())).contains("--x"));
    }
}
