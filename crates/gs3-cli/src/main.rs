//! `gs3` — run, perturb, and inspect GS³ networks from the command line.
//!
//! ```text
//! gs3 run    [--nodes N] [--radius R] [--tolerance RT] [--area A] [--seed S]
//!            [--static | --mobile] [--loss P] [--noise SIGMA] [--traffic SECS]
//!            [--map] [--quiet]
//! gs3 heal   ... --kill-disk X,Y --kill-radius M        (run, perturb, re-heal)
//! gs3 watch  ... [--budget E] [--duration SECS] [--sample SECS]
//!                                    (energy drain / sliding, periodic status)
//! gs3 chaos  ... [--burst-enter P] [--burst-len L] [--unicast-loss P]
//!                [--crash N] [--jam X,Y] [--jam-radius M] [--jam-secs S]
//!                [--json] [--timeline FILE]
//!                             (scheduled fault plan + self-healing certificate)
//! gs3 mc     [--scenario NAME|all] [--strategy bfs|dfs] [--max-states N]
//!            [--max-fates N] [--max-crashes N] [--horizon SECS]
//!            [--heal-window SECS] [--json] [--out FILE] [--ce-dir DIR]
//!                    (bounded model checking of the protocol core against a
//!                     bounded adversary, with replayable counterexamples)
//! gs3 dataplane ... [--workload] [--duration SECS] [--json]
//!                  (convergecast workload: sink delivery ledger, latency
//!                   percentiles, queue/credit/provenance counters)
//! gs3 trace  ... [--duration SECS] [--capacity N] [--format jsonl|chrome]
//!                [--out FILE]      (flight-recorder event-stream export)
//! gs3 help
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(tokens) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try: gs3 help");
            std::process::exit(2);
        }
    };
    let code = match parsed.command.as_deref() {
        Some("run") => commands::run(&parsed),
        Some("heal") => commands::heal(&parsed),
        Some("watch") => commands::watch(&parsed),
        Some("chaos") => commands::chaos(&parsed),
        Some("mc") => commands::mc(&parsed),
        Some("dataplane") => commands::dataplane(&parsed),
        Some("trace") => commands::trace(&parsed),
        Some("help") | None => {
            commands::help();
            Ok(())
        }
        Some(other) => {
            eprintln!("error: unknown command {other:?}");
            commands::help();
            std::process::exit(2);
        }
    };
    if let Err(e) = code {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
