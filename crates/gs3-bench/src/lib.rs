//! # gs3-bench
//!
//! The experiment harness regenerating every data-bearing table and figure
//! of the GS³ paper, plus the derived-claim experiments indexed in
//! `DESIGN.md §4`. Each experiment is a binary:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig7` | Figure 7 — expected ratio of non-ideal cells |
//! | `fig8` | Figure 8 — expected diameter of `R_t`-gap perturbed regions |
//! | `table_a1` | Appendix 1 — complexity & convergence table (5 rows) |
//! | `thm11` | Theorem 11 — big-node move containment |
//! | `structure_quality` | Corollaries 1–2 — realized structure bounds |
//! | `baseline_compare` | Section 6 — GS³ vs LEACH vs hop clustering |
//! | `sliding` | §4.3.5.1 — coherent sliding under uniform depletion |
//! | `chaos_sweep` | robustness — healing latency vs burst loss × churn |
//! | `locality` | Theorems 8–13 — episode healing radius vs network size |
//! | `perf_suite` | engine performance — `BENCH_core.json` |
//!
//! Every experiment accepts `--threads N` / `-j N`: the (seed × parameter)
//! grid fans out over OS threads via [`runner::run_grid`] with cell-order
//! results, so output artifacts are byte-identical at any thread count.
//! Hand-rolled micro-benchmarks (no external harness) live under
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod locality;
pub mod runner;

use gs3_core::harness::NetworkBuilder;

/// Seeds used when an experiment averages over deployments.
pub const SEEDS: [u64; 5] = [11, 23, 37, 51, 73];

/// The standard mid-size scenario used by several experiments: `R = 80`,
/// `R_t = 18`, two full bands of cells, ≈1400 nodes.
#[must_use]
pub fn standard_builder(seed: u64) -> NetworkBuilder {
    NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(320.0)
        .expected_nodes(1400)
        .seed(seed)
}

/// Prints the standard experiment header.
pub fn banner(id: &str, artifact: &str) {
    println!("================================================================");
    println!("GS3 reproduction — experiment {id}");
    println!("paper artifact: {artifact}");
    println!("================================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_builder_is_valid() {
        let net = standard_builder(1).build().unwrap();
        assert!(net.engine().node_count() > 1000);
    }
}
