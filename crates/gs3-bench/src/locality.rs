//! The healing-locality sweep shared by the `locality` binary and the
//! determinism tests.
//!
//! The paper's locality theorems (8–13) say the repair of a perturbation
//! is contained: the set of nodes that change state, and the traffic the
//! repair costs, depend on the perturbation — not on the network size.
//! This sweep measures that empirically with the telemetry episode
//! reducer: the *same physical fault* (a crash disk of fixed radius at a
//! fixed offset from the big node) is injected into constant-density
//! deployments of growing size, and each episode's spatial healing radius
//! and message cost are read back. Size-independence shows up as flat
//! columns.
//!
//! Everything is seeded; [`sweep_json`] is byte-identical at any thread
//! count (cells run via [`run_grid`](crate::runner::run_grid)).

use gs3_core::chaos::{FaultKind, FaultPlan};
use gs3_core::harness::NetworkBuilder;
use gs3_geometry::Point;
use gs3_sim::SimDuration;

use crate::runner::run_grid;

/// Expected node counts on the constant-density size axis.
pub const SIZES: [usize; 4] = [200, 400, 800, 1600];

/// Seeds averaged per size.
pub const SEEDS: [u64; 3] = [11, 23, 37];

/// Cell geometry: `R = 40` as in the chaos-sweep scenario, but with the
/// tolerance widened to `R_t = 18`: the locality theorems assume the
/// density invariant (a candidate node within `R_t` of every ideal
/// location), and at this deployment density an `R_t` of 14 m leaves a
/// few-percent chance of a genuine gap per cell — a gapped deployment
/// cannot re-bridge a crash-severed head island no matter how long it
/// runs, which measures the *deployment*, not the protocol.
const R: f64 = 40.0;
const R_T: f64 = 18.0;

/// Reference deployment: 400 nodes on a 200 m disk; other sizes scale the
/// disk radius as `200·sqrt(n/400)` so density stays constant.
#[must_use]
pub fn area_for(nodes: usize) -> f64 {
    200.0 * (nodes as f64 / 400.0).sqrt()
}

/// The fixed physical perturbation: a crash disk of radius 45 m centered
/// 90 m from the big node — identical at every network size, so any
/// growth in the measured healing radius is a locality violation.
pub const CRASH_CENTER: Point = Point { x: 90.0, y: 0.0 };
/// Crash-disk radius in meters.
pub const CRASH_RADIUS: f64 = 45.0;

/// One (size, seed) cell's measurements, read from the episode reducer.
#[derive(Debug, Clone)]
pub struct LocalityPoint {
    /// Expected node count of the deployment.
    pub nodes: usize,
    /// Deployment disk radius (meters).
    pub area: f64,
    /// Deployment seed.
    pub seed: u64,
    /// Nodes the crash disk killed.
    pub killed: usize,
    /// The episode's spatial healing radius: max distance from the crash
    /// center at which episode-attributed traffic was sent (meters).
    pub radius_m: f64,
    /// Messages attributed to the episode (its healing cost).
    pub messages: u64,
    /// Deliveries attributed to the episode.
    pub deliveries: u64,
    /// Nodes tainted by the episode's causal closure.
    pub tainted: u64,
    /// Healing latency in seconds (`None` when the settle window passed
    /// without a clean poll).
    pub heal_s: Option<f64>,
}

/// Runs one cell: deploy at constant density, converge, crash the fixed
/// disk, and reduce the episode.
#[must_use]
pub fn run_cell(nodes: usize, seed: u64) -> LocalityPoint {
    let area = area_for(nodes);
    let mut net = NetworkBuilder::new()
        .ideal_radius(R)
        .radius_tolerance(R_T)
        .area_radius(area)
        .expected_nodes(nodes)
        .seed(seed)
        .build()
        .expect("valid parameters");
    net.run_to_fixpoint().expect("initial configuration converges");

    let plan = FaultPlan::new().at(
        SimDuration::from_secs(1),
        FaultKind::CrashDisk { center: CRASH_CENTER, radius: CRASH_RADIUS },
    );
    let rep = net.run_chaos(&plan);
    let outcome = &rep.outcomes[0];
    let ep = outcome
        .episode
        .and_then(|id| rep.episodes.iter().find(|e| e.id == id))
        .expect("a crash disk always opens an episode");
    LocalityPoint {
        nodes,
        area,
        seed,
        killed: outcome.killed,
        radius_m: ep.radius_m,
        messages: ep.messages,
        deliveries: ep.deliveries,
        tainted: ep.tainted,
        heal_s: outcome.heal_latency.map(|l| l.as_secs_f64()),
    }
}

/// Runs an arbitrary (size × seed) grid over `threads` workers. Results
/// are in grid order regardless of the thread count.
#[must_use]
pub fn sweep_grid(sizes: &[usize], seeds: &[u64], threads: usize) -> Vec<LocalityPoint> {
    let mut cells: Vec<(usize, u64)> = Vec::new();
    for &n in sizes {
        for &seed in seeds {
            cells.push((n, seed));
        }
    }
    run_grid(&cells, threads, |&(n, seed)| run_cell(n, seed))
}

/// Runs the full [`SIZES`] × [`SEEDS`] grid over `threads` workers.
#[must_use]
pub fn sweep(threads: usize) -> Vec<LocalityPoint> {
    sweep_grid(&SIZES, &SEEDS, threads)
}

/// An arbitrary grid as a machine-readable JSON document —
/// byte-identical at any `threads` (the determinism tests assert this).
#[must_use]
pub fn sweep_grid_json(sizes: &[usize], seeds: &[u64], threads: usize) -> String {
    let points = sweep_grid(sizes, seeds, threads);
    let mut out = String::from("{\"experiment\":\"locality\",\"crash_radius_m\":45.0,\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"nodes\":{},\"area_m\":{:.1},\"seed\":{},\"killed\":{},\"radius_m\":{:.1},\"messages\":{},\"deliveries\":{},\"tainted\":{},\"heal_s\":{}}}",
            p.nodes,
            p.area,
            p.seed,
            p.killed,
            p.radius_m,
            p.messages,
            p.deliveries,
            p.tainted,
            p.heal_s.map_or("null".to_string(), |h| format!("{h:.3}")),
        ));
    }
    out.push_str("]}");
    out
}

/// The full sweep as a machine-readable JSON document.
#[must_use]
pub fn sweep_json(threads: usize) -> String {
    sweep_grid_json(&SIZES, &SEEDS, threads)
}
