//! **LOCALITY** — episode healing radius vs network size (Theorems 8–13).
//!
//! Injects the *same physical crash disk* into constant-density
//! deployments of growing size and reads each run's telemetry episode:
//! spatial healing radius, message cost, causal taint count, healing
//! latency. The paper's locality theorems predict every column is flat in
//! the network size; a radius or cost that grows with `n` would falsify
//! them.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin locality -- [-j N] [--json]
//! ```
//!
//! `--json` emits the machine-readable document ([`locality::sweep_json`],
//! byte-identical at any `-j`).

use gs3_analysis::report::{num, Table};
use gs3_bench::banner;
use gs3_bench::locality::{self, CRASH_RADIUS, SEEDS, SIZES};
use gs3_bench::runner::threads_from_args;

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let threads = threads_from_args();
    if json {
        println!("{}", locality::sweep_json(threads));
        return;
    }

    banner("LOCALITY", "Theorems 8-13 — healing is contained, independent of |N|");
    let points = locality::sweep(threads);
    let mut t = Table::new([
        "nodes",
        "area (m)",
        "killed",
        "heal radius (m)",
        "messages",
        "tainted",
        "heal (s)",
    ]);
    for &n in &SIZES {
        let of_size: Vec<_> = points.iter().filter(|p| p.nodes == n).collect();
        let mean = |f: &dyn Fn(&locality::LocalityPoint) -> f64| {
            of_size.iter().map(|p| f(p)).sum::<f64>() / of_size.len() as f64
        };
        t.row([
            format!("{n}"),
            num(locality::area_for(n)),
            num(mean(&|p| p.killed as f64)),
            num(mean(&|p| p.radius_m)),
            num(mean(&|p| p.messages as f64)),
            num(mean(&|p| p.tainted as f64)),
            num(mean(&|p| p.heal_s.unwrap_or(f64::NAN))),
        ]);
    }
    println!("{}", t.render());
    println!(
        "every row kills the same disk (r={CRASH_RADIUS} m, {} seeds each);\n\
         the paper's locality theorems predict the healing radius, message\n\
         cost, and taint count stay flat as the deployment doubles — only\n\
         the node count changes, never the repair.",
        SEEDS.len()
    );
}
