//! **COR1-2** — Corollaries 1 and 2 of the paper: the realized structure
//! respects the proved bounds.
//!
//! * Corollary 1: distance between neighboring heads ∈
//!   `[√3R − 2R_t, √3R + 2R_t]`.
//! * Corollary 2 / I₂.₄: cell radius ≤ `R + 2R_t/√3` for inner cells;
//!   heads within `R_t` of their ILs.
//!
//! Measured across several seeds and two densities.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin structure_quality
//! ```

use gs3_analysis::metrics::measure;
use gs3_analysis::report::{num, Table};
use gs3_analysis::stats::quantile;
use gs3_bench::{banner, SEEDS};
use gs3_core::harness::NetworkBuilder;
use gs3_core::invariants::{check_all, Strictness};
use gs3_core::RoleView;
use gs3_geometry::SQRT_3;

fn main() {
    banner("COR1-2", "Corollaries 1–2 — realized structure vs proved bounds");
    let r = 80.0;
    let r_t = 18.0;
    let spacing = SQRT_3 * r;
    println!(
        "bounds: head spacing ∈ [{:.1}, {:.1}] m; inner cell radius ≤ {:.1} m; head-to-IL ≤ {:.1} m\n",
        spacing - 2.0 * r_t,
        spacing + 2.0 * r_t,
        r + 2.0 * r_t / SQRT_3,
        r_t
    );

    let mut t = Table::new([
        "nodes",
        "seed",
        "heads",
        "spacing min",
        "spacing max",
        "cell radius p95",
        "inner radius max",
        "IL dev max",
        "violations",
    ]);
    for &n in &[900usize, 1800] {
        for seed in SEEDS {
            let mut net = NetworkBuilder::new()
                .ideal_radius(r)
                .radius_tolerance(r_t)
                .area_radius(330.0)
                .expected_nodes(n)
                .seed(seed)
                .build()
                .expect("valid parameters");
            let _ = net.run_to_fixpoint();
            let snap = net.snapshot();
            let m = measure(&snap);

            // Inner-cell radii only (the Corollary-2 bound is for inner
            // cells; boundary cells get the relaxed bound).
            let inner = gs3_core::invariants::inner_heads(&snap);
            let mut inner_radii = Vec::new();
            for a in snap.associates() {
                if let RoleView::Associate { head, surrogate: false, .. } = &a.role {
                    if inner.contains(head) {
                        if let Some(h) = snap.node(*head) {
                            inner_radii.push(a.pos.distance(h.pos));
                        }
                    }
                }
            }
            let inner_max = inner_radii.iter().copied().fold(0.0, f64::max);
            let all_radii: Vec<f64> = snap
                .associates()
                .filter_map(|a| match &a.role {
                    RoleView::Associate { head, surrogate: false, .. } => {
                        snap.node(*head).map(|h| a.pos.distance(h.pos))
                    }
                    _ => None,
                })
                .collect();

            let violations = check_all(&snap, Strictness::Dynamic);
            t.row([
                format!("{n}"),
                format!("{seed}"),
                format!("{}", m.heads),
                num(m.neighbor_head_distance.min),
                num(m.neighbor_head_distance.max),
                num(quantile(&all_radii, 0.95)),
                num(inner_max),
                num(m.head_il_deviation.max),
                format!("{}", violations.len()),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "expected shape: every row respects the bounds (violations = 0);\n\
         tighter R_t/denser fields give tighter spacing spread."
    );
}
