//! **TBL-A1** — Appendix 1 of the paper: the complexity and convergence
//! properties of GS³, one measured experiment per row.
//!
//! | row | paper claim | experiment |
//! |---|---|---|
//! | 1 | information per node `θ(log n)` | max/mean ids stored vs network size (flat in n) |
//! | 2 | lifetime lengthened `Ω(n_c)` | maintained vs unmaintained lifetime vs cell population |
//! | 3 | convergence under perturbation `O(D_p)` | heal time vs killed-disk diameter (flat in n, growing in `D_p`) |
//! | 4 | static convergence `θ(D_b)` | diffusion time vs network radius |
//! | 5 | dynamic convergence from arbitrary state `O(D_d)` | stabilization time vs diameter after mass corruption |
//!
//! ```text
//! cargo run --release -p gs3-bench --bin table_a1
//! ```

use gs3_analysis::convergence::{max_distance_from_big, measure_configuration};
use gs3_analysis::lifetime::run_lifetime;
use gs3_analysis::locality::measure_impact;
use gs3_analysis::report::{num, Table};
use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::{Mode, RoleView};
use gs3_geometry::Point;
use gs3_sim::radio::EnergyModel;
use gs3_sim::SimDuration;

fn main() {
    banner("TBL-A1", "Appendix 1 — complexity and convergence properties of GS3");
    let threads = threads_from_args();
    row1_information_per_node(threads);
    row2_lifetime_factor(threads);
    row3_perturbation_convergence(threads);
    row4_static_convergence(threads);
    row5_arbitrary_state_convergence(threads);
}

/// Row 1: per-node information is θ(log n) — a *constant number of
/// identities* regardless of network size (each id being log n bits).
fn row1_information_per_node(threads: usize) {
    println!("row 1 — information maintained at each node: θ(log n)\n");
    let mut t = Table::new(["n (nodes)", "max ids @ associate", "max ids @ head", "mean ids"]);
    let sizes = [400usize, 800, 1600, 3200];
    let rows = run_grid(&sizes, threads, |&n| {
        let area = (n as f64).sqrt() * 8.0;
        let mut net = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(area)
            .expected_nodes(n)
            .seed(42)
            .build()
            .expect("valid parameters");
        let _ = net.run_to_fixpoint();
        let snap = net.snapshot();
        let mut assoc_max = 0usize;
        let mut head_max = 0usize;
        let mut total = 0usize;
        let mut count = 0usize;
        for v in &snap.nodes {
            if !v.alive {
                continue;
            }
            match v.role {
                RoleView::Associate { .. } => assoc_max = assoc_max.max(v.ids_stored),
                RoleView::Head { .. } => head_max = head_max.max(v.ids_stored),
                _ => {}
            }
            total += v.ids_stored;
            count += 1;
        }
        [
            format!("{}", snap.nodes.len()),
            format!("{assoc_max}"),
            format!("{head_max}"),
            num(total as f64 / count.max(1) as f64),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "expected shape: id counts do not grow with n — an associate stores its\n\
         head (+ the advertised candidate list), a head its ≤6 neighbors,\n\
         parent, and cell members (bounded by density, not by n).\n"
    );
}

/// Row 2: intra-/inter-cell maintenance lengthens the structure lifetime
/// by a factor Ω(n_c).
fn row2_lifetime_factor(threads: usize) {
    println!("row 2 — lifetime of the head structure: lengthened Ω(n_c) by maintenance\n");
    let mut t = Table::new([
        "n_c (per cell)",
        "first head death (s)",
        "maintained life (s)",
        "factor",
        "head turnovers",
        "cell shifts",
    ]);
    let populations = [12usize, 25, 50];
    let rows = run_grid(&populations, threads, |&target_nc| {
        // Fix geometry; scale density to hit the target cell population.
        let cells = 7.0; // one band
        let builder = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(20.0)
            .area_radius(150.0)
            .expected_nodes((target_nc as f64 * cells) as usize)
            .seed(7)
            // The paper's premise: traffic flows from children to parents
            // along the head graph with in-network aggregation — heads
            // relay everything, so their dissipation dominates.
            .traffic(SimDuration::from_secs(1));
        let energy =
            EnergyModel { tx_base: 0.02, tx_dist2: 1.2 / (160.0 * 160.0), rx: 0.002, idle: 0.0005 };
        let res = run_lifetime(
            builder,
            energy,
            400.0,
            SimDuration::from_secs(12_000),
            SimDuration::from_secs(15),
            0.5,
        );
        [
            num(res.mean_cell_population),
            res.first_head_death.map_or("-".into(), |x| num(x.as_secs_f64())),
            res.maintained_lifetime.map_or(">6000".into(), |x| num(x.as_secs_f64())),
            res.lengthening_factor.map_or("-".into(), num),
            format!("{}", res.head_turnovers),
            format!("{}", res.cell_shifts),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "expected shape: maintenance lengthens the structure's life by large\n\
         factors (order 5–20×) via head shift and cell shift. The paper's\n\
         Ω(n_c) growth assumes members dissipate ≈nothing while not serving;\n\
         with a realistic workload every member also pays its own reporting\n\
         cost, capping the factor near the head/member dissipation-rate\n\
         ratio — factor ≈ min(c·n_c, head_rate/member_rate).\n"
    );
}

/// Row 3: convergence under a perturbation is O(D_p) — proportional to the
/// perturbed diameter, independent of total network size.
fn row3_perturbation_convergence(threads: usize) {
    println!("row 3 — convergence under perturbation: O(D_p), independent of n\n");
    let mut t = Table::new(["n", "D_p (kill diam, m)", "killed", "heal time (s)", "impact radius (m)"]);
    let mut cells: Vec<(usize, f64, f64)> = Vec::new();
    for &(n, area) in &[(1500usize, 330.0f64), (3000, 470.0)] {
        for &dp in &[120.0f64, 240.0, 360.0] {
            cells.push((n, area, dp));
        }
    }
    let rows = run_grid(&cells, threads, |&(n, area, dp)| {
        let mut net = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(area)
            .expected_nodes(n)
            .seed(5)
            .build()
            .expect("valid parameters");
        let _ = net.run_to_fixpoint();
        // Center the kill on an actual head so every D_p kills at
        // least one cell nucleus.
        let nominal = Point::new(area / 2.5, 0.0);
        let center = net
            .snapshot()
            .heads()
            .map(|h| h.pos)
            .min_by(|a, b| nominal.distance(*a).total_cmp(&nominal.distance(*b)))
            .unwrap_or(nominal);
        let mut killed = 0usize;
        let report = measure_impact(
            &mut net,
            center,
            SimDuration::from_secs(1),
            SimDuration::from_secs(400),
            |net| {
                killed = net.kill_disk(center, dp / 2.0).len();
            },
        );
        [
            format!("{n}"),
            num(dp),
            format!("{killed}"),
            report.heal_time.map_or("-".into(), |x| num(x.as_secs_f64())),
            num(report.impact_radius),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "expected shape: heal time and impact radius grow with D_p but do not\n\
         grow when n doubles — the paper's local-healing claim.\n"
    );
}

/// Row 4: static-network convergence is θ(D_b).
fn row4_static_convergence(threads: usize) {
    println!("row 4 — convergence in static networks: θ(D_b)\n");
    let mut t = Table::new(["area radius (m)", "D_b (m)", "n", "diffusion time (s)", "messages"]);
    let areas = [160.0f64, 240.0, 320.0, 400.0];
    let rows = run_grid(&areas, threads, |&area| {
        let n = (area * area * 0.014) as usize;
        let builder = NetworkBuilder::new()
            .mode(Mode::Static)
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(area)
            .expected_nodes(n)
            .seed(3);
        let res = measure_configuration(builder, SimDuration::from_secs(900));
        [
            num(area),
            num(res.d_b),
            format!("{}", res.nodes),
            num(res.time.as_secs_f64()),
            format!("{}", res.messages),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "expected shape: diffusion time grows linearly with D_b (one-way\n\
         diffusing computation, band after band).\n"
    );
}

/// Row 5: from an arbitrary (mass-corrupted) state, dynamic networks
/// stabilize in O(D_d).
fn row5_arbitrary_state_convergence(threads: usize) {
    println!("row 5 — convergence from an arbitrary state: O(D_d)\n");
    let mut t = Table::new([
        "area radius (m)",
        "D_d (m)",
        "heads corrupted",
        "last repair (s)",
        "violations left",
    ]);
    let areas = [200.0f64, 300.0];
    let rows = run_grid(&areas, threads, |&area| {
        let n = (area * area * 0.014) as usize;
        let mut net = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(area)
            .expected_nodes(n)
            .seed(9)
            .build()
            .expect("valid parameters");
        let _ = net.run_to_fixpoint();
        let heads: Vec<_> = net.snapshot().heads().map(|h| h.id).collect();
        let report = measure_impact(
            &mut net,
            Point::ORIGIN,
            SimDuration::from_secs(2),
            SimDuration::from_secs(2000),
            |net| {
                // Corrupt the hop counts (tree state) of every other head
                // and the stored IL of a third: an adversarial global
                // state that sanity checking + inter-cell maintenance
                // must undo.
                for (i, id) in heads.iter().enumerate() {
                    if i % 2 == 0 {
                        net.corrupt_head_hops(*id, 7 + (i as u32 * 13) % 40);
                    }
                    if i % 3 == 0 {
                        net.corrupt_head_il(*id, gs3_geometry::Vec2::new(90.0, 50.0));
                    }
                }
            },
        );
        let d_d = 2.0 * max_distance_from_big(&net);
        let violations =
            gs3_core::invariants::check_all(&net.snapshot(), gs3_core::invariants::Strictness::Dynamic);
        [
            num(area),
            num(d_d),
            format!("{}", heads.len()),
            report.heal_time.map_or("-".into(), |x| num(x.as_secs_f64())),
            format!("{}", violations.len()),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "expected shape: the last repair lands within a few sanity-check\n\
         periods, growing mildly with the diameter, and the invariants are\n\
         fully restored (0 violations) — self-stabilization from an\n\
         arbitrary state.\n"
    );
}
