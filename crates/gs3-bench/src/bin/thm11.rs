//! **THM11** — Theorem 11 of the paper: when the big node moves a
//! distance `d`, the impact on the head graph `G_h` is contained within a
//! disk of radius `√3·d/2` around the midpoint of the move.
//!
//! For each move distance we settle a mobile network, move the big node
//! (in small steps, as physical motion), re-settle, and measure the
//! furthest head whose head-graph *edge* (parent pointer) changed.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin thm11
//! ```

use gs3_analysis::locality::changed_head_edges;
use gs3_analysis::report::{num, Table};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::Mode;
use gs3_geometry::{head_spacing, Point};
use gs3_sim::SimDuration;

fn main() {
    banner("THM11", "Theorem 11 — big-node move impact contained in √3·d/2");

    let r = 80.0;
    let spacing = head_spacing(r);
    let mut t = Table::new([
        "d (move, m)",
        "bound √3·d/2 (m)",
        "edges changed",
        "furthest change (m)",
        "within bound + 1 cell?",
    ]);

    for &frac in &[0.5f64, 1.0, 1.5, 2.0] {
        let d = spacing * frac;
        let mut net = NetworkBuilder::new()
            .mode(Mode::Mobile)
            .ideal_radius(r)
            .radius_tolerance(18.0)
            .area_radius(400.0)
            .expected_nodes(2200)
            .seed(17)
            .build()
            .expect("valid parameters");
        let _ = net.run_to_fixpoint();
        let before = net.snapshot();
        let from = Point::ORIGIN;
        let to = Point::new(d, 0.0);

        // Physical motion: a sequence of small position updates.
        let steps = (frac * 4.0).ceil() as u32;
        for i in 1..=steps {
            net.move_big(Point::new(d * f64::from(i) / f64::from(steps), 0.0));
            net.run_for(SimDuration::from_secs(8));
        }
        let _ = net.run_to_fixpoint();
        let after = net.snapshot();

        let changed = changed_head_edges(&before, &after);
        let midpoint = from.midpoint(to);
        let worst = changed
            .iter()
            .filter_map(|id| after.node(*id).or_else(|| before.node(*id)))
            .map(|n| midpoint.distance(n.pos))
            .fold(0.0f64, f64::max);
        let bound = 3.0f64.sqrt() * d / 2.0;
        // One coordination radius of slack: the rim cell where the proxy
        // handoff lands flips one edge just outside the exact disk.
        let ok = worst <= bound + net.config().coord_radius();
        t.row([
            num(d),
            num(bound),
            format!("{}", changed.len()),
            num(worst),
            if ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected shape: for moves up to one lattice spacing the changed edges\n\
         sit inside the √3·d/2 disk (plus one coordination radius for the\n\
         proxy-handoff cell at the rim). Multi-cell moves chain several proxy\n\
         handoffs — each an anchor jump of up to √3·R — so the measured\n\
         impact radius grows with d but can exceed the analytic disk by\n\
         roughly one extra cell per handoff; see EXPERIMENTS.md for the\n\
         discussion of this deviation."
    );
}
