//! **FIG7** — Figure 7 of the paper: the expected ratio of non-ideal cells
//! as a function of `R_t / R`, for λ = 10, R = 100 (system radius 1000).
//!
//! Two parts:
//!
//! 1. The **analytic curve** at the paper's exact parameters
//!    (`α = e^(−R_t²·λ)`), which is what Figure 7 plots.
//! 2. An **empirical validation** at simulation scale: the paper's λ = 10
//!    implies ~10⁷ nodes, so we instead *match α* — for each target gap
//!    probability we pick a simulable density with the same `λ·R_t²` and
//!    measure the realized ratio of populated-but-headless interior lattice
//!    sites. The empirical ratio should track α.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin fig7
//! ```

use gs3_analysis::metrics::lattice_occupancy;
use gs3_analysis::poisson::{expected_nonideal_ratio, figure7_8_sweep};
use gs3_analysis::report::{num, Table};
use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_bench::{banner, SEEDS};
use gs3_core::harness::NetworkBuilder;
use gs3_sim::SimDuration;

fn main() {
    banner("FIG7", "Figure 7 — expected ratio of non-ideal cells (λ=10, R=100)");

    // Part 1: the paper's analytic curve.
    println!("analytic reproduction (the curve Figure 7 plots):\n");
    let mut t = Table::new(["R_t/R", "alpha = E[non-ideal ratio]"]);
    for p in figure7_8_sweep(0.005, 0.05, 10, 10.0, 100.0) {
        t.row([format!("{:.3}", p.rt_over_r), num(p.nonideal_ratio)]);
    }
    println!("{}", t.render());
    println!(
        "paper's observation: ratio ≈ 0 once R_t/R ≥ 0.02 → α(R_t=2, λ=10) = {:.2e}\n",
        expected_nonideal_ratio(2.0, 10.0)
    );

    // Part 2: empirical validation at matched α.
    println!("empirical validation (α matched via λ·R_t², interior lattice sites):\n");
    let r = 60.0;
    let r_t = 15.0;
    let area = 260.0;
    let mut t = Table::new(["target alpha", "lambda_sim", "nodes", "measured ratio", "sites"]);
    let alphas = [0.30f64, 0.20, 0.10, 0.05, 0.02];
    // One cell per (α, seed); each is an independent seeded deployment.
    let mut cells: Vec<(f64, u64)> = Vec::new();
    for &target_alpha in &alphas {
        for seed in SEEDS {
            cells.push((target_alpha, seed));
        }
    }
    let results = run_grid(&cells, threads_from_args(), |&(target_alpha, seed)| {
        let lambda = -target_alpha.ln() / (r_t * r_t);
        let mut net = NetworkBuilder::new()
            .ideal_radius(r)
            .radius_tolerance(r_t)
            .area_radius(area)
            .density(lambda)
            .seed(seed)
            .build()
            .expect("valid parameters");
        let nodes = net.engine().node_count();
        net.run_for(SimDuration::from_secs(240));
        let snap = net.snapshot();
        // Interior sites only: a site whose whole hexagon lies inside
        // the deployment disk.
        let mut sites = 0usize;
        let mut nonideal = 0usize;
        for site in lattice_occupancy(&snap) {
            if site.center.distance(gs3_geometry::Point::ORIGIN) > area - r {
                continue;
            }
            if site.nodes == 0 {
                continue;
            }
            sites += 1;
            if !site.has_head {
                nonideal += 1;
            }
        }
        (nodes, sites, nonideal)
    });
    for (ai, &target_alpha) in alphas.iter().enumerate() {
        let lambda = -target_alpha.ln() / (r_t * r_t);
        let runs = &results[ai * SEEDS.len()..(ai + 1) * SEEDS.len()];
        let total_nodes: usize = runs.iter().map(|r| r.0).sum();
        let total_sites: usize = runs.iter().map(|r| r.1).sum();
        let total_nonideal: usize = runs.iter().map(|r| r.2).sum();
        let measured = if total_sites == 0 {
            0.0
        } else {
            total_nonideal as f64 / total_sites as f64
        };
        t.row([
            num(target_alpha),
            format!("{lambda:.5}"),
            format!("{}", total_nodes / SEEDS.len()),
            num(measured),
            format!("{total_sites}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected shape: the measured ratio tracks the target α and collapses\n\
         toward 0 as density rises — the paper's Figure 7 shape."
    );
}
