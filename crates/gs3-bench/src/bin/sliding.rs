//! **SLIDE** — §4.3.5.1 claim 3: when the candidate sets of many cells die
//! at about the same rate, independent cell shift at each cell makes the
//! head level structure *slide as a whole* while maintaining consistent
//! relative locations among cells and heads.
//!
//! We drain a uniform-energy field and sample over time: the ⟨ICC, ICP⟩
//! spiral positions of the cells (they advance together), and the
//! neighbor-head spacing statistics (they stay near `√3·R` throughout the
//! slide — the "consistent relative location" part).
//!
//! ```text
//! cargo run --release -p gs3-bench --bin sliding
//! ```

use gs3_analysis::metrics::measure;
use gs3_analysis::report::{num, Table};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::RoleView;
use gs3_geometry::spiral::IccIcp;
use gs3_sim::radio::EnergyModel;
use gs3_sim::SimDuration;

fn main() {
    banner("SLIDE", "§4.3.5.1 — the structure slides coherently under uniform depletion");

    let r = 80.0;
    let mut net = NetworkBuilder::new()
        .ideal_radius(r)
        .radius_tolerance(20.0)
        .area_radius(150.0)
        .expected_nodes(340)
        .seed(55)
        .energy(EnergyModel::normalized(160.0), 500.0)
        .build()
        .expect("valid parameters");
    let _ = net.run_to_fixpoint();

    let mut t = Table::new([
        "t (s)",
        "heads",
        "alive",
        "cells shifted",
        "min ⟨ICC,ICP⟩",
        "max ⟨ICC,ICP⟩",
        "spacing mean (m)",
        "spacing sd (m)",
    ]);
    for _ in 0..24 {
        net.run_for(SimDuration::from_secs(60));
        let snap = net.snapshot();
        let m = measure(&snap);
        let spirals: Vec<IccIcp> = snap
            .heads()
            .filter_map(|h| match &h.role {
                RoleView::Head { icc_icp, .. } => Some(*icc_icp),
                _ => None,
            })
            .collect();
        if spirals.is_empty() {
            println!("structure exhausted at {}", net.now());
            break;
        }
        let shifted = spirals.iter().filter(|k| **k != IccIcp::ORIGIN).count();
        let min = spirals.iter().min().copied().unwrap_or(IccIcp::ORIGIN);
        let max = spirals.iter().max().copied().unwrap_or(IccIcp::ORIGIN);
        t.row([
            format!("{:.0}", net.now().as_secs_f64()),
            format!("{}", m.heads),
            format!("{}", net.engine().alive_count()),
            format!("{shifted}/{}", spirals.len()),
            min.to_string(),
            max.to_string(),
            num(m.neighbor_head_distance.mean),
            num(m.neighbor_head_distance.std_dev),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected shape: the shifted-cell count climbs toward all cells while\n\
         the ⟨ICC,ICP⟩ spread stays narrow (cells advance the same spiral in\n\
         near lockstep) and the head spacing statistics stay near √3·R = {:.1} m\n\
         — the structure slides as a whole instead of tearing.",
        gs3_geometry::SQRT_3 * r
    );
}
