//! **SEC6** — the comparative claims of the paper's Related Work section,
//! measured: GS³ vs a LEACH-style randomized clustering \[10\] vs
//! geography-unaware hop-based clustering \[3\].
//!
//! Two parts:
//!
//! 1. *Static structure quality* — head spacing, cluster radius,
//!    misassignment, load balance over one shared deployment (the claims
//!    of Section 6 quantified).
//! 2. *Workload lifetime* — all three schemes driven through the same
//!    convergecast traffic and energy model: GS³ runs the real
//!    event-level data plane (`gs3-dataplane`), the baselines run the
//!    round-driven simulator of `gs3_baselines::sim` with accounting
//!    deliberately tilted in their favor. Reports-per-joule, first
//!    energy death, and alive-floor lifetime under churn land in
//!    `BENCH_dataplane.json`, together with the `Ω(n_c)` sweep: the
//!    maintained/unmaintained lifetime ratio as cell population grows
//!    (§4.3.5.1 claim 3).
//!
//! ```text
//! cargo run --release -p gs3-bench --bin baseline_compare -- [--smoke] [-j N]
//!                                                            [--out BENCH_dataplane.json]
//! ```
//!
//! `--smoke` shrinks the workload comparison so CI can prove the binary
//! and the artifact shape on every push; the committed artifact comes
//! from a full run.

use gs3_analysis::lifetime::run_lifetime;
use gs3_analysis::metrics::measure;
use gs3_analysis::report::{num, Table};
use gs3_baselines::cluster::{quality, Clustering};
use gs3_baselines::hop::{cluster as hop_cluster, HopConfig};
use gs3_baselines::leach::{Leach, LeachConfig};
use gs3_baselines::sim::{run_baseline, Baseline, BaselineOutcome, BaselineSimConfig};
use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::{DataplaneConfig, RoleView};
use gs3_geometry::Point;
use gs3_sim::radio::EnergyModel;
use gs3_sim::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale knobs for the workload comparison; `--smoke` shrinks everything.
struct Scale {
    nodes: usize,
    area: f64,
    budget: f64,
    rounds: u64,
    sweep_nodes: &'static [usize],
    sweep_horizon_secs: u64,
}

/// Full scale: a ≥10k-node deployment under churn, per the lifetime
/// claims the artifact certifies.
const FULL: Scale = Scale {
    nodes: 10_000,
    area: 860.0,
    budget: 300.0,
    rounds: 240,
    sweep_nodes: &[140, 220, 320],
    sweep_horizon_secs: 4000,
};

const SMOKE: Scale = Scale {
    nodes: 600,
    area: 270.0,
    budget: 60.0,
    rounds: 30,
    sweep_nodes: &[140, 220],
    sweep_horizon_secs: 600,
};

/// Shared workload parameters: one 20 s round = four 5 s report periods,
/// five churn deaths per round, run ends when half the nodes are gone.
const ROUND_SECS: f64 = 20.0;
const REPORT_PERIOD_SECS: u64 = 5;
const CHURN_PER_ROUND: usize = 5;
const ALIVE_FLOOR: f64 = 0.5;
const RADIO_RANGE: f64 = 160.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_dataplane.json".to_string());
    let threads = threads_from_args();
    let scale = if smoke { &SMOKE } else { &FULL };

    banner("SEC6", "Related-work claims — GS3 vs LEACH vs hop-based clustering");
    static_quality_section();

    println!("\n--- workload lifetime: convergecast under churn ({} nodes) ---\n", scale.nodes);
    let json = dataplane_section(scale, smoke, threads);
    std::fs::write(&out_path, &json).expect("write BENCH_dataplane.json");
    println!("\nartifact → {out_path}");
}

/// Part 1: the original static structure-quality comparison.
fn static_quality_section() {
    // One shared deployment so the comparison is apples-to-apples: run
    // GS³ to fixpoint, then hand the same node positions to the baselines.
    let r = 80.0;
    let r_t = 18.0;
    let mut net = NetworkBuilder::new()
        .ideal_radius(r)
        .radius_tolerance(r_t)
        .area_radius(330.0)
        .expected_nodes(1800)
        .seed(29)
        .build()
        .expect("valid parameters");
    let _ = net.run_to_fixpoint();
    let snap = net.snapshot();
    let points: Vec<Point> = snap.nodes.iter().map(|n| n.pos).collect();
    let alive: Vec<bool> = snap.nodes.iter().map(|n| n.alive).collect();

    // GS³'s structure as a Clustering over the same points.
    let gs3_clustering = clustering_from_snapshot(&snap);
    let gs3_q = quality(&points, &gs3_clustering);
    let gs3_m = measure(&snap);

    // LEACH with P chosen to produce about as many clusters as GS³.
    let p = (gs3_q.clusters as f64 / points.len() as f64).clamp(0.005, 0.3);
    let mut leach = Leach::new(points.len(), LeachConfig { p });
    let mut rng = StdRng::seed_from_u64(99);
    let leach_round1 = leach.run_round(&points, &alive, &mut rng);
    let leach_q = quality(&points, &leach_round1);
    let leach_round2 = leach.run_round(&points, &alive, &mut rng);
    let churn = assignment_churn(&leach_round1, &leach_round2);

    // Hop clustering with 2-hop clusters over ~R-range links.
    let hop = hop_cluster(&points, &alive, HopConfig { radio_range: r * 0.75, max_hops: 2 });
    let hop_q = quality(&points, &hop);

    let mut t = Table::new([
        "metric",
        "GS3",
        "LEACH",
        "hop-based",
        "GS3 bound",
    ]);
    t.row([
        "clusters".into(),
        format!("{}", gs3_q.clusters),
        format!("{}", leach_q.clusters),
        format!("{}", hop_q.clusters),
        "placement-determined".into(),
    ]);
    t.row([
        "max cluster radius (m)".into(),
        num(gs3_q.max_radius),
        num(leach_q.max_radius),
        num(hop_q.max_radius),
        num(r + 2.0 * r_t / gs3_geometry::SQRT_3) + " (inner)",
    ]);
    t.row([
        "min head spacing (m)".into(),
        num(gs3_q.min_head_spacing),
        num(leach_q.min_head_spacing),
        num(hop_q.min_head_spacing),
        num(gs3_geometry::SQRT_3 * r - 2.0 * r_t),
    ]);
    t.row([
        "radius CV".into(),
        num(gs3_q.radius_cv),
        num(leach_q.radius_cv),
        num(hop_q.radius_cv),
        "low (uniform cells)".into(),
    ]);
    t.row([
        "size CV (load balance)".into(),
        num(gs3_q.size_cv),
        num(leach_q.size_cv),
        num(hop_q.size_cv),
        "low".into(),
    ]);
    t.row([
        "misassigned fraction".into(),
        num(gs3_q.misassigned_fraction),
        num(leach_q.misassigned_fraction),
        num(hop_q.misassigned_fraction),
        "~0 (F3: best head)".into(),
    ]);
    t.row([
        "healing scope (nodes)".into(),
        "O(cell) — see table_a1 row 3".into(),
        format!("{churn} (global re-election/round)"),
        "global re-run".into(),
        "local".into(),
    ]);
    println!("{}", t.render());

    println!(
        "GS³ realized coverage {:.1}%, non-ideal cells {}; LEACH re-assigns {} of {} nodes\n\
         every rotation round by design — the paper's \"not scalable\" healing claim.",
        gs3_m.coverage_ratio * 100.0,
        gs3_m.nonideal_cells,
        churn,
        points.len()
    );
    println!(
        "\nexpected shape: GS³'s max radius and min spacing respect the bounds;\n\
         LEACH shows near-zero min spacing and a heavy radius tail; hop-based\n\
         shows geographic interleaving (misassigned fraction ≫ 0)."
    );
}

/// One arm's lifetime measurements, scheme-agnostic.
struct ArmOutcome {
    arm: &'static str,
    reports_delivered: u64,
    energy_spent: f64,
    first_death_secs: Option<f64>,
    lifetime_secs: Option<f64>,
}

impl ArmOutcome {
    fn reports_per_joule(&self) -> f64 {
        if self.energy_spent > 0.0 {
            self.reports_delivered as f64 / self.energy_spent
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or("-1".to_string(), |s| format!("{s:.1}"));
        format!(
            "{{\"arm\":\"{}\",\"reports_delivered\":{},\"energy_spent\":{:.3},\
             \"reports_per_joule\":{:.4},\"first_death_s\":{},\"lifetime_s\":{}}}",
            self.arm,
            self.reports_delivered,
            self.energy_spent,
            self.reports_per_joule(),
            opt(self.first_death_secs),
            opt(self.lifetime_secs),
        )
    }
}

fn from_baseline(arm: &'static str, out: &BaselineOutcome) -> ArmOutcome {
    ArmOutcome {
        arm,
        reports_delivered: out.reports_delivered,
        energy_spent: out.energy_spent,
        first_death_secs: out.first_death_secs,
        lifetime_secs: out.lifetime_secs,
    }
}

/// The GS³ arm: the real discrete-event data plane under energy
/// accounting and the same per-round churn the baselines get.
fn run_gs3(scale: &Scale) -> ArmOutcome {
    let energy = EnergyModel::normalized(RADIO_RANGE);
    // An energy-conscious duty cycle: heartbeats matched to the round
    // scale instead of the default fast-detection tuning, so keep-alive
    // chatter doesn't swamp the data traffic either scheme carries. The
    // baselines' round model charges no keep-alive at all — another
    // handicap in their favor.
    let mut cfg = gs3_core::Gs3Config::new(80.0, 18.0)
        .expect("valid parameters")
        .with_mode(gs3_core::Mode::Dynamic);
    cfg.intra_heartbeat = SimDuration::from_secs(10);
    cfg.inter_heartbeat = SimDuration::from_secs(15);
    let mut net = NetworkBuilder::new()
        .config(cfg)
        .area_radius(scale.area)
        .expected_nodes(scale.nodes)
        .seed(29)
        .traffic(SimDuration::from_secs(REPORT_PERIOD_SECS))
        .dataplane(DataplaneConfig::on())
        // Configuration runs on an effectively bottomless battery: the
        // round model hands the baselines their construction for free, so
        // GS³'s one-off self-configuration spend is likewise excluded.
        // The measurement budget is installed below, once converged — from
        // then on every heartbeat, report, and repair drains it.
        .energy(energy, 1e12)
        .build()
        .expect("valid parameters");
    let _ = net.run_to_fixpoint();
    let ids: Vec<_> = net.engine().ids().collect();
    for id in ids {
        if net.engine().energy(id).map(f64::is_finite).unwrap_or(false) {
            let _ = net.engine_mut().set_energy(id, scale.budget);
        }
    }
    let n0 = net.engine().alive_count();
    // Deliveries during the (free-battery) configuration phase don't
    // count toward the measured workload.
    let r0 = net.sink_ledger().map_or(0, |l| l.reports);

    let mut first_death_secs = None;
    let mut lifetime_secs = None;
    let t0 = net.now();
    for _round in 0..scale.rounds {
        net.run_for(SimDuration::from_secs_f64(ROUND_SECS));
        let now_secs = net.now().saturating_since(t0).as_secs_f64();
        if first_death_secs.is_none() {
            // Energy depletion shows as a zeroed budget; churn victims
            // below keep whatever charge they had left.
            let depleted = net
                .engine()
                .ids()
                .any(|id| net.engine().energy(id).map(|e| e == 0.0).unwrap_or(false));
            if depleted {
                first_death_secs = Some(now_secs);
            }
        }
        net.kill_random(CHURN_PER_ROUND);
        let alive_frac = net.engine().alive_count() as f64 / n0.max(1) as f64;
        if alive_frac < ALIVE_FLOOR {
            lifetime_secs = Some(now_secs);
            break;
        }
    }

    // Total dissipation: budget minus what remains, over every
    // battery-powered node (the mains-powered big node reads ∞).
    let energy_spent: f64 = net
        .engine()
        .ids()
        .filter_map(|id| net.engine().energy(id).ok())
        .filter(|e| e.is_finite())
        .map(|e| (scale.budget - e).clamp(0.0, scale.budget))
        .sum();
    ArmOutcome {
        arm: "gs3",
        reports_delivered: net.sink_ledger().map_or(0, |l| l.reports).saturating_sub(r0),
        energy_spent,
        first_death_secs,
        lifetime_secs,
    }
}

/// Part 2: the three arms through the same workload, plus the `Ω(n_c)`
/// lifetime sweep; returns the `BENCH_dataplane.json` document.
fn dataplane_section(scale: &Scale, smoke: bool, threads: usize) -> String {
    // The baselines run over the same deployment geometry: take the node
    // positions GS³ deployed with (seed 29) and the big node's position
    // as the sink.
    let net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(scale.area)
        .expected_nodes(scale.nodes)
        .seed(29)
        .build()
        .expect("valid parameters");
    let snap = net.snapshot();
    let points: Vec<Point> = snap.nodes.iter().map(|n| n.pos).collect();
    let sink = points[snap.big.raw() as usize];
    drop(net);

    let cfg = BaselineSimConfig {
        round_secs: ROUND_SECS,
        reports_per_round: (ROUND_SECS as u32) / (REPORT_PERIOD_SECS as u32),
        budget: scale.budget,
        radio_range: RADIO_RANGE,
        sink,
        churn_deaths_per_round: CHURN_PER_ROUND,
        alive_floor: ALIVE_FLOOR,
    };
    let energy = EnergyModel::normalized(RADIO_RANGE);
    // LEACH's P targets one head per ~cell (n_c ≈ n / cells at this
    // density ≈ 20), matching GS³'s head fraction.
    let leach_p = 0.05;

    // Three arms, fanned out like any other grid; results stay in arm
    // order so the artifact is byte-identical at any -j.
    let outcomes = run_grid(&[0usize, 1, 2], threads, |&arm| match arm {
        0 => run_gs3(scale),
        1 => {
            let b = Baseline::Leach(Leach::new(points.len(), LeachConfig { p: leach_p }));
            from_baseline("leach", &run_baseline(&points, b, &energy, &cfg, scale.rounds, 99))
        }
        _ => {
            let b = Baseline::Hop(HopConfig { radio_range: RADIO_RANGE, max_hops: 2 });
            from_baseline("hop", &run_baseline(&points, b, &energy, &cfg, scale.rounds, 99))
        }
    });

    let mut t = Table::new(["arm", "reports", "energy", "reports/J", "first death (s)", "lifetime (s)"]);
    for o in &outcomes {
        let opt = |v: Option<f64>| v.map_or("—".to_string(), |s| format!("{s:.0}"));
        t.row([
            o.arm.into(),
            format!("{}", o.reports_delivered),
            num(o.energy_spent),
            format!("{:.4}", o.reports_per_joule()),
            opt(o.first_death_secs),
            opt(o.lifetime_secs),
        ]);
    }
    println!("{}", t.render());

    // Ω(n_c) sweep: lifetime under pure maintenance as density (and so
    // cell population) grows — the maintained/unmaintained ratio must not
    // shrink with n_c.
    println!("\n--- Ω(n_c) sweep: maintained vs unmaintained lifetime ---\n");
    let sweep = run_grid(scale.sweep_nodes, threads, |&n| {
        let builder = NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(20.0)
            .area_radius(120.0)
            .expected_nodes(n)
            .seed(31);
        run_lifetime(
            builder,
            EnergyModel::normalized(RADIO_RANGE),
            400.0,
            SimDuration::from_secs(scale.sweep_horizon_secs),
            SimDuration::from_secs(10),
            0.5,
        )
    });
    let mut sweep_json = Vec::new();
    let mut st = Table::new(["n_c (mean)", "first head death (s)", "maintained (s)", "lengthening"]);
    for res in &sweep {
        let first = res.first_head_death.map(|t| t.as_secs_f64());
        let maintained = res.maintained_lifetime.map(|t| t.as_secs_f64());
        let opt = |v: Option<f64>| v.map_or("—".to_string(), |s| format!("{s:.0}"));
        st.row([
            format!("{:.1}", res.mean_cell_population),
            opt(first),
            opt(maintained),
            res.lengthening_factor.map_or("—".to_string(), |f| format!("{f:.2}×")),
        ]);
        let j = |v: Option<f64>| v.map_or("-1".to_string(), |s| format!("{s:.1}"));
        sweep_json.push(format!(
            "{{\"mean_cell_population\":{:.2},\"first_head_death_s\":{},\"maintained_s\":{},\
             \"lengthening\":{}}}",
            res.mean_cell_population,
            j(first),
            j(maintained),
            res.lengthening_factor.map_or("-1".to_string(), |f| format!("{f:.3}")),
        ));
    }
    println!("{}", st.render());
    println!(
        "expected shape: the baselines' round model is a lossless upper bound —\n\
         free construction, perfect aggregation, guaranteed delivery — while the\n\
         GS³ arm runs the real event-level data plane (frame loss, queue drops,\n\
         stale routes, reports dying in flight with their relays), so its\n\
         reports-per-joule lands below the LEACH bound but within a small\n\
         constant of it. The paper's own claim is the sweep: the lengthening\n\
         factor grows with n_c — every cell member takes a turn as head (Ω(n_c))."
    );

    format!(
        "{{\"suite\":\"BENCH_dataplane\",\"smoke\":{smoke},\"nodes\":{},\
         \"churn_per_round\":{CHURN_PER_ROUND},\"round_secs\":{ROUND_SECS},\"arms\":[{}],\
         \"lifetime_sweep\":[{}]}}",
        scale.nodes,
        outcomes.iter().map(ArmOutcome::to_json).collect::<Vec<_>>().join(","),
        sweep_json.join(","),
    )
}

/// Converts a GS³ snapshot into the baseline [`Clustering`] representation.
fn clustering_from_snapshot(snap: &gs3_core::Snapshot) -> Clustering {
    let mut heads = Vec::new();
    let mut head_index = std::collections::BTreeMap::new();
    for (i, n) in snap.nodes.iter().enumerate() {
        if n.alive && n.is_head() {
            head_index.insert(n.id, heads.len());
            heads.push(i);
        }
    }
    let assignment = snap
        .nodes
        .iter()
        .map(|n| {
            if !n.alive {
                return None;
            }
            match &n.role {
                RoleView::Head { .. } => head_index.get(&n.id).copied(),
                RoleView::Associate { head, surrogate: false, .. } => {
                    head_index.get(head).copied()
                }
                _ => None,
            }
        })
        .collect();
    Clustering { heads, assignment }
}

/// How many nodes changed cluster between two LEACH rounds.
fn assignment_churn(a: &Clustering, b: &Clustering) -> usize {
    let head_of = |c: &Clustering, i: usize| c.assignment[i].map(|ci| c.heads[ci]);
    (0..a.assignment.len()).filter(|&i| head_of(a, i) != head_of(b, i)).count()
}
