//! **SEC6** — the comparative claims of the paper's Related Work section,
//! measured: GS³ vs a LEACH-style randomized clustering \[10\] vs
//! geography-unaware hop-based clustering \[3\].
//!
//! Claims quantified:
//!
//! * LEACH "guarantees neither the placement nor the number of clusters" —
//!   head spacing and cluster radius are unbounded; every rotation round
//!   reshuffles the entire network (healing is global).
//! * Hop-based clustering bounds only the *logical* radius — the
//!   geographic radius is unbounded and clusters interleave (members whose
//!   nearest head belongs to another cluster).
//! * GS³ bounds the geographic radius in `[√3R−2R_t, √3R+2R_t]` head
//!   spacing and `R + 2R_t/√3` cell radius, with zero interleaving, and
//!   heals locally.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin baseline_compare
//! ```

use gs3_analysis::metrics::measure;
use gs3_analysis::report::{num, Table};
use gs3_baselines::cluster::{quality, Clustering};
use gs3_baselines::hop::{cluster as hop_cluster, HopConfig};
use gs3_baselines::leach::{Leach, LeachConfig};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::RoleView;
use gs3_geometry::Point;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("SEC6", "Related-work claims — GS3 vs LEACH vs hop-based clustering");

    // One shared deployment so the comparison is apples-to-apples: run
    // GS³ to fixpoint, then hand the same node positions to the baselines.
    let r = 80.0;
    let r_t = 18.0;
    let mut net = NetworkBuilder::new()
        .ideal_radius(r)
        .radius_tolerance(r_t)
        .area_radius(330.0)
        .expected_nodes(1800)
        .seed(29)
        .build()
        .expect("valid parameters");
    let _ = net.run_to_fixpoint();
    let snap = net.snapshot();
    let points: Vec<Point> = snap.nodes.iter().map(|n| n.pos).collect();
    let alive: Vec<bool> = snap.nodes.iter().map(|n| n.alive).collect();

    // GS³'s structure as a Clustering over the same points.
    let gs3_clustering = clustering_from_snapshot(&snap);
    let gs3_q = quality(&points, &gs3_clustering);
    let gs3_m = measure(&snap);

    // LEACH with P chosen to produce about as many clusters as GS³.
    let p = (gs3_q.clusters as f64 / points.len() as f64).clamp(0.005, 0.3);
    let mut leach = Leach::new(points.len(), LeachConfig { p });
    let mut rng = StdRng::seed_from_u64(99);
    let leach_round1 = leach.run_round(&points, &alive, &mut rng);
    let leach_q = quality(&points, &leach_round1);
    let leach_round2 = leach.run_round(&points, &alive, &mut rng);
    let churn = assignment_churn(&leach_round1, &leach_round2);

    // Hop clustering with 2-hop clusters over ~R-range links.
    let hop = hop_cluster(&points, &alive, HopConfig { radio_range: r * 0.75, max_hops: 2 });
    let hop_q = quality(&points, &hop);

    let mut t = Table::new([
        "metric",
        "GS3",
        "LEACH",
        "hop-based",
        "GS3 bound",
    ]);
    t.row([
        "clusters".into(),
        format!("{}", gs3_q.clusters),
        format!("{}", leach_q.clusters),
        format!("{}", hop_q.clusters),
        "placement-determined".into(),
    ]);
    t.row([
        "max cluster radius (m)".into(),
        num(gs3_q.max_radius),
        num(leach_q.max_radius),
        num(hop_q.max_radius),
        num(r + 2.0 * r_t / gs3_geometry::SQRT_3) + " (inner)",
    ]);
    t.row([
        "min head spacing (m)".into(),
        num(gs3_q.min_head_spacing),
        num(leach_q.min_head_spacing),
        num(hop_q.min_head_spacing),
        num(gs3_geometry::SQRT_3 * r - 2.0 * r_t),
    ]);
    t.row([
        "radius CV".into(),
        num(gs3_q.radius_cv),
        num(leach_q.radius_cv),
        num(hop_q.radius_cv),
        "low (uniform cells)".into(),
    ]);
    t.row([
        "size CV (load balance)".into(),
        num(gs3_q.size_cv),
        num(leach_q.size_cv),
        num(hop_q.size_cv),
        "low".into(),
    ]);
    t.row([
        "misassigned fraction".into(),
        num(gs3_q.misassigned_fraction),
        num(leach_q.misassigned_fraction),
        num(hop_q.misassigned_fraction),
        "~0 (F3: best head)".into(),
    ]);
    t.row([
        "healing scope (nodes)".into(),
        "O(cell) — see table_a1 row 3".into(),
        format!("{churn} (global re-election/round)"),
        "global re-run".into(),
        "local".into(),
    ]);
    println!("{}", t.render());

    println!(
        "GS³ realized coverage {:.1}%, non-ideal cells {}; LEACH re-assigns {} of {} nodes\n\
         every rotation round by design — the paper's \"not scalable\" healing claim.",
        gs3_m.coverage_ratio * 100.0,
        gs3_m.nonideal_cells,
        churn,
        points.len()
    );
    println!(
        "\nexpected shape: GS³'s max radius and min spacing respect the bounds;\n\
         LEACH shows near-zero min spacing and a heavy radius tail; hop-based\n\
         shows geographic interleaving (misassigned fraction ≫ 0)."
    );
}

/// Converts a GS³ snapshot into the baseline [`Clustering`] representation.
fn clustering_from_snapshot(snap: &gs3_core::Snapshot) -> Clustering {
    let mut heads = Vec::new();
    let mut head_index = std::collections::BTreeMap::new();
    for (i, n) in snap.nodes.iter().enumerate() {
        if n.alive && n.is_head() {
            head_index.insert(n.id, heads.len());
            heads.push(i);
        }
    }
    let assignment = snap
        .nodes
        .iter()
        .map(|n| {
            if !n.alive {
                return None;
            }
            match &n.role {
                RoleView::Head { .. } => head_index.get(&n.id).copied(),
                RoleView::Associate { head, surrogate: false, .. } => {
                    head_index.get(head).copied()
                }
                _ => None,
            }
        })
        .collect();
    Clustering { heads, assignment }
}

/// How many nodes changed cluster between two LEACH rounds.
fn assignment_churn(a: &Clustering, b: &Clustering) -> usize {
    let head_of = |c: &Clustering, i: usize| c.assignment[i].map(|ci| c.heads[ci]);
    (0..a.assignment.len()).filter(|&i| head_of(a, i) != head_of(b, i)).count()
}
