//! **PERF** — engine performance suite, emitting `BENCH_core.json`.
//!
//! Times the simulator's hot paths end-to-end on seeded scenarios and
//! writes a machine-readable artifact (events per second, wall-clock per
//! scenario, peak event-queue depth) so CI can track performance across
//! commits. The scenarios are the same seeded workloads the experiments
//! run, so the numbers reflect real GS³ traffic, not synthetic loops.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin perf_suite -- [--smoke] [-j N] [--out PATH]
//!                                                      [--gate BASELINE.json]
//! ```
//!
//! `--smoke` shrinks every scenario so the suite finishes in seconds —
//! CI runs it on every push to prove the suite itself works and to
//! archive the artifact; real measurements come from a full run.
//!
//! `--gate BASELINE.json` turns the run into a regression gate: every
//! steady scenario's events/sec must stay within 2% of the baseline
//! artifact's, or the process exits non-zero. Wall-clock comparisons are
//! only meaningful between runs on the same machine at the same `-j` —
//! CI builds the baseline from the parent commit on the same runner.
//!
//! The `million_node_heal` scenario — a 1M-node deployment configuring
//! from scratch and healing a crash disk — is never gated (it reports
//! scale, not regression): `--skip-million` omits it, `--million-nodes N`
//! shrinks it (CI smoke), and it always reports peak RSS alongside
//! events/sec.

// gs3-lint: allow-file(d2) -- events/sec measurement needs the wall clock; results (digests) never depend on it
use std::time::Instant;

use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_core::harness::{Network, NetworkBuilder, RunOutcome};
use gs3_core::invariants::{check_all_with, SnapshotIndex, Strictness};
use gs3_core::{FaultKind, FaultPlan};
use gs3_geometry::Point;
use gs3_sim::faults::{BurstLoss, FaultConfig};
use gs3_sim::SimDuration;

/// One timed scenario's measurements.
struct Measurement {
    scenario: &'static str,
    wall_ms: f64,
    events: u64,
    peak_queue_depth: usize,
    extra: Vec<(&'static str, f64)>,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.events as f64 / (self.wall_ms / 1000.0)
        }
    }
}

/// Scenario scale knobs; `--smoke` shrinks everything.
struct Scale {
    nodes_mid: usize,
    area_mid: f64,
    nodes_large: usize,
    area_large: f64,
    chaos_nodes: usize,
    chaos_area: f64,
    check_iters: u32,
    snapshot_iters: u32,
}

const FULL: Scale = Scale {
    nodes_mid: 1400,
    area_mid: 320.0,
    nodes_large: 10_000,
    area_large: 860.0,
    chaos_nodes: 400,
    chaos_area: 200.0,
    check_iters: 50,
    snapshot_iters: 200,
};

const SMOKE: Scale = Scale {
    nodes_mid: 300,
    area_mid: 170.0,
    nodes_large: 900,
    area_large: 270.0,
    chaos_nodes: 150,
    chaos_area: 130.0,
    check_iters: 5,
    snapshot_iters: 20,
};

fn build(nodes: usize, area: f64, seed: u64) -> Network {
    NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(area)
        .expected_nodes(nodes)
        .seed(seed)
        .build()
        .expect("valid parameters")
}

/// Initial self-configuration to a stable structure.
fn scenario_configure(scale: &Scale) -> Measurement {
    let mut net = build(scale.nodes_mid, scale.area_mid, 42);
    let start = Instant::now();
    let _ = net.run_to_fixpoint();
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Measurement {
        scenario: "configure",
        wall_ms,
        events: net.engine().events_processed(),
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![("nodes", scale.nodes_mid as f64)],
    }
}

/// Steady-state maintenance: a converged network running heartbeats.
fn scenario_steady_state(scale: &Scale) -> Measurement {
    let mut net = build(scale.nodes_mid, scale.area_mid, 42);
    let _ = net.run_to_fixpoint();
    let before = net.engine().events_processed();
    let start = Instant::now();
    net.run_for(SimDuration::from_secs(120));
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Measurement {
        scenario: "steady_state_120s",
        wall_ms,
        events: net.engine().events_processed() - before,
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![("nodes", scale.nodes_mid as f64)],
    }
}

/// Steady-state maintenance over a contended medium: the same converged
/// network with the shared-medium contention layer on, so the number
/// tracks the cost of carrier-sense checks, backoff scheduling, and
/// collision scanning on every delivery.
fn scenario_steady_state_contended(scale: &Scale) -> Measurement {
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(scale.area_mid)
        .expected_nodes(scale.nodes_mid)
        .seed(42)
        .contention(gs3_sim::ContentionConfig::on())
        .build()
        .expect("valid parameters");
    let _ = net.run_to_fixpoint();
    let before = net.engine().events_processed();
    let start = Instant::now();
    net.run_for(SimDuration::from_secs(120));
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Measurement {
        scenario: "steady_state_contended_120s",
        wall_ms,
        events: net.engine().events_processed() - before,
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![
            ("nodes", scale.nodes_mid as f64),
            ("mac_collisions", net.engine().trace().mac_collisions() as f64),
            ("mac_defers", net.engine().trace().mac_defers() as f64),
        ],
    }
}

/// Steady-state with the convergecast data plane on: sequenced reports,
/// per-head queue/credit work, and sink accounting riding on top of the
/// heartbeat load — the marginal cost of real traffic.
fn scenario_steady_state_dataplane(scale: &Scale) -> Measurement {
    let mut net = NetworkBuilder::new()
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(scale.area_mid)
        .expected_nodes(scale.nodes_mid)
        .seed(42)
        .traffic(SimDuration::from_secs(2))
        .dataplane(gs3_core::DataplaneConfig::on())
        .build()
        .expect("valid parameters");
    let _ = net.run_to_fixpoint();
    let before = net.engine().events_processed();
    let start = Instant::now();
    net.run_for(SimDuration::from_secs(120));
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let delivered = net.sink_ledger().map_or(0, |l| l.reports);
    Measurement {
        scenario: "steady_state_dataplane_120s",
        wall_ms,
        events: net.engine().events_processed() - before,
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![("nodes", scale.nodes_mid as f64), ("reports_delivered", delivered as f64)],
    }
}

/// The steady-state workload again with a Full-mode flight recorder —
/// the opt-in telemetry cost (ring writes per engine event) relative to
/// `steady_state_120s`.
fn scenario_steady_state_recorded(scale: &Scale) -> Measurement {
    let mut net = build(scale.nodes_mid, scale.area_mid, 42);
    let _ = net.run_to_fixpoint();
    net.engine_mut().set_recording(gs3_sim::telemetry::RecorderMode::Full { capacity: 200_000 });
    let before = net.engine().events_processed();
    let start = Instant::now();
    net.run_for(SimDuration::from_secs(120));
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let recorded = net.engine().telemetry().recorder.total();
    Measurement {
        scenario: "steady_state_recorded_120s",
        wall_ms,
        events: net.engine().events_processed() - before,
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![("nodes", scale.nodes_mid as f64), ("recorded_events", recorded as f64)],
    }
}

/// Self-healing under a lossy channel and crash waves.
fn scenario_chaos(scale: &Scale) -> Measurement {
    let mut net = build(scale.chaos_nodes, scale.chaos_area, 23);
    let _ = net.run_to_fixpoint();
    let channel = FaultConfig {
        burst: BurstLoss::bursty(0.03, 4.0),
        unicast_loss: 0.02,
        ..FaultConfig::none()
    };
    let mut plan = FaultPlan::new().at(SimDuration::ZERO, FaultKind::SetChannel { config: channel });
    for w in 0..3u32 {
        plan = plan.at(
            SimDuration::from_secs_f64(5.0 + f64::from(w) * 20.0),
            FaultKind::CrashRandom { count: 5 },
        );
    }
    let before = net.engine().events_processed();
    let start = Instant::now();
    let rep = net.run_chaos(&plan);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Measurement {
        scenario: "chaos_heal",
        wall_ms,
        events: net.engine().events_processed() - before,
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![
            ("nodes", scale.chaos_nodes as f64),
            ("healed", if rep.healed() { 1.0 } else { 0.0 }),
        ],
    }
}

/// The spatial-indexed invariant engine over a large converged snapshot.
fn scenario_invariants(scale: &Scale) -> Measurement {
    let mut net = build(scale.nodes_large, scale.area_large, 7);
    let _ = net.run_to_fixpoint();
    let snap = net.snapshot();
    let start = Instant::now();
    let mut violations = 0usize;
    for _ in 0..scale.check_iters {
        let idx = SnapshotIndex::build(&snap);
        violations = check_all_with(&snap, Strictness::Dynamic, &idx).len();
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Measurement {
        scenario: "check_all",
        wall_ms,
        events: u64::from(scale.check_iters) * snap.nodes.len() as u64,
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![
            ("nodes", snap.nodes.len() as f64),
            ("iters", f64::from(scale.check_iters)),
            ("violations", violations as f64),
        ],
    }
}

/// Zero-realloc polling: `snapshot_into` reusing one buffer.
fn scenario_snapshot(scale: &Scale) -> Measurement {
    let mut net = build(scale.nodes_large, scale.area_large, 7);
    let _ = net.run_to_fixpoint();
    let mut snap = net.snapshot();
    let start = Instant::now();
    for _ in 0..scale.snapshot_iters {
        net.snapshot_into(&mut snap);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Measurement {
        scenario: "snapshot_into",
        wall_ms,
        events: u64::from(scale.snapshot_iters) * snap.nodes.len() as u64,
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![
            ("nodes", snap.nodes.len() as f64),
            ("iters", f64::from(scale.snapshot_iters)),
        ],
    }
}

/// Peak resident set size (`VmHWM`) of this process in MiB. Linux-only;
/// returns `None` elsewhere, and the artifact then reports `-1`.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Scale probe: configure a metropolis-sized deployment from scratch,
/// crash a disk of it, and heal. Reported events/sec and peak RSS track
/// headroom, not regressions — this scenario is never gated, runs after
/// the grid (sequentially, so `VmHWM` reflects it alone; every other
/// scenario is orders of magnitude smaller), and shrinks via
/// `--million-nodes` for CI smoke.
fn scenario_million(nodes: usize, area: f64) -> Measurement {
    let mut net = build(nodes, area, 77);
    let poll = net.config().intra_heartbeat;
    // Same stability window as `run_to_fixpoint`...
    let detect = (net.config().intra_timeout() * 2) + (net.config().inter_timeout() * 2);
    let polls = (detect.as_micros() / poll.as_micros().max(1)) as u32 + 2;
    // ...but a deadline sized to the deployment: diffusion reaches one
    // more ring of cells (~R) per HEAD_ORG round, so the default 600 s
    // would time out long before a 100-ring radius converges.
    let rings = (area / 80.0).ceil().max(5.0);
    let configure_deadline = SimDuration::from_secs(120 * rings as u64);

    let start = Instant::now();
    let configured = matches!(
        net.run_to_fixpoint_with(poll, polls, net.now() + configure_deadline),
        RunOutcome::Fixpoint { .. }
    );
    let configure_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Crash a ~2-cell disk halfway out from the big node; healing is a
    // local repair, so the default-sized deadline suffices.
    let killed = net.kill_disk(Point::new(area * 0.5, 0.0), 170.0).len();
    let heal_start = Instant::now();
    let refixed = matches!(
        net.run_to_fixpoint_with(poll, polls, net.now() + SimDuration::from_secs(600)),
        RunOutcome::Fixpoint { .. }
    );
    let clean = net.check_invariants_incremental().is_empty();
    let heal_ms = heal_start.elapsed().as_secs_f64() * 1000.0;
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;

    Measurement {
        scenario: "million_node_heal",
        wall_ms,
        events: net.engine().events_processed(),
        peak_queue_depth: net.engine().peak_queue_depth(),
        extra: vec![
            ("nodes", nodes as f64),
            ("configured", if configured { 1.0 } else { 0.0 }),
            ("configure_ms", configure_ms),
            ("killed", killed as f64),
            ("healed", if refixed && clean { 1.0 } else { 0.0 }),
            ("heal_ms", heal_ms),
            ("peak_rss_mb", peak_rss_mb().unwrap_or(-1.0)),
        ],
    }
}

fn to_json(measurements: &[Measurement], smoke: bool, threads: usize) -> String {
    let mut out = String::from("{\"suite\":\"BENCH_core\",");
    out.push_str(&format!("\"smoke\":{smoke},\"threads\":{threads},\"scenarios\":["));
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"scenario\":\"{}\",\"wall_ms\":{:.3},\"events\":{},\"events_per_sec\":{:.1},\"peak_queue_depth\":{}",
            m.scenario,
            m.wall_ms,
            m.events,
            m.events_per_sec(),
            m.peak_queue_depth,
        ));
        for (k, v) in &m.extra {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Pull `"events_per_sec"` for one scenario out of a `BENCH_core.json`
/// document (hand-rolled scan — the artifact format is ours).
fn extract_events_per_sec(doc: &str, scenario: &str) -> Option<f64> {
    let needle = format!("\"scenario\":\"{scenario}\"");
    let obj = &doc[doc.find(&needle)?..];
    let obj = &obj[..obj.find('}')?];
    let val = &obj[obj.find("\"events_per_sec\":")? + "\"events_per_sec\":".len()..];
    let end = val.find([',', '}']).unwrap_or(val.len());
    val[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_core.json".to_string());
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1).cloned());
    let skip_million = args.iter().any(|a| a == "--skip-million");
    let million_nodes = args
        .iter()
        .position(|a| a == "--million-nodes")
        .and_then(|i| args.get(i + 1))
        .map(|n| n.parse().expect("--million-nodes takes a count"))
        .unwrap_or(if smoke { 20_000 } else { 1_000_000 });
    // Constant density across sizes: the committed nodes_large scenario
    // pins 10k nodes in a 860-radius area, and everything else scales as
    // sqrt(n) from there so per-cell population stays comparable.
    let million_area = 860.0 * (million_nodes as f64 / 10_000.0).sqrt();
    let threads = threads_from_args();
    let scale = if smoke { &SMOKE } else { &FULL };

    eprintln!(
        "perf_suite: {} mode, {} threads → {}",
        if smoke { "smoke" } else { "full" },
        threads,
        out_path
    );

    // Scenarios are independent seeded workloads; fan them out like any
    // other experiment grid. Wall-clock numbers are only comparable
    // across commits when measured at the same -j.
    let scenarios: [fn(&Scale) -> Measurement; 8] = [
        scenario_configure,
        scenario_steady_state,
        scenario_steady_state_contended,
        scenario_steady_state_dataplane,
        scenario_steady_state_recorded,
        scenario_chaos,
        scenario_invariants,
        scenario_snapshot,
    ];
    let mut measurements = run_grid(&scenarios, threads, |f| f(scale));

    // The scale probe runs after the grid, alone, so its peak-RSS reading
    // is not polluted by concurrent scenarios (which are all far smaller).
    if !skip_million {
        eprintln!("  million_node_heal: configuring {million_nodes} nodes (area radius {million_area:.0})...");
        measurements.push(scenario_million(million_nodes, million_area));
    }

    for m in &measurements {
        eprintln!(
            "  {:<26} {:>10.1} ms  {:>12} events  {:>12.0} ev/s  peak queue {}",
            m.scenario,
            m.wall_ms,
            m.events,
            m.events_per_sec(),
            m.peak_queue_depth
        );
    }
    if let Some(m) = measurements.iter().find(|m| m.scenario == "million_node_heal") {
        let get = |k: &str| m.extra.iter().find(|(n, _)| *n == k).map_or(-1.0, |(_, v)| *v);
        eprintln!(
            "  million_node_heal: configured={} healed={} killed={} configure {:.1}s heal {:.1}s peak RSS {:.0} MiB",
            get("configured"),
            get("healed"),
            get("killed"),
            get("configure_ms") / 1000.0,
            get("heal_ms") / 1000.0,
            get("peak_rss_mb"),
        );
    }

    // Opt-in telemetry-overhead report: recorded vs plain steady state.
    let plain = measurements.iter().find(|m| m.scenario == "steady_state_120s");
    let recorded = measurements.iter().find(|m| m.scenario == "steady_state_recorded_120s");
    if let (Some(p), Some(r)) = (plain, recorded) {
        if p.events_per_sec() > 0.0 {
            let overhead = (p.events_per_sec() - r.events_per_sec()) / p.events_per_sec() * 100.0;
            eprintln!("  recorder Full-mode overhead: {overhead:.1}% of steady-state throughput");
        }
    }

    let json = to_json(&measurements, smoke, threads);
    std::fs::write(&out_path, &json).expect("write BENCH_core.json");
    println!("{json}");

    // Regression gate against a stored baseline artifact: every grid
    // scenario's events/sec must hold within 2%. The scale probe is
    // exempt — it reports headroom, and its wall time is dominated by a
    // one-off configuration whose cost the grid already covers. Wall-
    // clock noise makes the gate meaningful only on quiet machines at
    // matching scale/-j, which is why it is opt-in.
    if let Some(path) = gate_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let mut failed = Vec::new();
        for m in measurements.iter().filter(|m| m.scenario != "million_node_heal") {
            let Some(base) = extract_events_per_sec(&baseline, m.scenario) else {
                eprintln!("gate: baseline lacks {}; skipping", m.scenario);
                continue;
            };
            let cur = m.events_per_sec();
            let delta = (base - cur) / base * 100.0;
            eprintln!(
                "gate: {:<26} {cur:>12.0} ev/s vs baseline {base:>12.0} ({delta:+.1}%)",
                m.scenario
            );
            if cur < base * 0.98 {
                failed.push(m.scenario);
            }
        }
        if !failed.is_empty() {
            eprintln!("gate FAILED: events/sec regressed more than 2% in: {}", failed.join(", "));
            std::process::exit(1);
        }
        eprintln!("gate OK (all scenarios within 2%)");
    }
}
