//! **FIG8** — Figure 8 of the paper: the expected diameter of an
//! `R_t`-gap perturbed region as a function of `R_t / R` (λ = 10,
//! R = 100).
//!
//! Analytic curve (`2αR/(1−α)²`) at the paper's parameters, plus an
//! empirical measurement of contiguous headless-region diameters at
//! matched α (same methodology as `fig7`).
//!
//! ```text
//! cargo run --release -p gs3-bench --bin fig8
//! ```

use gs3_analysis::metrics::lattice_occupancy;
use gs3_geometry::hex::Axial;
use gs3_analysis::poisson::{expected_gap_region_diameter, figure7_8_sweep};
use gs3_analysis::report::{num, Table};
use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_bench::{banner, SEEDS};
use gs3_core::harness::NetworkBuilder;
use gs3_sim::SimDuration;

fn main() {
    banner("FIG8", "Figure 8 — expected diameter of an R_t-gap perturbed region (λ=10, R=100)");

    println!("analytic reproduction (the curve Figure 8 plots):\n");
    let mut t = Table::new(["R_t/R", "E[diameter] = 2aR/(1-a)^2 (m)"]);
    for p in figure7_8_sweep(0.005, 0.05, 10, 10.0, 100.0) {
        t.row([format!("{:.3}", p.rt_over_r), num(p.gap_region_diameter)]);
    }
    println!("{}", t.render());
    println!(
        "paper's observation: diameter ≈ 0 once R_t/R ≥ 0.02 → {:.2e} m at R_t = 2\n",
        expected_gap_region_diameter(2.0, 10.0, 100.0)
    );

    println!("empirical validation (α matched via λ·R_t², interior lattice sites):\n");
    println!(
        "note: the paper's expectation 2αR/(1−α)² averages over *all* region\n\
         starts including empty ones; conditioned on a region existing the\n\
         geometric-run model predicts a span of 1/(1−α)² cells, which is what\n\
         a measurement over realized regions can compare against.\n"
    );
    let r = 60.0;
    let r_t = 15.0;
    let area = 260.0;
    let mut t = Table::new([
        "target alpha",
        "predicted span | exists (cells)",
        "measured span (cells)",
        "measured gap fraction",
        "regions",
    ]);
    let alphas = [0.30f64, 0.20, 0.10, 0.05];
    // One cell per (α, seed); each is an independent seeded deployment.
    let mut cells: Vec<(f64, u64)> = Vec::new();
    for &target_alpha in &alphas {
        for seed in SEEDS {
            cells.push((target_alpha, seed));
        }
    }
    let results = run_grid(&cells, threads_from_args(), |&(target_alpha, seed)| {
        let lambda = -target_alpha.ln() / (r_t * r_t);
        let mut net = NetworkBuilder::new()
            .ideal_radius(r)
            .radius_tolerance(r_t)
            .area_radius(area)
            .density(lambda)
            .seed(seed)
            .build()
            .expect("valid parameters");
        net.run_for(SimDuration::from_secs(240));
        let snap = net.snapshot();
        // Interior populated-but-headless sites.
        let occupancy = lattice_occupancy(&snap);
        let interior: Vec<_> = occupancy
            .iter()
            .filter(|s| {
                s.center.distance(gs3_geometry::Point::ORIGIN) <= area - r && s.nodes > 0
            })
            .collect();
        let gaps: Vec<Axial> =
            interior.iter().filter(|s| !s.has_head).map(|s| s.site).collect();
        (interior.len(), gaps.len(), component_spans(&gaps))
    });
    for (ai, &target_alpha) in alphas.iter().enumerate() {
        let runs = &results[ai * SEEDS.len()..(ai + 1) * SEEDS.len()];
        let interior_sites: usize = runs.iter().map(|r| r.0).sum();
        let gap_sites: usize = runs.iter().map(|r| r.1).sum();
        let spans: Vec<f64> = runs.iter().flat_map(|r| r.2.iter().copied()).collect();
        let measured_span = if spans.is_empty() {
            0.0
        } else {
            spans.iter().sum::<f64>() / spans.len() as f64
        };
        let predicted = 1.0 / ((1.0 - target_alpha) * (1.0 - target_alpha));
        let gap_fraction = if interior_sites == 0 {
            0.0
        } else {
            gap_sites as f64 / interior_sites as f64
        };
        t.row([
            num(target_alpha),
            num(predicted),
            num(measured_span),
            num(gap_fraction),
            format!("{}", spans.len()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected shape: measured spans shrink toward one cell and regions\n\
         disappear as α falls — the collapse Figure 8 plots. (2-D adjacency\n\
         makes measured spans slightly heavier than the 1-D run model at\n\
         large α.)"
    );
}

/// Spans (max hex distance + 1, in cells) of the connected components of a
/// set of lattice sites.
fn component_spans(sites: &[Axial]) -> Vec<f64> {
    use std::collections::BTreeSet;
    let set: BTreeSet<Axial> = sites.iter().copied().collect();
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for &start in &set {
        if seen.contains(&start) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(cur) = stack.pop() {
            comp.push(cur);
            for n in cur.neighbors() {
                if set.contains(&n) && seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        let span = comp
            .iter()
            .flat_map(|a| comp.iter().map(move |b| a.distance(*b)))
            .max()
            .unwrap_or(0);
        out.push(f64::from(span) + 1.0);
    }
    out
}
