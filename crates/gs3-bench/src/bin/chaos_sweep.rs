//! **CHAOS** — healing-latency curves under adversarial channels.
//!
//! Sweeps Gilbert–Elliott burst-loss severity × crash churn rate and, for
//! each cell of the grid, drives a seeded [`FaultPlan`] through
//! `Network::run_chaos`: the channel degrades at `t=0`, then periodic
//! crash waves remove random nodes while the invariant oracle polls at
//! `Strictness::Dynamic`. Every cell runs twice — with the control-plane
//! reliability layer off (the paper's protocol verbatim) and on (acked
//! retransmission + adaptive detection + quarantine) — so the emitted
//! curve quantifies what reliable delivery buys as the channel worsens.
//! All runs share a 5% honest unicast-loss floor on top of the burst
//! model, the regime the reliability layer is built for.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin chaos_sweep -- [-j N] [--json]
//! ```
//!
//! `--json` replaces the table with a machine-readable document; the
//! output is byte-identical at any `-j` (cells are seeded and ordered).

use gs3_analysis::report::{num, Table};
use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_bench::banner;
use gs3_core::chaos::ChaosOptions;
use gs3_core::harness::{NetworkBuilder, RunOutcome};
use gs3_core::{CongestionConfig, FaultKind, FaultPlan, ReliabilityConfig};
use gs3_sim::faults::{BurstLoss, FaultConfig};
use gs3_sim::{ContentionConfig, SimDuration};

/// A named point on the burst-severity axis.
struct Severity {
    label: &'static str,
    burst: BurstLoss,
}

/// A named point on the churn axis: `waves` crash events of `per_wave`
/// random nodes, one every `gap` seconds.
struct Churn {
    label: &'static str,
    waves: u32,
    per_wave: usize,
    gap: f64,
}

const SEEDS: [u64; 3] = [11, 23, 37];

/// The honest unicast-loss floor applied to every cell (the acceptance
/// regime for the reliability layer: ≥5% loss on one-shot control
/// messages).
const UNICAST_LOSS: f64 = 0.05;

/// One grid cell's raw result (per seed × reliability arm).
struct CellResult {
    healed: bool,
    latencies: Vec<f64>,
    burst_drops: u64,
    unicast_drops: u64,
    retransmits: u64,
    give_ups: u64,
    /// Per-episode spatial healing radius (meters) — one per crash wave.
    episode_radii: Vec<f64>,
    /// Per-episode message cost (sends attributed to the episode).
    episode_messages: Vec<f64>,
}

fn run_cell(sev: &Severity, churn: &Churn, seed: u64, reliable: bool) -> CellResult {
    let mut b = NetworkBuilder::new()
        .ideal_radius(40.0)
        .radius_tolerance(14.0)
        .area_radius(200.0)
        .expected_nodes(400)
        .seed(seed);
    if reliable {
        b = b.reliability(ReliabilityConfig::on());
    }
    let mut net = b.build().expect("valid parameters");
    net.run_to_fixpoint().expect("initial configuration converges");

    let channel = FaultConfig {
        burst: sev.burst.clone(),
        unicast_loss: UNICAST_LOSS,
        ..FaultConfig::none()
    };
    let mut plan = FaultPlan::new();
    plan = plan.at(SimDuration::ZERO, FaultKind::SetChannel { config: channel });
    for w in 0..churn.waves {
        plan = plan.at(
            SimDuration::from_secs_f64(5.0 + f64::from(w) * churn.gap),
            FaultKind::CrashRandom { count: churn.per_wave },
        );
    }

    let rep = net.run_chaos(&plan);
    let latencies = rep
        .outcomes
        .iter()
        .filter(|o| o.kind == "crash_random")
        .filter_map(|o| o.heal_latency)
        .map(|l| l.as_secs_f64())
        .collect();
    CellResult {
        healed: rep.healed(),
        latencies,
        burst_drops: rep.dropped_by_burst,
        unicast_drops: rep.dropped_unicast,
        retransmits: rep.reliability.retransmits,
        give_ups: rep.reliability.give_ups,
        episode_radii: rep.episodes.iter().map(|e| e.radius_m).collect(),
        episode_messages: rep.episodes.iter().map(|e| e.messages as f64).collect(),
    }
}

/// A named point on the density axis of the congestion grid: `nodes`
/// expected nodes in a fixed 160 m-radius area (R = 40, so per-cell
/// population scales with the count).
struct Density {
    label: &'static str,
    nodes: usize,
}

/// A named point on the offered-load axis: every associate reports to its
/// head (and heads aggregate upward) each `report_s` seconds.
struct Load {
    label: &'static str,
    report_s: f64,
}

/// Deployment area radius of every congestion cell (meters).
const CONG_AREA: f64 = 160.0;

/// Crash wave injected into every congestion cell once configured.
const CONG_CRASH: usize = 8;

/// One congestion-grid cell's raw result (per seed × adaptation arm).
struct CongResult {
    /// Initial self-configuration reached a fixpoint under contention.
    configured: bool,
    /// Configured AND the crash wave healed (zero violations at the end).
    healed: bool,
    /// Healing latency of the crash wave, seconds.
    latency: Option<f64>,
    collisions: u64,
    defers: u64,
    backoff_exhausted: u64,
    stretches: u64,
    relaxes: u64,
    suppressed: u64,
}

/// Runs one congestion cell: a dense deployment configuring and then
/// healing a crash wave over a *contended* medium, with the sensing
/// workload as offered load. `adaptive` toggles congestion-adaptive
/// degradation — the only difference between the two arms.
fn run_congestion_cell(d: &Density, l: &Load, seed: u64, adaptive: bool) -> CongResult {
    let mut b = NetworkBuilder::new()
        .ideal_radius(40.0)
        .radius_tolerance(14.0)
        .area_radius(CONG_AREA)
        .expected_nodes(d.nodes)
        .traffic(SimDuration::from_secs_f64(l.report_s))
        .contention(ContentionConfig::on())
        .seed(seed);
    if adaptive {
        b = b.congestion(CongestionConfig::on());
    }
    let mut net = b.build().expect("valid parameters");

    // Stretched timers move 2^max_stretch_exp slower, so both the
    // stability window and the deadline get the same factor — applied to
    // both arms so the harness treats them identically.
    let cfg = net.config().clone();
    let factor = u64::from(1u32 << cfg.congestion.max_stretch_exp);
    let poll = cfg.intra_heartbeat;
    let detect = (cfg.intra_timeout() * 2 + cfg.inter_timeout() * 2) * factor;
    let polls = (detect.as_micros() / poll.as_micros().max(1)) as u32 + 2;
    let deadline = net.now() + SimDuration::from_secs(600 * factor);
    let configured =
        matches!(net.run_to_fixpoint_with(poll, polls, deadline), RunOutcome::Fixpoint { .. });

    let plan =
        FaultPlan::new().at(SimDuration::from_secs(5), FaultKind::CrashRandom { count: CONG_CRASH });
    let opts = ChaosOptions { poll, settle: SimDuration::from_secs(300 * factor) };
    let rep = net.run_chaos_opts(&plan, opts);
    let latency = rep
        .outcomes
        .iter()
        .filter(|o| o.kind == "crash_random")
        .filter_map(|o| o.heal_latency)
        .map(|lat| lat.as_secs_f64())
        .next();
    CongResult {
        configured,
        healed: configured && rep.healed(),
        latency,
        collisions: rep.mac.collisions,
        defers: rep.mac.defers,
        backoff_exhausted: rep.mac.backoff_exhausted,
        stretches: rep.mac.congestion_stretches,
        relaxes: rep.mac.congestion_relaxes,
        suppressed: rep.mac.suppressed_broadcasts,
    }
}

/// Aggregates one adaptation arm of a congestion cell across its seeds.
struct CongArm {
    configured_runs: usize,
    healed_runs: usize,
    median_heal: f64,
    collisions: u64,
    defers: u64,
    backoff_exhausted: u64,
    stretches: u64,
    relaxes: u64,
    suppressed: u64,
}

fn cong_aggregate(runs: &[&CongResult]) -> CongArm {
    let latencies: Vec<f64> = runs.iter().filter_map(|r| r.latency).collect();
    let n = runs.len() as u64;
    CongArm {
        configured_runs: runs.iter().filter(|r| r.configured).count(),
        healed_runs: runs.iter().filter(|r| r.healed).count(),
        median_heal: median(&latencies),
        collisions: runs.iter().map(|r| r.collisions).sum::<u64>() / n,
        defers: runs.iter().map(|r| r.defers).sum::<u64>() / n,
        backoff_exhausted: runs.iter().map(|r| r.backoff_exhausted).sum::<u64>() / n,
        stretches: runs.iter().map(|r| r.stretches).sum::<u64>() / n,
        relaxes: runs.iter().map(|r| r.relaxes).sum::<u64>() / n,
        suppressed: runs.iter().map(|r| r.suppressed).sum::<u64>() / n,
    }
}

fn cong_arm_json(a: &CongArm) -> String {
    format!(
        "{{\"configured\":{},\"healed\":{},\"runs\":{},\"median_heal_s\":{},\"collisions\":{},\"defers\":{},\"backoff_exhausted\":{},\"congestion_stretches\":{},\"congestion_relaxes\":{},\"suppressed_broadcasts\":{}}}",
        a.configured_runs,
        a.healed_runs,
        SEEDS.len(),
        json_num(a.median_heal),
        a.collisions,
        a.defers,
        a.backoff_exhausted,
        a.stretches,
        a.relaxes,
        a.suppressed,
    )
}

/// The median of `xs` (mean of the central pair for even lengths); NaN
/// when empty.
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// A JSON number for `x`, `null` when it is not representable.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// Aggregates one reliability arm of a grid cell across its seeds.
struct Arm {
    healed_runs: usize,
    median_heal: f64,
    worst_heal: f64,
    burst_drops: u64,
    unicast_drops: u64,
    retransmits: u64,
    give_ups: u64,
    median_episode_radius: f64,
    median_episode_messages: f64,
}

fn aggregate(runs: &[&CellResult]) -> Arm {
    let latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies.iter().copied()).collect();
    let radii: Vec<f64> = runs.iter().flat_map(|r| r.episode_radii.iter().copied()).collect();
    let msgs: Vec<f64> = runs.iter().flat_map(|r| r.episode_messages.iter().copied()).collect();
    Arm {
        healed_runs: runs.iter().filter(|r| r.healed).count(),
        median_heal: median(&latencies),
        worst_heal: latencies.iter().copied().fold(0.0f64, f64::max),
        burst_drops: runs.iter().map(|r| r.burst_drops).sum::<u64>() / runs.len() as u64,
        unicast_drops: runs.iter().map(|r| r.unicast_drops).sum::<u64>() / runs.len() as u64,
        retransmits: runs.iter().map(|r| r.retransmits).sum::<u64>() / runs.len() as u64,
        give_ups: runs.iter().map(|r| r.give_ups).sum::<u64>() / runs.len() as u64,
        median_episode_radius: median(&radii),
        median_episode_messages: median(&msgs),
    }
}

fn arm_json(a: &Arm) -> String {
    format!(
        "{{\"healed\":{},\"runs\":{},\"median_heal_s\":{},\"worst_heal_s\":{},\"burst_drops\":{},\"unicast_drops\":{},\"retransmits\":{},\"give_ups\":{},\"episode_radius_m\":{},\"episode_messages\":{}}}",
        a.healed_runs,
        SEEDS.len(),
        json_num(a.median_heal),
        json_num(a.worst_heal),
        a.burst_drops,
        a.unicast_drops,
        a.retransmits,
        a.give_ups,
        json_num(a.median_episode_radius),
        json_num(a.median_episode_messages),
    )
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let threads = threads_from_args();
    if !json {
        banner("CHAOS", "robustness — healing latency, reliability layer off vs on");
    }

    let severities = [
        Severity { label: "clean", burst: BurstLoss::off() },
        Severity { label: "mild", burst: BurstLoss::bursty(0.01, 3.0) },
        Severity { label: "moderate", burst: BurstLoss::bursty(0.03, 4.0) },
        Severity { label: "severe", burst: BurstLoss::bursty(0.06, 6.0) },
    ];
    let churns = [
        Churn { label: "calm", waves: 1, per_wave: 5, gap: 20.0 },
        Churn { label: "steady", waves: 3, per_wave: 5, gap: 20.0 },
        Churn { label: "storm", waves: 5, per_wave: 10, gap: 15.0 },
    ];

    // The full (severity × churn × seed × arm) grid as independent cells;
    // each is a fully seeded single-threaded simulation. The reliability
    // arm is the innermost axis so off/on pairs of a seed sit adjacent.
    let mut cells: Vec<(usize, usize, u64, bool)> = Vec::new();
    for si in 0..severities.len() {
        for ci in 0..churns.len() {
            for &seed in &SEEDS {
                cells.push((si, ci, seed, false));
                cells.push((si, ci, seed, true));
            }
        }
    }
    let results = run_grid(&cells, threads, |&(si, ci, seed, reliable)| {
        run_cell(&severities[si], &churns[ci], seed, reliable)
    });

    let mut t = Table::new([
        "burst",
        "churn",
        "healed off/on",
        "median off (s)",
        "median on (s)",
        "worst on (s)",
        "heal r (m)",
        "retransmits",
        "give-ups",
    ]);
    let mut json_cells: Vec<String> = Vec::new();

    for (si, sev) in severities.iter().enumerate() {
        for (ci, churn) in churns.iter().enumerate() {
            let base = (si * churns.len() + ci) * SEEDS.len() * 2;
            let pairs = &results[base..base + SEEDS.len() * 2];
            let off: Vec<&CellResult> = pairs.iter().step_by(2).collect();
            let on: Vec<&CellResult> = pairs.iter().skip(1).step_by(2).collect();
            let off = aggregate(&off);
            let on = aggregate(&on);
            if json {
                json_cells.push(format!(
                    "{{\"burst\":\"{}\",\"churn\":\"{}\",\"reliable_off\":{},\"reliable_on\":{}}}",
                    sev.label,
                    churn.label,
                    arm_json(&off),
                    arm_json(&on),
                ));
            } else {
                t.row([
                    sev.label.to_string(),
                    churn.label.to_string(),
                    format!("{}/{} · {}/{}", off.healed_runs, SEEDS.len(), on.healed_runs, SEEDS.len()),
                    num(off.median_heal),
                    num(on.median_heal),
                    num(on.worst_heal),
                    num(on.median_episode_radius),
                    format!("{}", on.retransmits),
                    format!("{}", on.give_ups),
                ]);
            }
        }
    }

    // Congestion arm: density × offered load over a *contended* medium,
    // congestion adaptation off vs on. No channel faults — the only
    // adversary is the medium itself; the crash wave exercises healing
    // while the network is loaded.
    let densities = [
        Density { label: "sparse", nodes: 250 },
        Density { label: "dense", nodes: 400 },
    ];
    let loads = [
        Load { label: "light", report_s: 16.0 },
        Load { label: "heavy", report_s: 4.0 },
    ];
    let mut cong_cells: Vec<(usize, usize, u64, bool)> = Vec::new();
    for di in 0..densities.len() {
        for li in 0..loads.len() {
            for &seed in &SEEDS {
                cong_cells.push((di, li, seed, false));
                cong_cells.push((di, li, seed, true));
            }
        }
    }
    let cong_results = run_grid(&cong_cells, threads, |&(di, li, seed, adaptive)| {
        run_congestion_cell(&densities[di], &loads[li], seed, adaptive)
    });

    let mut ct = Table::new([
        "density",
        "load",
        "healed off/on",
        "median on (s)",
        "collisions off/on",
        "exhausted off/on",
        "stretches",
        "suppressed",
    ]);
    let mut cong_json_cells: Vec<String> = Vec::new();
    for (di, d) in densities.iter().enumerate() {
        for (li, l) in loads.iter().enumerate() {
            let base = (di * loads.len() + li) * SEEDS.len() * 2;
            let pairs = &cong_results[base..base + SEEDS.len() * 2];
            let off: Vec<&CongResult> = pairs.iter().step_by(2).collect();
            let on: Vec<&CongResult> = pairs.iter().skip(1).step_by(2).collect();
            let off = cong_aggregate(&off);
            let on = cong_aggregate(&on);
            if json {
                cong_json_cells.push(format!(
                    "{{\"density\":\"{}\",\"load\":\"{}\",\"adaptive_off\":{},\"adaptive_on\":{}}}",
                    d.label,
                    l.label,
                    cong_arm_json(&off),
                    cong_arm_json(&on),
                ));
            } else {
                ct.row([
                    d.label.to_string(),
                    l.label.to_string(),
                    format!("{}/{} · {}/{}", off.healed_runs, SEEDS.len(), on.healed_runs, SEEDS.len()),
                    num(on.median_heal),
                    format!("{}/{}", off.collisions, on.collisions),
                    format!("{}/{}", off.backoff_exhausted, on.backoff_exhausted),
                    format!("{}", on.stretches),
                    format!("{}", on.suppressed),
                ]);
            }
        }
    }

    if json {
        println!(
            "{{\"experiment\":\"chaos_sweep\",\"unicast_loss\":{UNICAST_LOSS},\"cells\":[{}],\"congestion_cells\":[{}]}}",
            json_cells.join(","),
            cong_json_cells.join(",")
        );
        return;
    }
    println!("{}", t.render());
    println!(
        "expected shape: every cell heals in both arms; the reliable arm's\n\
         median healing latency tracks at or below the plain arm as burst\n\
         severity rises — retransmission converts whole lost heartbeat\n\
         periods of detection delay into sub-second backoff retries, while\n\
         give-ups stay rare (the fallback paths, not the happy path).\n"
    );
    println!("{}", ct.render());
    println!(
        "congestion arm (contended medium, no channel faults): with\n\
         adaptation off the heavy-load cells congestion-collapse — the\n\
         join/election broadcast storm feeds itself and configuration\n\
         wedges; with adaptation on every cell configures and heals,\n\
         at the price of stretched (but bounded) healing latency."
    );
}
