//! **CHAOS** — healing-latency curves under adversarial channels.
//!
//! Sweeps Gilbert–Elliott burst-loss severity × crash churn rate and, for
//! each cell of the grid, drives a seeded [`FaultPlan`] through
//! `Network::run_chaos`: the channel degrades at `t=0`, then periodic
//! crash waves remove random nodes while the invariant oracle polls at
//! `Strictness::Dynamic`. The emitted curve is the mean / worst healing
//! latency per fault as the channel worsens — the paper's self-healing
//! claim (§4.3) quantified against message loss it never modelled.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin chaos_sweep
//! ```

use gs3_analysis::report::{num, Table};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::{FaultKind, FaultPlan};
use gs3_sim::faults::{BurstLoss, FaultConfig};
use gs3_sim::SimDuration;

/// A named point on the burst-severity axis.
struct Severity {
    label: &'static str,
    burst: BurstLoss,
}

/// A named point on the churn axis: `waves` crash events of `per_wave`
/// random nodes, one every `gap` seconds.
struct Churn {
    label: &'static str,
    waves: u32,
    per_wave: usize,
    gap: f64,
}

const SEEDS: [u64; 3] = [11, 23, 37];

fn main() {
    banner("CHAOS", "robustness — healing latency vs burst loss × churn");

    let severities = [
        Severity { label: "clean", burst: BurstLoss::off() },
        Severity { label: "mild", burst: BurstLoss::bursty(0.01, 3.0) },
        Severity { label: "moderate", burst: BurstLoss::bursty(0.03, 4.0) },
        Severity { label: "severe", burst: BurstLoss::bursty(0.06, 6.0) },
    ];
    let churns = [
        Churn { label: "calm", waves: 1, per_wave: 5, gap: 20.0 },
        Churn { label: "steady", waves: 3, per_wave: 5, gap: 20.0 },
        Churn { label: "storm", waves: 5, per_wave: 10, gap: 15.0 },
    ];

    let mut t = Table::new([
        "burst",
        "churn",
        "healed",
        "mean heal (s)",
        "worst heal (s)",
        "burst drops",
        "unicast drops",
    ]);

    for sev in &severities {
        for churn in &churns {
            let mut healed_runs = 0u32;
            let mut latencies: Vec<f64> = Vec::new();
            let mut worst = 0.0f64;
            let mut burst_drops = 0u64;
            let mut unicast_drops = 0u64;

            for &seed in &SEEDS {
                let mut net = NetworkBuilder::new()
                    .ideal_radius(40.0)
                    .radius_tolerance(14.0)
                    .area_radius(200.0)
                    .expected_nodes(400)
                    .seed(seed)
                    .build()
                    .expect("valid parameters");
                net.run_to_fixpoint().expect("initial configuration converges");

                let channel = FaultConfig {
                    burst: sev.burst.clone(),
                    unicast_loss: 0.02,
                    ..FaultConfig::none()
                };
                let mut plan = FaultPlan::new();
                plan = plan.at(SimDuration::ZERO, FaultKind::SetChannel { config: channel });
                for w in 0..churn.waves {
                    plan = plan.at(
                        SimDuration::from_secs_f64(5.0 + f64::from(w) * churn.gap),
                        FaultKind::CrashRandom { count: churn.per_wave },
                    );
                }

                let rep = net.run_chaos(&plan);
                if rep.healed() {
                    healed_runs += 1;
                }
                for o in &rep.outcomes {
                    if o.kind != "crash_random" {
                        continue;
                    }
                    if let Some(l) = o.heal_latency {
                        let s = l.as_secs_f64();
                        latencies.push(s);
                        worst = worst.max(s);
                    }
                }
                burst_drops += rep.dropped_by_burst;
                unicast_drops += rep.dropped_unicast;
            }

            let mean = if latencies.is_empty() {
                f64::NAN
            } else {
                latencies.iter().sum::<f64>() / latencies.len() as f64
            };
            t.row([
                sev.label.to_string(),
                churn.label.to_string(),
                format!("{healed_runs}/{}", SEEDS.len()),
                num(mean),
                num(worst),
                format!("{}", burst_drops / SEEDS.len() as u64),
                format!("{}", unicast_drops / SEEDS.len() as u64),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "expected shape: every cell heals (healed = {n}/{n}) and the latency\n\
         curve rises gently with burst severity — lost heartbeats delay failure\n\
         detection by whole heartbeat periods, but the repair rules themselves\n\
         never depend on any single message arriving.",
        n = SEEDS.len()
    );
}
