//! **CHAOS** — healing-latency curves under adversarial channels.
//!
//! Sweeps Gilbert–Elliott burst-loss severity × crash churn rate and, for
//! each cell of the grid, drives a seeded [`FaultPlan`] through
//! `Network::run_chaos`: the channel degrades at `t=0`, then periodic
//! crash waves remove random nodes while the invariant oracle polls at
//! `Strictness::Dynamic`. Every cell runs twice — with the control-plane
//! reliability layer off (the paper's protocol verbatim) and on (acked
//! retransmission + adaptive detection + quarantine) — so the emitted
//! curve quantifies what reliable delivery buys as the channel worsens.
//! All runs share a 5% honest unicast-loss floor on top of the burst
//! model, the regime the reliability layer is built for.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin chaos_sweep -- [-j N] [--json]
//! ```
//!
//! `--json` replaces the table with a machine-readable document; the
//! output is byte-identical at any `-j` (cells are seeded and ordered).

use gs3_analysis::report::{num, Table};
use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::{FaultKind, FaultPlan, ReliabilityConfig};
use gs3_sim::faults::{BurstLoss, FaultConfig};
use gs3_sim::SimDuration;

/// A named point on the burst-severity axis.
struct Severity {
    label: &'static str,
    burst: BurstLoss,
}

/// A named point on the churn axis: `waves` crash events of `per_wave`
/// random nodes, one every `gap` seconds.
struct Churn {
    label: &'static str,
    waves: u32,
    per_wave: usize,
    gap: f64,
}

const SEEDS: [u64; 3] = [11, 23, 37];

/// The honest unicast-loss floor applied to every cell (the acceptance
/// regime for the reliability layer: ≥5% loss on one-shot control
/// messages).
const UNICAST_LOSS: f64 = 0.05;

/// One grid cell's raw result (per seed × reliability arm).
struct CellResult {
    healed: bool,
    latencies: Vec<f64>,
    burst_drops: u64,
    unicast_drops: u64,
    retransmits: u64,
    give_ups: u64,
    /// Per-episode spatial healing radius (meters) — one per crash wave.
    episode_radii: Vec<f64>,
    /// Per-episode message cost (sends attributed to the episode).
    episode_messages: Vec<f64>,
}

fn run_cell(sev: &Severity, churn: &Churn, seed: u64, reliable: bool) -> CellResult {
    let mut b = NetworkBuilder::new()
        .ideal_radius(40.0)
        .radius_tolerance(14.0)
        .area_radius(200.0)
        .expected_nodes(400)
        .seed(seed);
    if reliable {
        b = b.reliability(ReliabilityConfig::on());
    }
    let mut net = b.build().expect("valid parameters");
    net.run_to_fixpoint().expect("initial configuration converges");

    let channel = FaultConfig {
        burst: sev.burst.clone(),
        unicast_loss: UNICAST_LOSS,
        ..FaultConfig::none()
    };
    let mut plan = FaultPlan::new();
    plan = plan.at(SimDuration::ZERO, FaultKind::SetChannel { config: channel });
    for w in 0..churn.waves {
        plan = plan.at(
            SimDuration::from_secs_f64(5.0 + f64::from(w) * churn.gap),
            FaultKind::CrashRandom { count: churn.per_wave },
        );
    }

    let rep = net.run_chaos(&plan);
    let latencies = rep
        .outcomes
        .iter()
        .filter(|o| o.kind == "crash_random")
        .filter_map(|o| o.heal_latency)
        .map(|l| l.as_secs_f64())
        .collect();
    CellResult {
        healed: rep.healed(),
        latencies,
        burst_drops: rep.dropped_by_burst,
        unicast_drops: rep.dropped_unicast,
        retransmits: rep.reliability.retransmits,
        give_ups: rep.reliability.give_ups,
        episode_radii: rep.episodes.iter().map(|e| e.radius_m).collect(),
        episode_messages: rep.episodes.iter().map(|e| e.messages as f64).collect(),
    }
}

/// The median of `xs` (mean of the central pair for even lengths); NaN
/// when empty.
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// A JSON number for `x`, `null` when it is not representable.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// Aggregates one reliability arm of a grid cell across its seeds.
struct Arm {
    healed_runs: usize,
    median_heal: f64,
    worst_heal: f64,
    burst_drops: u64,
    unicast_drops: u64,
    retransmits: u64,
    give_ups: u64,
    median_episode_radius: f64,
    median_episode_messages: f64,
}

fn aggregate(runs: &[&CellResult]) -> Arm {
    let latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies.iter().copied()).collect();
    let radii: Vec<f64> = runs.iter().flat_map(|r| r.episode_radii.iter().copied()).collect();
    let msgs: Vec<f64> = runs.iter().flat_map(|r| r.episode_messages.iter().copied()).collect();
    Arm {
        healed_runs: runs.iter().filter(|r| r.healed).count(),
        median_heal: median(&latencies),
        worst_heal: latencies.iter().copied().fold(0.0f64, f64::max),
        burst_drops: runs.iter().map(|r| r.burst_drops).sum::<u64>() / runs.len() as u64,
        unicast_drops: runs.iter().map(|r| r.unicast_drops).sum::<u64>() / runs.len() as u64,
        retransmits: runs.iter().map(|r| r.retransmits).sum::<u64>() / runs.len() as u64,
        give_ups: runs.iter().map(|r| r.give_ups).sum::<u64>() / runs.len() as u64,
        median_episode_radius: median(&radii),
        median_episode_messages: median(&msgs),
    }
}

fn arm_json(a: &Arm) -> String {
    format!(
        "{{\"healed\":{},\"runs\":{},\"median_heal_s\":{},\"worst_heal_s\":{},\"burst_drops\":{},\"unicast_drops\":{},\"retransmits\":{},\"give_ups\":{},\"episode_radius_m\":{},\"episode_messages\":{}}}",
        a.healed_runs,
        SEEDS.len(),
        json_num(a.median_heal),
        json_num(a.worst_heal),
        a.burst_drops,
        a.unicast_drops,
        a.retransmits,
        a.give_ups,
        json_num(a.median_episode_radius),
        json_num(a.median_episode_messages),
    )
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let threads = threads_from_args();
    if !json {
        banner("CHAOS", "robustness — healing latency, reliability layer off vs on");
    }

    let severities = [
        Severity { label: "clean", burst: BurstLoss::off() },
        Severity { label: "mild", burst: BurstLoss::bursty(0.01, 3.0) },
        Severity { label: "moderate", burst: BurstLoss::bursty(0.03, 4.0) },
        Severity { label: "severe", burst: BurstLoss::bursty(0.06, 6.0) },
    ];
    let churns = [
        Churn { label: "calm", waves: 1, per_wave: 5, gap: 20.0 },
        Churn { label: "steady", waves: 3, per_wave: 5, gap: 20.0 },
        Churn { label: "storm", waves: 5, per_wave: 10, gap: 15.0 },
    ];

    // The full (severity × churn × seed × arm) grid as independent cells;
    // each is a fully seeded single-threaded simulation. The reliability
    // arm is the innermost axis so off/on pairs of a seed sit adjacent.
    let mut cells: Vec<(usize, usize, u64, bool)> = Vec::new();
    for si in 0..severities.len() {
        for ci in 0..churns.len() {
            for &seed in &SEEDS {
                cells.push((si, ci, seed, false));
                cells.push((si, ci, seed, true));
            }
        }
    }
    let results = run_grid(&cells, threads, |&(si, ci, seed, reliable)| {
        run_cell(&severities[si], &churns[ci], seed, reliable)
    });

    let mut t = Table::new([
        "burst",
        "churn",
        "healed off/on",
        "median off (s)",
        "median on (s)",
        "worst on (s)",
        "heal r (m)",
        "retransmits",
        "give-ups",
    ]);
    let mut json_cells: Vec<String> = Vec::new();

    for (si, sev) in severities.iter().enumerate() {
        for (ci, churn) in churns.iter().enumerate() {
            let base = (si * churns.len() + ci) * SEEDS.len() * 2;
            let pairs = &results[base..base + SEEDS.len() * 2];
            let off: Vec<&CellResult> = pairs.iter().step_by(2).collect();
            let on: Vec<&CellResult> = pairs.iter().skip(1).step_by(2).collect();
            let off = aggregate(&off);
            let on = aggregate(&on);
            if json {
                json_cells.push(format!(
                    "{{\"burst\":\"{}\",\"churn\":\"{}\",\"reliable_off\":{},\"reliable_on\":{}}}",
                    sev.label,
                    churn.label,
                    arm_json(&off),
                    arm_json(&on),
                ));
            } else {
                t.row([
                    sev.label.to_string(),
                    churn.label.to_string(),
                    format!("{}/{} · {}/{}", off.healed_runs, SEEDS.len(), on.healed_runs, SEEDS.len()),
                    num(off.median_heal),
                    num(on.median_heal),
                    num(on.worst_heal),
                    num(on.median_episode_radius),
                    format!("{}", on.retransmits),
                    format!("{}", on.give_ups),
                ]);
            }
        }
    }

    if json {
        println!(
            "{{\"experiment\":\"chaos_sweep\",\"unicast_loss\":{UNICAST_LOSS},\"cells\":[{}]}}",
            json_cells.join(",")
        );
        return;
    }
    println!("{}", t.render());
    println!(
        "expected shape: every cell heals in both arms; the reliable arm's\n\
         median healing latency tracks at or below the plain arm as burst\n\
         severity rises — retransmission converts whole lost heartbeat\n\
         periods of detection delay into sub-second backoff retries, while\n\
         give-ups stay rare (the fallback paths, not the happy path)."
    );
}
