//! **CHAOS** — healing-latency curves under adversarial channels.
//!
//! Sweeps Gilbert–Elliott burst-loss severity × crash churn rate and, for
//! each cell of the grid, drives a seeded [`FaultPlan`] through
//! `Network::run_chaos`: the channel degrades at `t=0`, then periodic
//! crash waves remove random nodes while the invariant oracle polls at
//! `Strictness::Dynamic`. The emitted curve is the mean / worst healing
//! latency per fault as the channel worsens — the paper's self-healing
//! claim (§4.3) quantified against message loss it never modelled.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin chaos_sweep -- [-j N] [--json]
//! ```
//!
//! `--json` replaces the table with a machine-readable document; the
//! output is byte-identical at any `-j` (cells are seeded and ordered).

use gs3_analysis::report::{num, Table};
use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::{FaultKind, FaultPlan};
use gs3_sim::faults::{BurstLoss, FaultConfig};
use gs3_sim::SimDuration;

/// A named point on the burst-severity axis.
struct Severity {
    label: &'static str,
    burst: BurstLoss,
}

/// A named point on the churn axis: `waves` crash events of `per_wave`
/// random nodes, one every `gap` seconds.
struct Churn {
    label: &'static str,
    waves: u32,
    per_wave: usize,
    gap: f64,
}

const SEEDS: [u64; 3] = [11, 23, 37];

/// One grid cell's raw result (per seed).
struct CellResult {
    healed: bool,
    latencies: Vec<f64>,
    burst_drops: u64,
    unicast_drops: u64,
}

fn run_cell(sev: &Severity, churn: &Churn, seed: u64) -> CellResult {
    let mut net = NetworkBuilder::new()
        .ideal_radius(40.0)
        .radius_tolerance(14.0)
        .area_radius(200.0)
        .expected_nodes(400)
        .seed(seed)
        .build()
        .expect("valid parameters");
    net.run_to_fixpoint().expect("initial configuration converges");

    let channel = FaultConfig {
        burst: sev.burst.clone(),
        unicast_loss: 0.02,
        ..FaultConfig::none()
    };
    let mut plan = FaultPlan::new();
    plan = plan.at(SimDuration::ZERO, FaultKind::SetChannel { config: channel });
    for w in 0..churn.waves {
        plan = plan.at(
            SimDuration::from_secs_f64(5.0 + f64::from(w) * churn.gap),
            FaultKind::CrashRandom { count: churn.per_wave },
        );
    }

    let rep = net.run_chaos(&plan);
    let latencies = rep
        .outcomes
        .iter()
        .filter(|o| o.kind == "crash_random")
        .filter_map(|o| o.heal_latency)
        .map(|l| l.as_secs_f64())
        .collect();
    CellResult {
        healed: rep.healed(),
        latencies,
        burst_drops: rep.dropped_by_burst,
        unicast_drops: rep.dropped_unicast,
    }
}

/// A JSON number for `x`, `null` when it is not representable.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let threads = threads_from_args();
    if !json {
        banner("CHAOS", "robustness — healing latency vs burst loss × churn");
    }

    let severities = [
        Severity { label: "clean", burst: BurstLoss::off() },
        Severity { label: "mild", burst: BurstLoss::bursty(0.01, 3.0) },
        Severity { label: "moderate", burst: BurstLoss::bursty(0.03, 4.0) },
        Severity { label: "severe", burst: BurstLoss::bursty(0.06, 6.0) },
    ];
    let churns = [
        Churn { label: "calm", waves: 1, per_wave: 5, gap: 20.0 },
        Churn { label: "steady", waves: 3, per_wave: 5, gap: 20.0 },
        Churn { label: "storm", waves: 5, per_wave: 10, gap: 15.0 },
    ];

    // The full (severity × churn × seed) grid as independent cells; each
    // is a fully seeded single-threaded simulation.
    let mut cells: Vec<(usize, usize, u64)> = Vec::new();
    for si in 0..severities.len() {
        for ci in 0..churns.len() {
            for &seed in &SEEDS {
                cells.push((si, ci, seed));
            }
        }
    }
    let results = run_grid(&cells, threads, |&(si, ci, seed)| {
        run_cell(&severities[si], &churns[ci], seed)
    });

    let mut t = Table::new([
        "burst",
        "churn",
        "healed",
        "mean heal (s)",
        "worst heal (s)",
        "burst drops",
        "unicast drops",
    ]);
    let mut json_cells: Vec<String> = Vec::new();

    for (si, sev) in severities.iter().enumerate() {
        for (ci, churn) in churns.iter().enumerate() {
            let base = (si * churns.len() + ci) * SEEDS.len();
            let runs = &results[base..base + SEEDS.len()];
            let healed_runs = runs.iter().filter(|r| r.healed).count();
            let latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies.iter().copied()).collect();
            let worst = latencies.iter().copied().fold(0.0f64, f64::max);
            let burst_drops: u64 = runs.iter().map(|r| r.burst_drops).sum();
            let unicast_drops: u64 = runs.iter().map(|r| r.unicast_drops).sum();
            let mean = if latencies.is_empty() {
                f64::NAN
            } else {
                latencies.iter().sum::<f64>() / latencies.len() as f64
            };
            if json {
                json_cells.push(format!(
                    "{{\"burst\":\"{}\",\"churn\":\"{}\",\"healed\":{},\"runs\":{},\"mean_heal_s\":{},\"worst_heal_s\":{},\"burst_drops\":{},\"unicast_drops\":{}}}",
                    sev.label,
                    churn.label,
                    healed_runs,
                    SEEDS.len(),
                    json_num(mean),
                    json_num(worst),
                    burst_drops / SEEDS.len() as u64,
                    unicast_drops / SEEDS.len() as u64,
                ));
            } else {
                t.row([
                    sev.label.to_string(),
                    churn.label.to_string(),
                    format!("{healed_runs}/{}", SEEDS.len()),
                    num(mean),
                    num(worst),
                    format!("{}", burst_drops / SEEDS.len() as u64),
                    format!("{}", unicast_drops / SEEDS.len() as u64),
                ]);
            }
        }
    }

    if json {
        println!("{{\"experiment\":\"chaos_sweep\",\"cells\":[{}]}}", json_cells.join(","));
        return;
    }
    println!("{}", t.render());
    println!(
        "expected shape: every cell heals (healed = {n}/{n}) and the latency\n\
         curve rises gently with burst severity — lost heartbeats delay failure\n\
         detection by whole heartbeat periods, but the repair rules themselves\n\
         never depend on any single message arriving.",
        n = SEEDS.len()
    );
}
