//! **ABLATION** — what the paper's two key mechanisms buy, measured by
//! turning each off.
//!
//! 1. **IL-anchored `HEAD_SELECT`** (Section 3.2): "In order to prevent the
//!    accumulation of such deviation as the diffusing computation
//!    propagates far away from the big node … when a head selects its
//!    neighboring cell heads, it uses the IL of its cell instead of the
//!    actual location of itself." We measure head-to-lattice deviation per
//!    band with anchoring on vs off.
//!
//! 2. **Channel reservation in `HEAD_ORG`**: serializes neighboring rounds
//!    so two heads never select cells concurrently. Without it, adjacent
//!    rounds double-select shared ideal locations.
//!
//! ```text
//! cargo run --release -p gs3-bench --bin ablation
//! ```

use gs3_analysis::report::{num, Table};
use gs3_analysis::stats::Summary;
use gs3_bench::runner::{run_grid, threads_from_args};
use gs3_bench::banner;
use gs3_core::harness::NetworkBuilder;
use gs3_core::{Gs3Config, Mode, RoleView};
use gs3_geometry::hex::HexLayout;
use gs3_geometry::{head_spacing, Angle, Point};
use gs3_sim::{SimDuration, SimTime};

fn main() {
    banner("ABLATION", "the paper's design choices, measured by removal");
    let threads = threads_from_args();
    anchor_ablation(threads);
    reservation_ablation(threads);
}

/// Builds, statically configures, and returns per-band head deviations
/// from the true lattice.
fn band_deviations(anchor_ils: bool, seed: u64) -> Vec<Vec<f64>> {
    let r = 60.0;
    let r_t = 14.0;
    let mut cfg = Gs3Config::new(r, r_t).expect("valid").with_mode(Mode::Static);
    cfg.anchor_ils = anchor_ils;
    let mut net = NetworkBuilder::new()
        .area_radius(560.0)
        .expected_nodes(4200)
        .seed(seed)
        .config(cfg)
        .build()
        .expect("valid");
    net.engine_mut()
        .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(900))
        .expect("static diffusion terminates");
    let snap = net.snapshot();
    // The *true* lattice: anchored at the big node, GR = 0.
    let layout = HexLayout::new(Point::ORIGIN, r, Angle::ZERO);
    let mut bands: Vec<Vec<f64>> = Vec::new();
    for h in snap.heads() {
        let RoleView::Head { .. } = &h.role else { continue };
        let site = layout.cell_at(h.pos);
        let band = site.band() as usize;
        let deviation = h.pos.distance(layout.ideal_location(site));
        if bands.len() <= band {
            bands.resize(band + 1, Vec::new());
        }
        bands[band].push(deviation);
    }
    bands
}

fn anchor_ablation(threads: usize) {
    println!("part 1 — IL-anchored selection vs position-anchored (error accumulation)\n");
    println!("head deviation from the true lattice site, by band (R=60, R_t=14):\n");
    let variants = [true, false];
    let mut results = run_grid(&variants, threads, |&anchored| band_deviations(anchored, 5));
    let without = results.pop().expect("two variants");
    let with = results.pop().expect("two variants");
    let mut t = Table::new([
        "band",
        "anchored: mean dev (m)",
        "anchored: max",
        "position-based: mean dev (m)",
        "position-based: max",
    ]);
    let rows = with.len().max(without.len());
    for band in 0..rows {
        let a = with.get(band).map(|v| Summary::of(v)).unwrap_or_default();
        let b = without.get(band).map(|v| Summary::of(v)).unwrap_or_default();
        t.row([
            format!("{band}"),
            num(a.mean),
            num(a.max),
            num(b.mean),
            num(b.max),
        ]);
    }
    println!("{}", t.render());
    println!(
        "expected shape: anchored deviation stays flat (bounded by R_t = 14 m at\n\
         every band); position-anchored deviation grows with the band index —\n\
         the random-walk accumulation the paper's IL trick eliminates.\n"
    );
}

fn reservation_ablation(threads: usize) {
    println!("part 2 — channel reservation vs free-for-all HEAD_ORG\n");
    let mut t = Table::new([
        "reservation",
        "seed",
        "heads",
        "min head spacing (m)",
        "pairs < spacing/2",
    ]);
    let mut cells: Vec<(bool, u64)> = Vec::new();
    for &reservation in &[true, false] {
        for seed in [3u64, 9, 27] {
            cells.push((reservation, seed));
        }
    }
    let rows = run_grid(&cells, threads, |&(reservation, seed)| {
        let r = 80.0;
        let mut cfg = Gs3Config::new(r, 18.0).expect("valid").with_mode(Mode::Static);
        cfg.channel_reservation = reservation;
        // Lossy broadcasts make concurrent rounds see *different*
        // reply sets (with perfect symmetric information, concurrent
        // HEAD_SELECTs deterministically agree and the hazard hides).
        let mut net = NetworkBuilder::new()
            .area_radius(300.0)
            .expected_nodes(1200)
            .seed(seed)
            .broadcast_loss(0.15)
            .config(cfg)
            .build()
            .expect("valid");
        net.engine_mut()
            .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(900))
            .expect("terminates");
        let snap = net.snapshot();
        let heads: Vec<Point> = snap.heads().map(|h| h.pos).collect();
        let spacing = head_spacing(r);
        let mut min = f64::INFINITY;
        let mut close_pairs = 0;
        for (i, a) in heads.iter().enumerate() {
            for b in &heads[i + 1..] {
                let d = a.distance(*b);
                min = min.min(d);
                if d < spacing / 2.0 {
                    close_pairs += 1;
                }
            }
        }
        [
            if reservation { "on" } else { "off" }.to_string(),
            format!("{seed}"),
            format!("{}", heads.len()),
            num(min),
            format!("{close_pairs}"),
        ]
    });
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "expected shape: with reservation, the minimum spacing respects\n\
         √3R − 2R_t and no close pairs exist; without it, concurrent rounds\n\
         double-select shared ideal locations (close pairs > 0 and/or\n\
         depressed minimum spacing)."
    );
}
