//! A deterministic parallel experiment runner.
//!
//! Every experiment in this crate is a grid of independent cells
//! (seed × parameter combinations), each a fully seeded single-threaded
//! simulation. [`run_grid`] fans the cells out over OS threads with a
//! work-stealing index and returns results **in cell order**, so the
//! emitted tables and JSON artifacts are byte-identical whether the grid
//! ran on one thread or sixteen — parallelism changes wall-clock time and
//! nothing else.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f` over every cell and returns the results in cell order.
///
/// `threads` is clamped to `[1, cells.len()]`; with one thread the cells
/// run inline on the caller. Worker threads pull the next unclaimed cell
/// index from a shared atomic counter, so long cells don't serialize the
/// grid behind them.
///
/// # Panics
///
/// Propagates a panic from any cell.
pub fn run_grid<T, R, F>(cells: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, cells.len().max(1));
    if threads <= 1 {
        return cells.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(cells.len());
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(s.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    local.push((i, f(&cells[i])));
                }
                local
            }));
        }
        for h in handles {
            collected.extend(h.join().expect("experiment cell panicked"));
        }
    });
    // Scheduling decided only who computed what; cell order decides the
    // output.
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Thread count requested on the command line: `--threads N`, `-j N`, or
/// `-jN`. Defaults to the machine's available parallelism.
#[must_use]
pub fn threads_from_args() -> usize {
    threads_from(std::env::args().skip(1))
}

fn threads_from<I: Iterator<Item = String>>(args: I) -> usize {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let value = if a == "--threads" || a == "-j" {
            args.next()
        } else if let Some(rest) = a.strip_prefix("-j") {
            Some(rest.to_string())
        } else {
            continue;
        };
        if let Some(n) = value.and_then(|v| v.parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    default_threads()
}

/// The machine's available parallelism (1 when undetectable).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_cell_order_regardless_of_threads() {
        // Cells deliberately take wildly different time: late cells finish
        // first under parallelism, yet the output must stay in order.
        let cells: Vec<u64> = (0..40).rev().collect();
        let f = |&c: &u64| {
            let mut acc = c;
            for _ in 0..(c * 1000) {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            (c, acc)
        };
        let serial = run_grid(&cells, 1, f);
        for threads in [2, 4, 8] {
            assert_eq!(run_grid(&cells, threads, f), serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_cell_grids() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_grid(&empty, 8, |&c: &u32| c).is_empty());
        assert_eq!(run_grid(&[7u32], 8, |&c: &u32| c * 2), vec![14]);
    }

    #[test]
    fn simulation_grid_identical_at_any_thread_count() {
        // Real seeded simulations, not synthetic work: the structural
        // signature of every cell must not depend on which thread ran it.
        let seeds = [1u64, 2, 3, 4];
        let f = |&seed: &u64| {
            let mut net = gs3_core::harness::NetworkBuilder::new()
                .ideal_radius(60.0)
                .radius_tolerance(14.0)
                .area_radius(110.0)
                .expected_nodes(120)
                .seed(seed)
                .build()
                .expect("valid parameters");
            net.run_for(gs3_sim::SimDuration::from_secs(60));
            net.structural_signature()
        };
        let serial = run_grid(&seeds, 1, f);
        assert_eq!(run_grid(&seeds, 4, f), serial);
    }

    #[test]
    fn thread_flag_parsing() {
        let parse = |s: &[&str]| threads_from(s.iter().map(ToString::to_string));
        assert_eq!(parse(&["--threads", "3"]), 3);
        assert_eq!(parse(&["-j", "5"]), 5);
        assert_eq!(parse(&["-j7"]), 7);
        assert_eq!(parse(&["--threads", "0"]), 1, "clamped to at least one");
        assert_eq!(parse(&["--other", "2"]), default_threads());
        assert_eq!(parse(&[]), default_threads());
    }
}
