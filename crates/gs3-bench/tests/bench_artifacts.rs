//! Regression gates over the committed `BENCH_chaos.json` and
//! `BENCH_dataplane.json` artifacts.
//!
//! The chaos sweep's congestion arm is the headline robustness claim of
//! the contention layer: at the committed density × offered-load grid,
//! congestion-adaptive degradation heals every run while the non-adaptive
//! protocol congestion-collapses in at least one cell. This test pins
//! that *shape* (not the raw counter values, which may drift with tuning)
//! so a regression in either direction — adaptation stops healing, or the
//! grid stops demonstrating a collapse — fails CI without re-running the
//! 10-minute sweep.

use std::path::Path;

/// Extract every integer following `"<key>":` inside `doc`.
fn all_ints(doc: &str, key: &str) -> Vec<u64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse() {
            out.push(v);
        }
    }
    out
}

/// Slice `doc` down to one arm's object (everything from the arm key to
/// its closing brace).
fn arm_slices<'d>(doc: &'d str, arm: &str) -> Vec<&'d str> {
    let needle = format!("\"{arm}\":{{");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let end = rest.find('}').unwrap_or(rest.len());
        out.push(&rest[..end]);
    }
    out
}

/// Extract every number (integer or decimal, `-1` sentinels included)
/// following `"<key>":` inside `doc`.
fn all_nums(doc: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse() {
            out.push(v);
        }
    }
    out
}

#[test]
fn committed_dataplane_artifact_compares_arms_and_shows_omega_nc() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dataplane.json");
    let doc = std::fs::read_to_string(&path).expect("committed BENCH_dataplane.json");

    assert!(doc.contains("\"suite\":\"BENCH_dataplane\""));
    assert!(doc.contains("\"smoke\":false"), "committed artifact must be the full run");
    assert!(all_ints(&doc, "nodes")[0] >= 10_000, "the comparison must run at >=10k nodes");

    // All three arms present, each with a live workload and a real energy
    // bill (raw values drift with tuning; the shape is what's pinned).
    for arm in ["gs3", "leach", "hop"] {
        assert!(doc.contains(&format!("\"arm\":\"{arm}\"")), "missing arm {arm}");
    }
    let delivered = all_ints(&doc, "reports_delivered");
    assert_eq!(delivered.len(), 3);
    assert!(delivered.iter().all(|&r| r > 0), "every arm must deliver reports: {delivered:?}");
    let energy = all_nums(&doc, "energy_spent");
    assert_eq!(energy.len(), 3);
    assert!(energy.iter().all(|&e| e > 0.0), "every arm must dissipate energy");
    let rpj = all_nums(&doc, "reports_per_joule");
    assert!(rpj.iter().all(|&r| r > 0.0));

    // The Ω(n_c) claim: the maintained/unmaintained lengthening factor
    // exists, exceeds 1, and does not shrink as cell population grows.
    let sweep = &doc[doc.find("\"lifetime_sweep\":").expect("sweep missing")..];
    let n_c = all_nums(sweep, "mean_cell_population");
    let lengthening = all_nums(sweep, "lengthening");
    assert!(n_c.len() >= 2, "sweep needs at least two densities");
    assert_eq!(n_c.len(), lengthening.len());
    assert!(n_c.windows(2).all(|w| w[0] < w[1]), "densities must ascend: {n_c:?}");
    assert!(
        lengthening.iter().all(|&f| f > 1.0),
        "maintenance must lengthen life at every density: {lengthening:?}"
    );
    assert!(
        lengthening.windows(2).all(|w| w[1] >= w[0]),
        "the lengthening factor must grow with n_c (Ω(n_c)): {lengthening:?}"
    );
}

#[test]
fn committed_chaos_artifact_shows_adaptive_healing_and_a_collapse() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_chaos.json");
    let doc = std::fs::read_to_string(&path).expect("committed BENCH_chaos.json");
    let cong = &doc[doc.find("\"congestion_cells\":").expect("congestion arm missing")..];

    let on = arm_slices(cong, "adaptive_on");
    let off = arm_slices(cong, "adaptive_off");
    assert_eq!(on.len(), 4, "expected a 2×2 congestion grid");
    assert_eq!(off.len(), on.len());

    // Adaptive arm: every run of every cell configures and heals.
    for cell in &on {
        let runs = all_ints(cell, "runs")[0];
        assert_eq!(all_ints(cell, "configured")[0], runs, "adaptive run failed to configure: {cell}");
        assert_eq!(all_ints(cell, "healed")[0], runs, "adaptive run failed to heal: {cell}");
    }
    // Non-adaptive arm: at least one cell congestion-collapses.
    let collapsed = off
        .iter()
        .filter(|cell| all_ints(cell, "healed")[0] < all_ints(cell, "runs")[0])
        .count();
    assert!(collapsed >= 1, "committed grid no longer demonstrates a congestion collapse");

    // The reliability arm's long-standing shape still holds: every cell
    // of the burst × churn grid heals in both arms.
    let rel = &doc[..doc.find("\"congestion_cells\":").unwrap()];
    for arm in ["reliable_off", "reliable_on"] {
        for cell in arm_slices(rel, arm) {
            let runs = all_ints(cell, "runs")[0];
            assert_eq!(all_ints(cell, "healed")[0], runs, "{arm} cell no longer heals: {cell}");
        }
    }
}
