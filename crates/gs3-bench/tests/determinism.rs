//! Thread-count determinism of the experiment harness: the episode JSON
//! an experiment emits must be byte-identical however its grid is fanned
//! out — [`run_grid`](gs3_bench::runner::run_grid) returns cells in grid
//! order and every cell is a fully seeded single-threaded simulation, so
//! `-j 1` and `-j 4` may differ only in wall-clock time.

use gs3_bench::locality;

#[test]
fn locality_episode_json_is_identical_across_thread_counts() {
    // A small grid keeps the debug-mode runtime down; the full-size bench
    // uses the same run_cell/sweep_grid_json path.
    let sizes = [200usize];
    let seeds = [11u64, 23];
    let serial = locality::sweep_grid_json(&sizes, &seeds, 1);
    let parallel = locality::sweep_grid_json(&sizes, &seeds, 4);
    assert_eq!(serial, parallel, "episode JSON must not depend on -j");
    // Sanity: the document carries real episode measurements.
    assert!(serial.contains("\"radius_m\":"));
    assert!(serial.contains("\"tainted\":"));
}
