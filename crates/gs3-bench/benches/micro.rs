//! Criterion micro-benchmarks for the GS³ reproduction.
//!
//! * `head_select` — candidate ranking/selection cost vs `|SmallNodes|`
//!   (the paper states `HEAD_SELECT` is `θ(|SmallNodes|)`).
//! * `event_queue` — simulator event-queue throughput.
//! * `spatial_grid` — broadcast neighborhood queries.
//! * `cell_spiral` — intra-cell spiral construction (cell shift setup).
//! * `configuration` — end-to-end self-configuration wall time vs network
//!   size.
//! * `invariant_check` — full predicate-suite cost on a configured
//!   network.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use gs3_core::harness::NetworkBuilder;
use gs3_core::invariants::{check_all, Strictness};
use gs3_core::Mode;
use gs3_geometry::rank::best_candidate;
use gs3_geometry::spiral::CellSpiral;
use gs3_geometry::{Angle, Point};
use gs3_sim::queue::EventQueue;
use gs3_sim::spatial::SpatialGrid;
use gs3_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pts(n: usize, seed: u64) -> Vec<(u64, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|i| (i, Point::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0))))
        .collect()
}

fn bench_head_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("head_select");
    for n in [50usize, 200, 800] {
        let nodes = pts(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &nodes, |b, nodes| {
            b.iter(|| best_candidate(Point::ORIGIN, Angle::ZERO, nodes.iter().copied()));
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_spatial_grid(c: &mut Criterion) {
    let mut grid = SpatialGrid::new(100.0);
    let nodes = pts(5_000, 2);
    for (i, p) in &nodes {
        grid.insert(*i as usize, Point::new(p.x * 20.0, p.y * 20.0));
    }
    c.bench_function("spatial_grid/query_5k", |b| {
        b.iter(|| {
            let mut count = 0usize;
            grid.for_each_candidate(Point::ORIGIN, 150.0, |_| count += 1);
            black_box(count)
        });
    });
}

fn bench_cell_spiral(c: &mut Criterion) {
    c.bench_function("cell_spiral/build_r100_rt10", |b| {
        b.iter(|| CellSpiral::new(black_box(Point::ORIGIN), 100.0, 10.0, Angle::ZERO));
    });
}

fn bench_configuration(c: &mut Criterion) {
    let mut group = c.benchmark_group("configuration");
    group.sample_size(10);
    for n in [300usize, 900] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net = NetworkBuilder::new()
                    .mode(Mode::Static)
                    .ideal_radius(80.0)
                    .radius_tolerance(18.0)
                    .area_radius((n as f64).sqrt() * 8.0)
                    .expected_nodes(n)
                    .seed(7)
                    .build()
                    .expect("valid parameters");
                net.engine_mut()
                    .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(600))
                    .expect("static diffusion terminates");
                black_box(net.snapshot().heads().count())
            });
        });
    }
    group.finish();
}

fn bench_invariant_check(c: &mut Criterion) {
    let mut net = NetworkBuilder::new()
        .mode(Mode::Static)
        .ideal_radius(80.0)
        .radius_tolerance(18.0)
        .area_radius(250.0)
        .expected_nodes(900)
        .seed(7)
        .build()
        .expect("valid parameters");
    net.engine_mut()
        .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(600))
        .expect("terminates");
    let snap = net.snapshot();
    c.bench_function("invariant_check/900_nodes", |b| {
        b.iter(|| black_box(check_all(&snap, Strictness::Static).len()));
    });
}

criterion_group!(
    benches,
    bench_head_select,
    bench_event_queue,
    bench_spatial_grid,
    bench_cell_spiral,
    bench_configuration,
    bench_invariant_check
);
criterion_main!(benches);
