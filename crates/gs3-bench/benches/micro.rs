//! Micro-benchmarks for the GS³ reproduction (hand-rolled harness; the
//! build environment has no registry access, so no criterion).
//!
//! * `head_select` — candidate ranking/selection cost vs `|SmallNodes|`
//!   (the paper states `HEAD_SELECT` is `θ(|SmallNodes|)`).
//! * `event_queue` — simulator event-queue throughput.
//! * `spatial_grid` — broadcast neighborhood queries.
//! * `cell_spiral` — intra-cell spiral construction (cell shift setup).
//! * `configuration` — end-to-end self-configuration wall time vs network
//!   size.
//! * `invariant_check` — full predicate-suite cost on a configured
//!   network.
//! * `snapshot_into/{n}` — zero-realloc snapshot refill at n ∈ {1k, 10k}.
//! * `check_all_grid/{n}` vs `check_all_naive/{n}` — the spatial-indexed
//!   invariant engine against the all-pairs reference at n ∈ {1k, 10k};
//!   a speedup line is printed per size.
//! * `recorder_count_only/10k` vs `recorder_record_full/10k` — the
//!   flight-recorder emission hot path: the always-on per-class counter
//!   bump against a Full-mode structured ring write.
//!
//! Run with `cargo bench -p gs3-bench`. Reports median wall time per
//! iteration over a fixed wall-time budget per benchmark.

// gs3-lint: allow-file(d2) -- wall-clock timing is this benchmark harness's product; no simulation state depends on it
use std::hint::black_box;
use std::time::{Duration, Instant};

use gs3_core::harness::NetworkBuilder;
use gs3_core::invariants::{check_all, check_all_with, naive, SnapshotIndex, Strictness};
use gs3_core::Mode;
use gs3_geometry::rank::best_candidate;
use gs3_geometry::spiral::CellSpiral;
use gs3_geometry::{Angle, Point};
use gs3_sim::queue::EventQueue;
use gs3_sim::spatial::SpatialGrid;
use gs3_sim::telemetry::{Event, EventClass, FlightRecorder, RecorderMode, NO_PEER};
use gs3_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `f` repeatedly for up to `budget`, printing the median, minimum,
/// and iteration count. Returns the median for cross-bench comparisons.
fn bench<F: FnMut()>(name: &str, budget: Duration, mut f: F) -> Duration {
    // One warm-up iteration outside the measurement.
    f();
    let mut samples = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 3 {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
        if samples.len() >= 100_000 {
            break;
        }
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{name:<40} median {:>12?}  min {:>12?}  ({} iters)",
        median,
        samples[0],
        samples.len()
    );
    median
}

fn pts(n: usize, seed: u64) -> Vec<(u64, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|i| (i, Point::new(rng.gen_range(-50.0f64..50.0), rng.gen_range(-50.0f64..50.0))))
        .collect()
}

fn main() {
    let quick = Duration::from_millis(300);
    let slow = Duration::from_secs(3);

    for n in [50usize, 200, 800] {
        let nodes = pts(n, 1);
        bench(&format!("head_select/{n}"), quick, || {
            black_box(best_candidate(Point::ORIGIN, Angle::ZERO, nodes.iter().copied()));
        });
    }

    bench("event_queue/push_pop_10k", quick, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
        }
        while let Some(ev) = q.pop() {
            black_box(ev);
        }
    });

    {
        let mut grid = SpatialGrid::new(100.0);
        let nodes = pts(5_000, 2);
        for (i, p) in &nodes {
            grid.insert(*i as usize, Point::new(p.x * 20.0, p.y * 20.0));
        }
        bench("spatial_grid/query_5k", quick, || {
            let mut count = 0usize;
            grid.for_each_candidate(Point::ORIGIN, 150.0, |_| count += 1);
            black_box(count);
        });
    }

    bench("cell_spiral/build_r100_rt10", quick, || {
        black_box(CellSpiral::new(black_box(Point::ORIGIN), 100.0, 10.0, Angle::ZERO));
    });

    for n in [300usize, 900] {
        bench(&format!("configuration/{n}"), slow, || {
            let mut net = NetworkBuilder::new()
                .mode(Mode::Static)
                .ideal_radius(80.0)
                .radius_tolerance(18.0)
                .area_radius((n as f64).sqrt() * 8.0)
                .expected_nodes(n)
                .seed(7)
                .build()
                .expect("valid parameters");
            net.engine_mut()
                .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(600))
                .expect("static diffusion terminates");
            black_box(net.snapshot().heads().count());
        });
    }

    {
        let mut net = NetworkBuilder::new()
            .mode(Mode::Static)
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(250.0)
            .expected_nodes(900)
            .seed(7)
            .build()
            .expect("valid parameters");
        net.engine_mut()
            .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(600))
            .expect("terminates");
        let snap = net.snapshot();
        bench("invariant_check/900_nodes", quick, || {
            black_box(check_all(&snap, Strictness::Static).len());
        });
    }

    // Flight-recorder emission: what one engine event pays in each mode.
    {
        let mut rec = FlightRecorder::new();
        bench("recorder_count_only/10k", quick, || {
            for _ in 0..10_000u64 {
                rec.count_only(black_box(EventClass::Delivery));
            }
            black_box(rec.total());
        });
        let mut rec = FlightRecorder::new();
        rec.set_mode(RecorderMode::Full { capacity: 4_096 });
        bench("recorder_record_full/10k", quick, || {
            for i in 0..10_000u64 {
                rec.record(black_box(Event {
                    t_us: i,
                    node: i % 64,
                    class: EventClass::Delivery,
                    kind: "bench",
                    peer: NO_PEER,
                    episode: 0,
                    data: i,
                }));
            }
            black_box(rec.total());
        });
    }

    // Snapshot reuse and the indexed-vs-naive invariant engine at scale.
    for n in [1_000usize, 10_000] {
        let mut net = NetworkBuilder::new()
            .mode(Mode::Static)
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius((n as f64).sqrt() * 8.0)
            .expected_nodes(n)
            .seed(7)
            .build()
            .expect("valid parameters");
        net.engine_mut()
            .run_until_quiescent(SimTime::ZERO + SimDuration::from_secs(900))
            .expect("static diffusion terminates");

        let mut buf = net.snapshot();
        bench(&format!("snapshot_into/{n}"), quick, || {
            net.snapshot_into(&mut buf);
            black_box(buf.nodes.len());
        });

        let snap = net.snapshot();
        let grid = bench(&format!("check_all_grid/{n}"), quick, || {
            let idx = SnapshotIndex::build(&snap);
            black_box(check_all_with(&snap, Strictness::Static, &idx).len());
        });
        let naive = bench(&format!("check_all_naive/{n}"), slow, || {
            black_box(naive::check_all(&snap, Strictness::Static).len());
        });
        println!(
            "check_all/{n:<33} speedup {:.1}x (grid over naive)",
            naive.as_secs_f64() / grid.as_secs_f64().max(1e-9)
        );
    }
}
