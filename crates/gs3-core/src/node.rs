//! The GS³ node state machine.
//!
//! [`Gs3Node`] implements [`gs3_sim::Node`] and dispatches every message
//! and timer to the module that owns it, mirroring the paper's program
//! structure (Figures 2, 6, 9):
//!
//! * head organization — `head_org.rs`
//! * intra-cell maintenance — `intra.rs`
//! * inter-cell maintenance — `inter.rs`
//! * node join — `join.rs`
//! * sanity checking — `sanity.rs`
//! * big-node slide/move — `big.rs`
//! * sensing workload — `workload.rs`

use gs3_geometry::Point;
use gs3_geometry::spiral::IccIcp;
use gs3_sim::{Context, NodeId, SimDuration};

use crate::config::{Gs3Config, Mode};
use crate::messages::{CellInfo, Msg};
use crate::reliable::ReliableState;
use crate::state::{AssocState, BigAwayState, DataState, HeadState, Role};
use crate::timers::Timer;

/// Shorthand for the simulator context type GS³ nodes use.
pub type Ctx<'a> = Context<'a, Msg, Timer>;

/// One GS³ protocol participant (big or small node).
#[derive(Debug, Clone)]
pub struct Gs3Node {
    pub(crate) cfg: Gs3Config,
    pub(crate) is_big: bool,
    pub(crate) role: Role,
    /// Reliability-layer state (sequence numbers, pending sends, dedup
    /// windows, failure detectors) — kept outside [`Role`] so it survives
    /// role transitions.
    pub(crate) rel: ReliableState,
    /// Congestion-adaptation state (observation baseline and stretch
    /// exponent) — also role-independent.
    pub(crate) cong: crate::congestion::CongestionState,
    /// Convergecast data-plane state (queues, credits, sequence spaces) —
    /// role-independent and inert while `cfg.dataplane` is disabled.
    pub(crate) data: DataState,
}

impl Gs3Node {
    /// Creates a small node.
    #[must_use]
    pub fn small(cfg: Gs3Config) -> Self {
        Gs3Node {
            cfg,
            is_big: false,
            role: Role::bootup(),
            rel: ReliableState::default(),
            cong: Default::default(),
            data: DataState::default(),
        }
    }

    /// Creates the big node (initiator and root of the head graph).
    #[must_use]
    pub fn big(cfg: Gs3Config) -> Self {
        Gs3Node {
            cfg,
            is_big: true,
            role: Role::bootup(),
            rel: ReliableState::default(),
            cong: Default::default(),
            data: DataState::default(),
        }
    }

    /// Whether this is the big node.
    #[must_use]
    pub fn is_big(&self) -> bool {
        self.is_big
    }

    /// The node's current role.
    #[must_use]
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// The protocol configuration this node runs.
    #[must_use]
    pub fn config(&self) -> &Gs3Config {
        &self.cfg
    }

    /// Head state accessor (None unless currently a head).
    #[must_use]
    pub fn head_state(&self) -> Option<&HeadState> {
        match &self.role {
            Role::Head(h) => Some(h),
            _ => None,
        }
    }

    /// Associate state accessor (None unless currently an associate).
    #[must_use]
    pub fn assoc_state(&self) -> Option<&AssocState> {
        match &self.role {
            Role::Associate(a) => Some(a),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Role transitions (shared by the protocol modules)
    // ------------------------------------------------------------------

    /// Becomes a head anchored at `il` (freshly selected by a `⟨HeadSet⟩`
    /// or reconstructed from an inherited [`CellInfo`]).
    // Load-bearing: mirrors HeadState::new's 8-value anchor; see the
    // justification there.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn become_head(
        &mut self,
        ctx: &mut Ctx<'_>,
        il: Point,
        oil: Point,
        icc_icp: IccIcp,
        parent: NodeId,
        parent_il: Point,
        root_pos: Point,
        hops: u32,
    ) -> &mut HeadState {
        // Leaving a previous cell politely.
        if let Role::Associate(a) = &self.role {
            if a.head != ctx.id() && !a.surrogate {
                ctx.unicast(a.head, Msg::AssociateRetreat);
            }
        }
        self.cancel_role_timers(ctx);
        let hs = HeadState::new(il, oil, icc_icp, parent, parent_il, root_pos, hops, ctx.now());
        self.role = Role::Head(Box::new(hs));
        if self.cfg.mode != Mode::Static {
            self.schedule_head_timers(ctx);
        }
        match &mut self.role {
            Role::Head(h) => h,
            _ => unreachable!("role was just set to Head"),
        }
    }

    /// Becomes an associate of `head` within `cell`.
    pub(crate) fn become_associate(
        &mut self,
        ctx: &mut Ctx<'_>,
        head: NodeId,
        head_pos: Point,
        cell: CellInfo,
        surrogate: bool,
        announce: bool,
    ) {
        if let Role::Associate(a) = &self.role {
            if a.head != head && a.head != ctx.id() && !a.surrogate {
                ctx.unicast(a.head, Msg::AssociateRetreat);
            }
        }
        self.cancel_role_timers(ctx);
        if announce && !surrogate {
            ctx.unicast(head, Msg::AssociateAlive { pos: ctx.position() });
        }
        self.role = Role::Associate(AssocState {
            head,
            head_pos,
            cell,
            last_heard: ctx.now(),
            surrogate,
            election_pending: None,
        });
        if self.cfg.mode != Mode::Static {
            ctx.set_timer(self.cfg.intra_heartbeat, Timer::AssocWatch);
            if surrogate {
                // Surrogates keep probing for a real head.
                ctx.set_timer(self.cfg.join_retry, Timer::JoinProbe);
            }
        }
    }

    /// Goes back to bootup (after abandonment, disconnection, or
    /// corruption-demotion) and schedules a prompt re-join in
    /// dynamic/mobile modes.
    pub(crate) fn become_bootup(&mut self, ctx: &mut Ctx<'_>, rejoin_quickly: bool) {
        self.cancel_role_timers(ctx);
        self.role = Role::bootup();
        if self.cfg.mode != Mode::Static {
            let base = if rejoin_quickly {
                SimDuration::from_millis(500)
            } else {
                self.cfg.join_initial_delay
            };
            let jitter = self.join_jitter(ctx);
            ctx.set_timer(base + jitter, Timer::JoinProbe);
        }
    }

    /// The big node steps away from head duty.
    pub(crate) fn become_big_away(&mut self, ctx: &mut Ctx<'_>, mobile: bool) {
        debug_assert!(self.is_big);
        self.cancel_role_timers(ctx);
        self.role = Role::BigAway(BigAwayState::new(mobile, ctx.now()));
        ctx.set_timer(self.cfg.proxy_refresh, Timer::BigCheck);
    }

    /// Schedules the recurring head timers (heartbeats, sanity, boundary
    /// checks) with per-node phase jitter so cells do not beat in lockstep.
    fn schedule_head_timers(&mut self, ctx: &mut Ctx<'_>) {
        let j1 = self.phase_jitter(ctx, self.cfg.intra_heartbeat);
        ctx.set_timer(j1, Timer::IntraHeartbeat);
        let j2 = self.phase_jitter(ctx, self.cfg.inter_heartbeat);
        ctx.set_timer(j2, Timer::InterHeartbeat);
        let j3 = self.phase_jitter(ctx, self.cfg.sanity_period);
        ctx.set_timer(self.cfg.sanity_period + j3, Timer::SanityTick);
        let j4 = self.phase_jitter(ctx, self.cfg.boundary_check_period);
        ctx.set_timer(self.cfg.boundary_check_period + j4, Timer::BoundaryTick);
    }

    /// Cancels every timer tied to the current role (on role exit).
    fn cancel_role_timers(&mut self, ctx: &mut Ctx<'_>) {
        match &self.role {
            Role::Head(h) => {
                ctx.cancel_timers(Timer::IntraHeartbeat);
                ctx.cancel_timers(Timer::InterHeartbeat);
                ctx.cancel_timers(Timer::SanityTick);
                ctx.cancel_timers(Timer::BoundaryTick);
                if h.org.is_some() {
                    ctx.release_channel();
                }
            }
            Role::Associate(a) => {
                ctx.cancel_timers(Timer::AssocWatch);
                ctx.cancel_timers(Timer::JoinProbe);
                if let Some(dead) = a.election_pending {
                    ctx.cancel_timers(Timer::Election { dead_head: dead });
                }
            }
            Role::Bootup(_) => {
                ctx.cancel_timers(Timer::JoinProbe);
            }
            Role::BigAway(_) => {
                ctx.cancel_timers(Timer::BigCheck);
            }
        }
    }

    /// Uniform jitter in `[0, period/4)` used to de-synchronize periodic
    /// timers.
    pub(crate) fn phase_jitter(&self, ctx: &mut Ctx<'_>, period: SimDuration) -> SimDuration {
        use rand::Rng as _;
        let max = (period.as_micros() / 4).max(1);
        SimDuration::from_micros(ctx.rng().gen_range(0..max))
    }

    /// Jitter for join probing (avoids probe storms after mass failures).
    pub(crate) fn join_jitter(&self, ctx: &mut Ctx<'_>) -> SimDuration {
        use rand::Rng as _;
        let max = self.cfg.join_retry.as_micros().max(2) / 2;
        SimDuration::from_micros(ctx.rng().gen_range(0..max))
    }
}

impl gs3_sim::Node for Gs3Node {
    type Msg = Msg;
    type Timer = Timer;

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.arm_report_tick(ctx);
        if self.is_big {
            // The big node anchors the structure: its own position is the
            // 0-band cell's IL and OIL, it is its own parent, hops = 0.
            let pos = ctx.position();
            let me = ctx.id();
            self.become_head(ctx, pos, pos, IccIcp::ORIGIN, me, pos, pos, 0);
            self.start_head_org(ctx);
        } else {
            self.role = Role::bootup();
            if self.cfg.mode != Mode::Static {
                // Nodes present at deployment time hold off probing so the
                // initial diffusing computation claims them; late joiners
                // (spawned after that window) probe promptly.
                let initial_window = self.cfg.join_initial_delay;
                let delay = if ctx.now() >= gs3_sim::SimTime::ZERO + initial_window {
                    SimDuration::from_secs(1) + self.join_jitter(ctx)
                } else {
                    initial_window + self.join_jitter(ctx)
                };
                ctx.set_timer(delay, Timer::JoinProbe);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_>) {
        match msg {
            // head organization
            Msg::Org(info) => self.on_org(from, info, ctx),
            Msg::OrgReply { pos, current_head } => self.on_org_reply(from, pos, current_head, ctx),
            Msg::HeadOrgReply { pos, il, icc_icp, hops } => {
                self.on_head_org_reply(from, pos, il, icc_icp, hops, ctx);
            }
            Msg::HeadSet { org, assignments } => self.on_head_set(from, org, assignments, ctx),
            // intra-cell
            Msg::HeadIntraAlive(ci) => self.on_head_intra_alive(from, ci, ctx),
            Msg::HeadIntraAck { pos, energy } => self.on_head_intra_ack(from, pos, energy, ctx),
            Msg::AssociateAlive { pos } => self.on_associate_alive(from, pos, ctx),
            Msg::AssociateRetreat => self.on_associate_retreat(from, ctx),
            Msg::HeadRetreat(ci) => self.on_head_retreat(from, ci, ctx),
            Msg::ReplacingHead => self.on_replacing_head(from, ctx),
            Msg::NewHeadAnnounce(ci) => self.on_new_head_announce(from, ci, ctx),
            Msg::CellAbandoned => self.on_cell_abandoned(from, ctx),
            // inter-cell
            Msg::HeadInterAlive(hi) => self.on_head_inter_alive(from, hi, ctx),
            Msg::NewChildHead { pos, il } => self.on_new_child_head(from, pos, il, ctx),
            Msg::ChildRetire => self.on_child_retire(from, ctx),
            Msg::ParentSeek { il, round } => self.on_parent_seek(from, il, round, ctx),
            Msg::ParentSeekAck { hops, il, pos, round } => {
                self.on_parent_seek_ack(from, hops, il, pos, round, ctx);
            }
            // sanity
            Msg::SanityCheckReq => self.on_sanity_check_req(from, ctx),
            Msg::SanityCheckValid => self.on_sanity_check_valid(from, ctx),
            Msg::HeadRetreatCorrupted => self.on_head_retreat_corrupted(from, ctx),
            // join
            Msg::BootupProbe { pos } => self.on_bootup_probe(from, pos, ctx),
            Msg::HeadJoinResp { pos, il, hops } => self.on_head_join_resp(from, pos, il, hops, ctx),
            Msg::AssociateJoinResp { pos, head } => {
                self.on_associate_join_resp(from, pos, head, ctx);
            }
            // sensing workload
            Msg::SensorReport { seq } => self.on_sensor_report(from, seq, ctx),
            Msg::AggregateReport { count } => self.on_aggregate_report(from, count, ctx),
            Msg::DataBatch { items } => self.on_data_batch(from, items, ctx),
            Msg::DataCredit { grant } => self.on_data_credit(from, grant, ctx),
            // big-node mobility
            Msg::ProxyAssign => self.on_proxy_assign(from, ctx),
            Msg::ProxyRelease => self.on_proxy_release(from, ctx),
            // reliability envelope
            Msg::Reliable { seq, inner } => self.on_reliable(from, seq, *inner, ctx),
            Msg::DeliveryAck { seq } => self.on_delivery_ack(from, seq, ctx),
        }
    }

    fn on_timer(&mut self, timer: Timer, ctx: &mut Ctx<'_>) {
        match timer {
            Timer::CollectDeadline { round } => self.on_collect_deadline(round, ctx),
            Timer::AwaitDecision { org_head } => self.on_await_decision(org_head, ctx),
            Timer::IntraHeartbeat => self.on_intra_heartbeat(ctx),
            Timer::InterHeartbeat => self.on_inter_heartbeat(ctx),
            Timer::AssocWatch => self.on_assoc_watch(ctx),
            Timer::SanityTick => self.on_sanity_tick(ctx),
            Timer::SanityDeadline { round } => self.on_sanity_deadline(round, ctx),
            Timer::BoundaryTick => self.on_boundary_tick(ctx),
            Timer::JoinProbe => self.on_join_probe(ctx),
            Timer::JoinDecision { round } => self.on_join_decision(round, ctx),
            Timer::Election { dead_head } => self.on_election(dead_head, ctx),
            Timer::BigCheck => self.on_big_check(ctx),
            Timer::ProxyExpire => self.on_proxy_expire(ctx),
            Timer::ReportTick => self.on_report_tick(ctx),
            Timer::Retransmit { seq } => self.on_retransmit(seq, ctx),
        }
    }

    fn on_channel_granted(&mut self, ctx: &mut Ctx<'_>) {
        self.on_org_channel_granted(ctx);
    }
}
