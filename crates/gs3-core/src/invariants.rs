//! The paper's invariant and fixpoint predicates as executable checks.
//!
//! Each function verifies one family of predicates from Sections 3.3 / 4.3
//! against a [`Snapshot`] and reports violations. [`check_all`] bundles the
//! full suite. The checks implement the *dynamic* relaxations (I₂ with
//! `⟨ICC, ICP⟩`-dependent distances, ≤5 children) when `strictness` is
//! [`Strictness::Dynamic`], and the tight static bounds when
//! [`Strictness::Static`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gs3_geometry::{head_spacing, Point, SQRT_3};
use gs3_sim::NodeId;

use crate::snapshot::{NodeView, RoleView, Snapshot};

/// Which bound set to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// GS³-S bounds (Theorem 1): ≤3 children per small head, distances in
    /// `[√3R − 2R_t, √3R + 2R_t]`.
    Static,
    /// GS³-D/M relaxations (Theorem 5): ≤5 children, IL-relative distance
    /// bounds, boundary-cell slack.
    Dynamic,
}

/// One violated predicate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which predicate family failed.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
}

/// The predicate families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// I₁.₂ — the head graph is not a tree rooted at the big node.
    HeadGraphNotTree,
    /// I₁.₁ — heads connected in `G_h` are not connected in `G_p`.
    HeadGraphUnreachable,
    /// I₂.₁/I₂.₂ — neighboring-head distance out of bounds.
    NeighborDistance,
    /// I₂.₃ — too many children.
    ChildrenCount,
    /// I₂.₄ — an associate is too far from its head.
    CellRadius,
    /// I₃/F₃ — an associate is not with its best (closest) head.
    NotBestHead,
    /// F₄ — a node connected to the big node is not in any cell.
    Coverage,
    /// A head strayed more than `R_t` from its IL.
    HeadOffIdeal,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// Numeric slack applied to all geometric comparisons (covers float error
/// and in-flight position updates).
const EPS: f64 = 1e-6;

fn head_fields(n: &NodeView) -> Option<(Point, NodeId, u32, &Vec<NodeId>)> {
    match &n.role {
        RoleView::Head { il, parent, hops, children, .. } => Some((*il, *parent, *hops, children)),
        _ => None,
    }
}

/// I₁.₂: the head graph is a tree rooted at the big node (or at its proxy
/// / current root when the big node is away): exactly one root, every head
/// reaches it by parent pointers, and hops are consistent along the way.
#[must_use]
pub fn check_head_graph_tree(snap: &Snapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    let heads: BTreeMap<NodeId, &NodeView> = snap.heads().map(|n| (n.id, n)).collect();
    if heads.is_empty() {
        return vec![Violation {
            kind: ViolationKind::HeadGraphNotTree,
            detail: "no heads at all".into(),
        }];
    }
    let roots: Vec<NodeId> = heads
        .values()
        .filter_map(|n| head_fields(n).filter(|(_, p, ..)| *p == n.id).map(|_| n.id))
        .collect();
    if roots.len() != 1 {
        out.push(Violation {
            kind: ViolationKind::HeadGraphNotTree,
            detail: format!("expected exactly 1 root, found {roots:?}"),
        });
    }
    // Walk parent pointers from every head; must terminate at a root
    // without revisiting (cycle detection).
    for (&id, view) in &heads {
        let mut seen = BTreeSet::new();
        let mut cur = id;
        loop {
            if !seen.insert(cur) {
                out.push(Violation {
                    kind: ViolationKind::HeadGraphNotTree,
                    detail: format!("parent cycle through {cur}"),
                });
                break;
            }
            let Some(h) = heads.get(&cur) else {
                out.push(Violation {
                    kind: ViolationKind::HeadGraphNotTree,
                    detail: format!("{id}'s ancestor {cur} is not an alive head"),
                });
                break;
            };
            let (_, parent, ..) = head_fields(h).expect("heads() yields heads");
            if parent == cur {
                break; // reached the root
            }
            cur = parent;
        }
        let _ = view;
    }
    out
}

/// The root each head reaches by following parent pointers, or `None`
/// when the chain is broken (cycle, or an ancestor that is not an alive
/// head).
#[must_use]
pub fn head_roots(snap: &Snapshot) -> BTreeMap<NodeId, Option<NodeId>> {
    let heads: BTreeMap<NodeId, &NodeView> = snap.heads().map(|n| (n.id, n)).collect();
    let mut out = BTreeMap::new();
    for &id in heads.keys() {
        let mut seen = BTreeSet::new();
        let mut cur = id;
        let root = loop {
            if !seen.insert(cur) {
                break None; // cycle
            }
            let Some(h) = heads.get(&cur) else {
                break None; // dead ancestor
            };
            let (_, parent, ..) = head_fields(h).expect("heads() yields heads");
            if parent == cur {
                break Some(cur);
            }
            cur = parent;
        };
        out.insert(id, root);
    }
    out
}

/// Multi-big-node variant of I₁.₂ (the paper's Section 7 extension): the
/// head graph is a *forest* with exactly `expected_roots` trees, every
/// head's parent chain terminating at some root.
#[must_use]
pub fn check_head_graph_forest(snap: &Snapshot, expected_roots: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    let roots = head_roots(snap);
    let distinct: BTreeSet<NodeId> = roots.values().flatten().copied().collect();
    if distinct.len() != expected_roots {
        out.push(Violation {
            kind: ViolationKind::HeadGraphNotTree,
            detail: format!("expected {expected_roots} roots, found {distinct:?}"),
        });
    }
    for (id, root) in &roots {
        if root.is_none() {
            out.push(Violation {
                kind: ViolationKind::HeadGraphNotTree,
                detail: format!("head {id} has a broken parent chain"),
            });
        }
    }
    out
}

/// I₁.₁: every parent-child edge of the head graph is realizable in the
/// physical network `G_p` (both endpoints within transmission range — the
/// paper's heads communicate directly within `√3R + 2R_t`).
#[must_use]
pub fn check_head_graph_physical(snap: &Snapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    let heads: BTreeMap<NodeId, &NodeView> = snap.heads().map(|n| (n.id, n)).collect();
    for (&id, view) in &heads {
        let (_, parent, ..) = head_fields(view).expect("heads() yields heads");
        if parent == id {
            continue;
        }
        if let Some(p) = heads.get(&parent) {
            let d = view.pos.distance(p.pos);
            if d > snap.max_range + EPS {
                out.push(Violation {
                    kind: ViolationKind::HeadGraphUnreachable,
                    detail: format!("edge {id}→{parent} spans {d:.1} > range {}", snap.max_range),
                });
            }
        }
    }
    out
}

/// I₂.₁/I₂.₂: distances between *neighboring* heads stay within
/// `dist(IL_i, IL_j) ± 2R_t` (which reduces to `√3R ± 2R_t` when both
/// cells are at the same `⟨ICC, ICP⟩`). Two heads are treated as
/// neighbors when their ILs are within 1.25 lattice spacings.
#[must_use]
pub fn check_neighbor_distances(snap: &Snapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    let spacing = head_spacing(snap.r);
    let heads: Vec<&NodeView> = snap.heads().collect();
    for (i, a) in heads.iter().enumerate() {
        let (il_a, ..) = head_fields(a).expect("head");
        for b in &heads[i + 1..] {
            let (il_b, ..) = head_fields(b).expect("head");
            let ideal = il_a.distance(il_b);
            if ideal > 1.25 * spacing || ideal < EPS {
                continue;
            }
            let actual = a.pos.distance(b.pos);
            if (actual - ideal).abs() > 2.0 * snap.r_t + EPS {
                out.push(Violation {
                    kind: ViolationKind::NeighborDistance,
                    detail: format!(
                        "heads {} and {}: |{actual:.1} − {ideal:.1}| > 2·R_t = {:.1}",
                        a.id,
                        b.id,
                        2.0 * snap.r_t
                    ),
                });
            }
        }
    }
    out
}

/// I₂.₃: children counts — small heads ≤3 (static) / ≤5 (dynamic); the
/// big node ≤6.
#[must_use]
pub fn check_children_counts(snap: &Snapshot, strictness: Strictness) -> Vec<Violation> {
    let limit = match strictness {
        Strictness::Static => 3,
        Strictness::Dynamic => 5,
    };
    let mut out = Vec::new();
    for n in snap.heads() {
        let (_, parent, _, children) = head_fields(n).expect("head");
        // The big node — and any head acting as the root (the big node's
        // proxy) — sits at the lattice center of its neighborhood and
        // legitimately parents all six surrounding cells.
        let is_root = parent == n.id;
        let cap = if n.is_big || is_root { 6 } else { limit };
        if children.len() > cap {
            out.push(Violation {
                kind: ViolationKind::ChildrenCount,
                detail: format!("head {} has {} children (cap {cap})", n.id, children.len()),
            });
        }
    }
    out
}

/// I₂.₄: every associate is within the cell-radius bound of its head:
/// `R + 2R_t/√3` for inner cells, `√3R + 2R_t` for boundary cells (the
/// dynamic relaxation with `d_p = 0`; gap-adjacent cells can exceed this
/// and are excluded by the caller supplying `boundary_slack`).
#[must_use]
pub fn check_cell_radius(snap: &Snapshot, boundary_slack: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    let heads: BTreeMap<NodeId, &NodeView> = snap.heads().map(|n| (n.id, n)).collect();
    let inner = inner_heads(snap);
    let inner_bound = snap.r + 2.0 * snap.r_t / SQRT_3;
    let boundary_bound = SQRT_3 * snap.r + 2.0 * snap.r_t + boundary_slack;
    for n in snap.associates() {
        let RoleView::Associate { head, surrogate, .. } = &n.role else {
            continue;
        };
        if *surrogate {
            continue; // surrogate distance is bounded by radio range only
        }
        let Some(h) = heads.get(head) else {
            continue; // dangling pointer is reported by coverage/tree checks
        };
        let d = n.pos.distance(h.pos);
        let bound = if inner.contains(head) { inner_bound } else { boundary_bound };
        if d > bound + EPS {
            out.push(Violation {
                kind: ViolationKind::CellRadius,
                detail: format!(
                    "associate {} is {d:.1} from head {} (bound {bound:.1})",
                    n.id, h.id
                ),
            });
        }
    }
    out
}

/// F₃/I₃: each (inner-cell) associate is with the closest head. A
/// tolerance of `2·R_t` absorbs heads displaced within their candidate
/// areas while the associate's choice was made against an earlier position.
#[must_use]
pub fn check_best_head(snap: &Snapshot, inner_only: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let heads: Vec<&NodeView> = snap.heads().collect();
    let head_map: BTreeMap<NodeId, &NodeView> = heads.iter().map(|n| (n.id, *n)).collect();
    let inner = inner_heads(snap);
    for n in snap.associates() {
        let RoleView::Associate { head, surrogate, .. } = &n.role else {
            continue;
        };
        if *surrogate {
            continue;
        }
        if inner_only && !inner.contains(head) {
            continue;
        }
        let Some(h) = head_map.get(head) else {
            continue;
        };
        let mine = n.pos.distance(h.pos);
        if let Some(best) = heads
            .iter()
            .map(|c| n.pos.distance(c.pos))
            .min_by(f64::total_cmp)
        {
            if mine > best + 2.0 * snap.r_t + EPS {
                out.push(Violation {
                    kind: ViolationKind::NotBestHead,
                    detail: format!(
                        "associate {}: its head {} is {mine:.1} away but the closest head is {best:.1}",
                        n.id, h.id
                    ),
                });
            }
        }
    }
    out
}

/// F₄: every alive node physically connected to the big node is in a cell
/// (head or associate).
#[must_use]
pub fn check_coverage(snap: &Snapshot) -> Vec<Violation> {
    let reachable = physically_connected_to_big(snap);
    let mut out = Vec::new();
    for n in &snap.nodes {
        if !n.alive || !reachable.contains(&n.id) {
            continue;
        }
        if matches!(n.role, RoleView::Bootup) {
            out.push(Violation {
                kind: ViolationKind::Coverage,
                detail: format!("node {} is connected to the big node but in no cell", n.id),
            });
        }
    }
    out
}

/// Extra structural check: a head must sit within `R_t` of its current IL
/// (by construction of `HEAD_SELECT` / head shift).
#[must_use]
pub fn check_heads_on_ideal(snap: &Snapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    for n in snap.heads() {
        let (il, ..) = head_fields(n).expect("head");
        let d = n.pos.distance(il);
        if d > snap.r_t + EPS {
            out.push(Violation {
                kind: ViolationKind::HeadOffIdeal,
                detail: format!("head {} is {d:.1} from its IL (R_t = {})", n.id, snap.r_t),
            });
        }
    }
    out
}

/// The full predicate suite.
#[must_use]
pub fn check_all(snap: &Snapshot, strictness: Strictness) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(check_head_graph_tree(snap));
    out.extend(check_head_graph_physical(snap));
    out.extend(check_neighbor_distances(snap));
    out.extend(check_children_counts(snap, strictness));
    out.extend(check_cell_radius(snap, 0.0));
    out.extend(check_best_head(snap, true));
    out.extend(check_coverage(snap));
    out.extend(check_heads_on_ideal(snap));
    out
}

/// Heads whose six lattice-neighbor ILs are all occupied by other heads —
/// the paper's *inner* cells. Everything else is a boundary cell.
#[must_use]
pub fn inner_heads(snap: &Snapshot) -> BTreeSet<NodeId> {
    let spacing = head_spacing(snap.r);
    let heads: Vec<(NodeId, Point)> = snap
        .heads()
        .filter_map(|n| head_fields(n).map(|(il, ..)| (n.id, il)))
        .collect();
    let mut inner = BTreeSet::new();
    for (id, il) in &heads {
        let neighbor_count = heads
            .iter()
            .filter(|(other, o_il)| {
                other != id && (il.distance(*o_il) - spacing).abs() <= spacing * 0.25
            })
            .count();
        if neighbor_count >= 6 {
            inner.insert(*id);
        }
    }
    inner
}

/// The set of alive nodes physically connected (multi-hop, links =
/// `max_range`) to the big node. BFS over a grid-bucketed adjacency to stay
/// near-linear.
#[must_use]
pub fn physically_connected_to_big(snap: &Snapshot) -> BTreeSet<NodeId> {
    let alive: Vec<&NodeView> = snap.nodes.iter().filter(|n| n.alive).collect();
    let mut reachable = BTreeSet::new();
    if snap.nodes.get(snap.big.raw() as usize).is_none_or(|b| !b.alive) {
        return reachable;
    }
    // Bucket by grid cell of edge max_range.
    let cell = snap.max_range.max(1.0);
    let key = |p: Point| ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
    let mut grid: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
    for (idx, n) in alive.iter().enumerate() {
        grid.entry(key(n.pos)).or_default().push(idx);
    }
    let mut visited = vec![false; alive.len()];
    let start = alive
        .iter()
        .position(|n| n.id == snap.big)
        .expect("big node is alive by the guard above");
    visited[start] = true;
    reachable.insert(snap.big);
    let mut queue = VecDeque::from([start]);
    while let Some(cur) = queue.pop_front() {
        let p = alive[cur].pos;
        let (cx, cy) = key(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(bucket) = grid.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &cand in bucket {
                    if !visited[cand] && p.distance(alive[cand].pos) <= snap.max_range + EPS {
                        visited[cand] = true;
                        reachable.insert(alive[cand].id);
                        queue.push_back(cand);
                    }
                }
            }
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs3_geometry::spiral::IccIcp;

    fn head(id: u64, pos: Point, il: Point, parent: u64, hops: u32, children: Vec<u64>) -> NodeView {
        NodeView {
            id: NodeId::new(id),
            pos,
            alive: true,
            is_big: id == 0,
            role: RoleView::Head {
                il,
                oil: il,
                icc_icp: IccIcp::ORIGIN,
                parent: NodeId::new(parent),
                hops,
                children: children.into_iter().map(NodeId::new).collect(),
                neighbors: vec![],
                associates: vec![],
                organizing: false,
                is_proxy: false,
            },
            ids_stored: 1,
        }
    }

    fn assoc(id: u64, pos: Point, head: u64) -> NodeView {
        NodeView {
            id: NodeId::new(id),
            pos,
            alive: true,
            is_big: false,
            role: RoleView::Associate {
                head: NodeId::new(head),
                cell_il: Point::ORIGIN,
                surrogate: false,
                is_candidate: false,
            },
            ids_stored: 1,
        }
    }

    fn snap(nodes: Vec<NodeView>) -> Snapshot {
        Snapshot { r: 100.0, r_t: 10.0, big: NodeId::new(0), max_range: 400.0, gr: gs3_geometry::Angle::ZERO, nodes }
    }

    #[test]
    fn healthy_pair_passes() {
        let spacing = head_spacing(100.0);
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![1]),
            head(1, Point::new(spacing, 0.0), Point::new(spacing, 0.0), 0, 1, vec![]),
            assoc(2, Point::new(40.0, 0.0), 0),
        ]);
        assert!(check_all(&s, Strictness::Dynamic).is_empty());
    }

    #[test]
    fn detects_two_roots() {
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]),
            head(1, Point::new(400.0, 0.0), Point::new(400.0, 0.0), 1, 0, vec![]),
        ]);
        let v = check_head_graph_tree(&s);
        assert!(v.iter().any(|x| x.kind == ViolationKind::HeadGraphNotTree));
    }

    #[test]
    fn detects_parent_cycle() {
        let spacing = head_spacing(100.0);
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 1, 0, vec![]),
            head(1, Point::new(spacing, 0.0), Point::new(spacing, 0.0), 0, 1, vec![]),
        ]);
        let v = check_head_graph_tree(&s);
        assert!(v.iter().any(|x| x.detail.contains("cycle") || x.detail.contains("root")));
    }

    #[test]
    fn detects_neighbor_distance_violation() {
        let spacing = head_spacing(100.0);
        // ILs a lattice apart but actual positions far beyond the ±2R_t band.
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]),
            head(1, Point::new(spacing + 50.0, 0.0), Point::new(spacing, 0.0), 0, 1, vec![]),
        ]);
        let v = check_neighbor_distances(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::NeighborDistance);
    }

    #[test]
    fn detects_children_overflow() {
        let kids: Vec<u64> = (1..=7).collect();
        let s = snap(vec![head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, kids)]);
        let v = check_children_counts(&s, Strictness::Dynamic);
        assert_eq!(v.len(), 1);
        // Static is stricter for small heads but the big node's cap is 6
        // in both; 7 children violates either way.
        assert_eq!(check_children_counts(&s, Strictness::Static).len(), 1);
    }

    #[test]
    fn detects_cell_radius_violation() {
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]),
            assoc(1, Point::new(399.0, 0.0), 0),
        ]);
        let v = check_cell_radius(&s, 0.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::CellRadius);
    }

    #[test]
    fn detects_wrong_head_choice() {
        let spacing = head_spacing(100.0);
        let far = Point::new(spacing, 0.0);
        // Associate sits on top of head 1 but belongs to head 0.
        let mut h0 = head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![1]);
        let h1 = head(1, far, far, 0, 1, vec![]);
        let a = assoc(2, Point::new(far.x - 1.0, 0.0), 0);
        // Make both heads inner? They are boundary here; check with
        // inner_only = false.
        if let RoleView::Head { children, .. } = &mut h0.role {
            children.push(NodeId::new(2));
        }
        let s = snap(vec![h0, h1, a]);
        let v = check_best_head(&s, false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::NotBestHead);
    }

    #[test]
    fn detects_uncovered_connected_node() {
        let mut b = assoc(1, Point::new(50.0, 0.0), 0);
        b.role = RoleView::Bootup;
        let s = snap(vec![head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]), b]);
        let v = check_coverage(&s);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn disconnected_bootup_is_fine() {
        let mut b = assoc(1, Point::new(5000.0, 0.0), 0);
        b.role = RoleView::Bootup;
        let s = snap(vec![head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]), b]);
        assert!(check_coverage(&s).is_empty());
    }

    #[test]
    fn detects_head_off_ideal() {
        let s = snap(vec![head(0, Point::new(20.0, 0.0), Point::ORIGIN, 0, 0, vec![])]);
        let v = check_heads_on_ideal(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::HeadOffIdeal);
    }

    #[test]
    fn inner_head_classification() {
        let spacing = head_spacing(100.0);
        let mut nodes = vec![head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![])];
        for k in 0..6 {
            let ang = gs3_geometry::Angle::from_degrees(f64::from(k) * 60.0);
            let p = Point::ORIGIN.offset(ang, spacing);
            nodes.push(head(k as u64 + 1, p, p, 0, 1, vec![]));
        }
        let s = snap(nodes);
        let inner = inner_heads(&s);
        assert!(inner.contains(&NodeId::new(0)));
        assert_eq!(inner.len(), 1, "ring heads are boundary");
    }

    #[test]
    fn physical_connectivity_bfs() {
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]),
            assoc(1, Point::new(300.0, 0.0), 0),
            assoc(2, Point::new(600.0, 0.0), 0),
            assoc(3, Point::new(5000.0, 0.0), 0),
        ]);
        let r = physically_connected_to_big(&s);
        assert!(r.contains(&NodeId::new(1)));
        assert!(r.contains(&NodeId::new(2)), "two-hop reachability");
        assert!(!r.contains(&NodeId::new(3)));
    }
}
