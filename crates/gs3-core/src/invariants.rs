//! The paper's invariant and fixpoint predicates as executable checks.
//!
//! Each function verifies one family of predicates from Sections 3.3 / 4.3
//! against a [`Snapshot`] and reports violations. [`check_all`] bundles the
//! full suite. The checks implement the *dynamic* relaxations (I₂ with
//! `⟨ICC, ICP⟩`-dependent distances, ≤5 children) when `strictness` is
//! [`Strictness::Dynamic`], and the tight static bounds when
//! [`Strictness::Static`].

use std::collections::{BTreeMap, BTreeSet};

use gs3_geometry::{head_spacing, Point, SQRT_3};
use gs3_sim::spatial::SpatialGrid;
use gs3_sim::NodeId;

use crate::snapshot::{NodeView, RoleView, Snapshot};

/// Which bound set to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// GS³-S bounds (Theorem 1): ≤3 children per small head, distances in
    /// `[√3R − 2R_t, √3R + 2R_t]`.
    Static,
    /// GS³-D/M relaxations (Theorem 5): ≤5 children, IL-relative distance
    /// bounds, boundary-cell slack.
    Dynamic,
}

/// One violated predicate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which predicate family failed.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
}

/// The predicate families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// I₁.₂ — the head graph is not a tree rooted at the big node.
    HeadGraphNotTree,
    /// I₁.₁ — heads connected in `G_h` are not connected in `G_p`.
    HeadGraphUnreachable,
    /// I₂.₁/I₂.₂ — neighboring-head distance out of bounds.
    NeighborDistance,
    /// I₂.₃ — too many children.
    ChildrenCount,
    /// I₂.₄ — an associate is too far from its head.
    CellRadius,
    /// I₃/F₃ — an associate is not with its best (closest) head.
    NotBestHead,
    /// F₄ — a node connected to the big node is not in any cell.
    Coverage,
    /// A head strayed more than `R_t` from its IL.
    HeadOffIdeal,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// Numeric slack applied to all geometric comparisons (covers float error
/// and in-flight position updates).
const EPS: f64 = 1e-6;

fn head_fields(n: &NodeView) -> Option<(Point, NodeId, u32, &Vec<NodeId>)> {
    match &n.role {
        RoleView::Head { il, parent, hops, children, .. } => Some((*il, *parent, *hops, children)),
        _ => None,
    }
}

/// The per-node facts the index is derived from. The incremental
/// [`SnapshotIndex::update`] diffs these against a new snapshot to find
/// what changed; anything not captured here cannot affect the index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Fact {
    alive: bool,
    pos: Point,
    /// `Some(il)` iff the node is an *alive head* (the only heads the
    /// index tracks); dead or non-head nodes carry `None`.
    il: Option<Point>,
}

impl Fact {
    /// The fact for a node index the snapshot has not reached yet.
    const ABSENT: Fact = Fact { alive: false, pos: Point::ORIGIN, il: None };

    fn of(n: &NodeView) -> Fact {
        let il = if n.alive { head_fields(n).map(|(il, ..)| il) } else { None };
        Fact { alive: n.alive, pos: n.pos, il }
    }
}

/// A per-snapshot spatial index shared by all geometric checks.
///
/// Built once in `O(n)`, it replaces the all-pairs scans inside the
/// distance predicates with hash-grid range queries, making [`check_all`]
/// near-linear in network size. Grid handles are indices into
/// `Snapshot::nodes`, so every query resolves to a `NodeView` without a
/// map lookup.
///
/// Long-lived callers (fixpoint polls, chaos oracles, the perf suite)
/// keep one index alive and [`update`](SnapshotIndex::update) it against
/// each new snapshot of the same network: the cost is then proportional
/// to the churn since the last poll, not the population. [`build`] stays
/// the from-scratch path and the equality oracle for the incremental one.
#[derive(Debug, Clone)]
pub struct SnapshotIndex {
    /// Indices of alive heads, ascending (snapshot order).
    heads: Vec<usize>,
    /// Alive-head positions; cell edge = lattice spacing.
    head_pos: SpatialGrid,
    /// Alive-head ILs; cell edge = lattice spacing.
    head_il: SpatialGrid,
    /// All alive nodes; cell edge = `max_range` (physical connectivity).
    alive: SpatialGrid,
    /// The lattice spacing `√3·R` the head grids quantize by.
    spacing: f64,
    /// Heads whose six lattice-neighbor ILs are all occupied (inner cells).
    inner: BTreeSet<NodeId>,
    /// `inner` as a by-node-index mask for O(1) lookups on hot paths.
    inner_mask: Vec<bool>,
    /// The facts the grids currently reflect, for delta detection.
    facts: Vec<Fact>,
}

impl SnapshotIndex {
    /// Indexes `snap`: one pass over the nodes plus the inner-cell
    /// classification.
    #[must_use]
    pub fn build(snap: &Snapshot) -> Self {
        let spacing = head_spacing(snap.r);
        let head_cell = spacing.max(1.0);
        let mut heads = Vec::new();
        let mut head_pos = SpatialGrid::new(head_cell);
        let mut head_il = SpatialGrid::new(head_cell);
        // Cell edge `max_range/√2` makes a cell's diagonal exactly
        // `max_range`: nodes sharing a cell are directly connected, which
        // lets the connectivity pass union whole cells at once.
        let mut alive = SpatialGrid::new((snap.max_range / std::f64::consts::SQRT_2).max(1.0));
        let mut facts = Vec::with_capacity(snap.nodes.len());
        for (i, n) in snap.nodes.iter().enumerate() {
            let fact = Fact::of(n);
            if fact.alive {
                alive.insert(i, fact.pos);
            }
            if let Some(il) = fact.il {
                heads.push(i);
                head_pos.insert(i, fact.pos);
                head_il.insert(i, il);
            }
            facts.push(fact);
        }
        let mut inner = BTreeSet::new();
        let mut inner_mask = vec![false; snap.nodes.len()];
        for &i in &heads {
            let il = facts[i].il.expect("indexed heads are heads");
            if lattice_neighbor_count(i, il, &head_il, &facts, spacing) >= 6 {
                inner.insert(snap.nodes[i].id);
                inner_mask[i] = true;
            }
        }
        SnapshotIndex { heads, head_pos, head_il, alive, spacing, inner, inner_mask, facts }
    }

    /// Brings the index up to date with `snap` by applying the deltas
    /// since the snapshot it currently reflects: spawn/kill flips move
    /// nodes in and out of the alive grid, role changes and head shifts
    /// maintain the head grids, and the inner-cell classification is
    /// redone only for heads within one neighbor radius of a changed IL.
    /// Equivalent to `*self = SnapshotIndex::build(snap)` (the oracle the
    /// churn tests compare against), at a cost proportional to the churn.
    ///
    /// `snap` must be a later snapshot of the *same network*: same `r` and
    /// `max_range` (the grid geometry is fixed at build time) and node
    /// indices never reused — snapshots only grow.
    ///
    /// # Panics
    ///
    /// Panics if `snap` has fewer nodes than the previously-indexed
    /// snapshot.
    pub fn update(&mut self, snap: &Snapshot) {
        debug_assert_eq!(
            self.spacing,
            head_spacing(snap.r),
            "index reuse requires a constant R"
        );
        let n = snap.nodes.len();
        assert!(n >= self.facts.len(), "snapshots only grow: ids are never reused");
        self.facts.resize(n, Fact::ABSENT);
        self.inner_mask.resize(n, false);
        // ILs that appeared, vanished, or moved; only heads within one
        // neighbor radius of one of these can change inner status.
        let mut dirty_ils: Vec<Point> = Vec::new();
        for (i, node) in snap.nodes.iter().enumerate() {
            let new = Fact::of(node);
            let old = self.facts[i];
            if new == old {
                continue;
            }
            match (old.alive, new.alive) {
                (false, true) => self.alive.insert(i, new.pos),
                (true, false) => self.alive.remove(i, old.pos),
                (true, true) => self.alive.relocate(i, old.pos, new.pos),
                (false, false) => {}
            }
            match (old.il, new.il) {
                (None, Some(il)) => {
                    self.head_pos.insert(i, new.pos);
                    self.head_il.insert(i, il);
                    let at = self.heads.binary_search(&i).unwrap_err();
                    self.heads.insert(at, i);
                    dirty_ils.push(il);
                }
                (Some(il), None) => {
                    self.head_pos.remove(i, old.pos);
                    self.head_il.remove(i, il);
                    if let Ok(at) = self.heads.binary_search(&i) {
                        self.heads.remove(at);
                    }
                    if self.inner_mask[i] {
                        self.inner_mask[i] = false;
                        self.inner.remove(&node.id);
                    }
                    dirty_ils.push(il);
                }
                (Some(old_il), Some(new_il)) => {
                    self.head_pos.relocate(i, old.pos, new.pos);
                    if old_il != new_il {
                        self.head_il.relocate(i, old_il, new_il);
                        dirty_ils.push(old_il);
                        dirty_ils.push(new_il);
                    }
                }
                (None, None) => {}
            }
            self.facts[i] = new;
        }
        if dirty_ils.is_empty() {
            return;
        }
        let mut affected: Vec<usize> = Vec::new();
        for &q in &dirty_ils {
            self.head_il.for_each_candidate(q, 1.25 * self.spacing, |j| affected.push(j));
        }
        affected.sort_unstable();
        affected.dedup();
        for &i in &affected {
            let il = self.facts[i].il.expect("IL-grid members are alive heads");
            let is_inner =
                lattice_neighbor_count(i, il, &self.head_il, &self.facts, self.spacing) >= 6;
            if is_inner != self.inner_mask[i] {
                self.inner_mask[i] = is_inner;
                if is_inner {
                    self.inner.insert(snap.nodes[i].id);
                } else {
                    self.inner.remove(&snap.nodes[i].id);
                }
            }
        }
    }

    /// The inner-cell heads of the indexed snapshot (see [`inner_heads`]).
    #[must_use]
    pub fn inner_heads(&self) -> &BTreeSet<NodeId> {
        &self.inner
    }

    /// True when `id` is an inner-cell head (O(1)).
    #[must_use]
    pub fn is_inner(&self, id: NodeId) -> bool {
        self.inner_mask.get(id.raw() as usize).copied().unwrap_or(false)
    }
}

/// How many of head `i`'s six lattice-neighbor ILs are occupied by other
/// heads (IL at distance `spacing ± 0.25·spacing`), via an IL-grid range
/// query.
fn lattice_neighbor_count(
    i: usize,
    il: Point,
    head_il: &SpatialGrid,
    facts: &[Fact],
    spacing: f64,
) -> usize {
    let mut count = 0usize;
    head_il.for_each_candidate(il, 1.25 * spacing, |j| {
        if j == i {
            return;
        }
        let o_il = facts[j].il.expect("IL-grid members are alive heads");
        if (il.distance(o_il) - spacing).abs() <= spacing * 0.25 {
            count += 1;
        }
    });
    count
}

/// I₁.₂: the head graph is a tree rooted at the big node (or at its proxy
/// / current root when the big node is away): exactly one root, every head
/// reaches it by parent pointers, and hops are consistent along the way.
#[must_use]
pub fn check_head_graph_tree(snap: &Snapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    let heads: BTreeMap<NodeId, &NodeView> = snap.heads().map(|n| (n.id, n)).collect();
    if heads.is_empty() {
        return vec![Violation {
            kind: ViolationKind::HeadGraphNotTree,
            detail: "no heads at all".into(),
        }];
    }
    let roots: Vec<NodeId> = heads
        .values()
        .filter_map(|n| head_fields(n).filter(|(_, p, ..)| *p == n.id).map(|_| n.id))
        .collect();
    if roots.len() != 1 {
        out.push(Violation {
            kind: ViolationKind::HeadGraphNotTree,
            detail: format!("expected exactly 1 root, found {roots:?}"),
        });
    }
    // Walk parent pointers from every head; must terminate at a root
    // without revisiting (cycle detection).
    for (&id, view) in &heads {
        let mut seen = BTreeSet::new();
        let mut cur = id;
        loop {
            if !seen.insert(cur) {
                out.push(Violation {
                    kind: ViolationKind::HeadGraphNotTree,
                    detail: format!("parent cycle through {cur}"),
                });
                break;
            }
            let Some(h) = heads.get(&cur) else {
                out.push(Violation {
                    kind: ViolationKind::HeadGraphNotTree,
                    detail: format!("{id}'s ancestor {cur} is not an alive head"),
                });
                break;
            };
            let (_, parent, ..) = head_fields(h).expect("heads() yields heads");
            if parent == cur {
                break; // reached the root
            }
            cur = parent;
        }
        let _ = view;
    }
    out
}

/// The root each head reaches by following parent pointers, or `None`
/// when the chain is broken (cycle, or an ancestor that is not an alive
/// head).
#[must_use]
pub fn head_roots(snap: &Snapshot) -> BTreeMap<NodeId, Option<NodeId>> {
    let heads: BTreeMap<NodeId, &NodeView> = snap.heads().map(|n| (n.id, n)).collect();
    let mut out = BTreeMap::new();
    for &id in heads.keys() {
        let mut seen = BTreeSet::new();
        let mut cur = id;
        let root = loop {
            if !seen.insert(cur) {
                break None; // cycle
            }
            let Some(h) = heads.get(&cur) else {
                break None; // dead ancestor
            };
            let (_, parent, ..) = head_fields(h).expect("heads() yields heads");
            if parent == cur {
                break Some(cur);
            }
            cur = parent;
        };
        out.insert(id, root);
    }
    out
}

/// Multi-big-node variant of I₁.₂ (the paper's Section 7 extension): the
/// head graph is a *forest* with exactly `expected_roots` trees, every
/// head's parent chain terminating at some root.
#[must_use]
pub fn check_head_graph_forest(snap: &Snapshot, expected_roots: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    let roots = head_roots(snap);
    let distinct: BTreeSet<NodeId> = roots.values().flatten().copied().collect();
    if distinct.len() != expected_roots {
        out.push(Violation {
            kind: ViolationKind::HeadGraphNotTree,
            detail: format!("expected {expected_roots} roots, found {distinct:?}"),
        });
    }
    for (id, root) in &roots {
        if root.is_none() {
            out.push(Violation {
                kind: ViolationKind::HeadGraphNotTree,
                detail: format!("head {id} has a broken parent chain"),
            });
        }
    }
    out
}

/// I₁.₁: every parent-child edge of the head graph is realizable in the
/// physical network `G_p` (both endpoints within transmission range — the
/// paper's heads communicate directly within `√3R + 2R_t`).
#[must_use]
pub fn check_head_graph_physical(snap: &Snapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    let heads: BTreeMap<NodeId, &NodeView> = snap.heads().map(|n| (n.id, n)).collect();
    for (&id, view) in &heads {
        let (_, parent, ..) = head_fields(view).expect("heads() yields heads");
        if parent == id {
            continue;
        }
        if let Some(p) = heads.get(&parent) {
            let d = view.pos.distance(p.pos);
            if d > snap.max_range + EPS {
                out.push(Violation {
                    kind: ViolationKind::HeadGraphUnreachable,
                    detail: format!("edge {id}→{parent} spans {d:.1} > range {}", snap.max_range),
                });
            }
        }
    }
    out
}

/// I₂.₁/I₂.₂: distances between *neighboring* heads stay within
/// `dist(IL_i, IL_j) ± 2R_t` (which reduces to `√3R ± 2R_t` when both
/// cells are at the same `⟨ICC, ICP⟩`). Two heads are treated as
/// neighbors when their ILs are within 1.25 lattice spacings.
#[must_use]
pub fn check_neighbor_distances(snap: &Snapshot) -> Vec<Violation> {
    check_neighbor_distances_with(snap, &SnapshotIndex::build(snap))
}

/// [`check_neighbor_distances`] against a prebuilt index: each head range-
/// queries the IL grid for lattice neighbors instead of scanning all pairs.
#[must_use]
pub fn check_neighbor_distances_with(snap: &Snapshot, idx: &SnapshotIndex) -> Vec<Violation> {
    let mut out = Vec::new();
    let spacing = idx.spacing;
    let mut cand: Vec<usize> = Vec::new();
    for &i in &idx.heads {
        let a = &snap.nodes[i];
        let (il_a, ..) = head_fields(a).expect("indexed heads are heads");
        cand.clear();
        idx.head_il.for_each_candidate(il_a, 1.25 * spacing, |j| {
            // Each unordered pair is judged once, from its lower index.
            if j > i {
                cand.push(j);
            }
        });
        // Ascending order reproduces the all-pairs enumeration exactly.
        cand.sort_unstable();
        for &j in &cand {
            let b = &snap.nodes[j];
            let (il_b, ..) = head_fields(b).expect("indexed heads are heads");
            let ideal = il_a.distance(il_b);
            if ideal > 1.25 * spacing || ideal < EPS {
                continue;
            }
            let actual = a.pos.distance(b.pos);
            if (actual - ideal).abs() > 2.0 * snap.r_t + EPS {
                out.push(Violation {
                    kind: ViolationKind::NeighborDistance,
                    detail: format!(
                        "heads {} and {}: |{actual:.1} − {ideal:.1}| > 2·R_t = {:.1}",
                        a.id,
                        b.id,
                        2.0 * snap.r_t
                    ),
                });
            }
        }
    }
    out
}

/// I₂.₃: children counts — small heads ≤3 (static) / ≤5 (dynamic); the
/// big node ≤6.
#[must_use]
pub fn check_children_counts(snap: &Snapshot, strictness: Strictness) -> Vec<Violation> {
    let limit = match strictness {
        Strictness::Static => 3,
        Strictness::Dynamic => 5,
    };
    let mut out = Vec::new();
    for n in snap.heads() {
        let (_, parent, _, children) = head_fields(n).expect("head");
        // The big node — and any head acting as the root (the big node's
        // proxy) — sits at the lattice center of its neighborhood and
        // legitimately parents all six surrounding cells.
        let is_root = parent == n.id;
        let cap = if n.is_big || is_root { 6 } else { limit };
        if children.len() > cap {
            out.push(Violation {
                kind: ViolationKind::ChildrenCount,
                detail: format!("head {} has {} children (cap {cap})", n.id, children.len()),
            });
        }
    }
    out
}

/// I₂.₄: every associate is within the cell-radius bound of its head:
/// `R + 2R_t/√3` for inner cells, `√3R + 2R_t` for boundary cells (the
/// dynamic relaxation with `d_p = 0`; gap-adjacent cells can exceed this
/// and are excluded by the caller supplying `boundary_slack`).
#[must_use]
pub fn check_cell_radius(snap: &Snapshot, boundary_slack: f64) -> Vec<Violation> {
    check_cell_radius_with(snap, boundary_slack, &SnapshotIndex::build(snap))
}

/// [`check_cell_radius`] against a prebuilt index (reuses the inner-cell
/// classification instead of recomputing it).
#[must_use]
pub fn check_cell_radius_with(
    snap: &Snapshot,
    boundary_slack: f64,
    idx: &SnapshotIndex,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let inner_bound = snap.r + 2.0 * snap.r_t / SQRT_3;
    let boundary_bound = SQRT_3 * snap.r + 2.0 * snap.r_t + boundary_slack;
    for n in snap.associates() {
        let RoleView::Associate { head, surrogate, .. } = &n.role else {
            continue;
        };
        if *surrogate {
            continue; // surrogate distance is bounded by radio range only
        }
        let Some(h) = snap.node(*head).filter(|h| h.alive && h.is_head()) else {
            continue; // dangling pointer is reported by coverage/tree checks
        };
        let d = n.pos.distance(h.pos);
        let bound = if idx.is_inner(*head) { inner_bound } else { boundary_bound };
        if d > bound + EPS {
            out.push(Violation {
                kind: ViolationKind::CellRadius,
                detail: format!(
                    "associate {} is {d:.1} from head {} (bound {bound:.1})",
                    n.id, h.id
                ),
            });
        }
    }
    out
}

/// F₃/I₃: each (inner-cell) associate is with the closest head. A
/// tolerance of `2·R_t` absorbs heads displaced within their candidate
/// areas while the associate's choice was made against an earlier position.
#[must_use]
pub fn check_best_head(snap: &Snapshot, inner_only: bool) -> Vec<Violation> {
    check_best_head_with(snap, inner_only, &SnapshotIndex::build(snap))
}

/// [`check_best_head`] against a prebuilt index.
///
/// The associate's own head lies at distance `mine`, so the minimum over
/// heads the grid reports within radius `mine` *is* the global minimum —
/// no full scan needed. Two degenerate inputs are settled up front: a
/// non-finite `mine` (corrupted position) can never satisfy the violation
/// comparison, and `mine ≤ 2R_t` cannot exceed `best + 2R_t` for any
/// `best ≥ 0` — this includes a head sharing the associate's exact
/// position (`best = 0`), which previously relied on float comparison
/// behavior to come out right.
#[must_use]
pub fn check_best_head_with(snap: &Snapshot, inner_only: bool, idx: &SnapshotIndex) -> Vec<Violation> {
    let mut out = Vec::new();
    let tol = 2.0 * snap.r_t + EPS;
    for n in snap.associates() {
        let RoleView::Associate { head, surrogate, .. } = &n.role else {
            continue;
        };
        if *surrogate {
            continue;
        }
        if inner_only && !idx.is_inner(*head) {
            continue;
        }
        let Some(h) = snap.node(*head).filter(|h| h.alive && h.is_head()) else {
            continue;
        };
        let mine = n.pos.distance(h.pos);
        if !mine.is_finite() || mine <= tol {
            continue;
        }
        let own = head.raw() as usize;
        let mut best = mine;
        idx.head_pos.for_each_candidate(n.pos, mine, |j| {
            if j == own {
                return; // `mine` is already the distance to the own head
            }
            let d = n.pos.distance(snap.nodes[j].pos);
            if d < best {
                best = d;
            }
        });
        if mine > best + tol {
            out.push(Violation {
                kind: ViolationKind::NotBestHead,
                detail: format!(
                    "associate {}: its head {} is {mine:.1} away but the closest head is {best:.1}",
                    n.id, h.id
                ),
            });
        }
    }
    out
}

/// F₄: every alive node physically connected to the big node is in a cell
/// (head or associate).
#[must_use]
pub fn check_coverage(snap: &Snapshot) -> Vec<Violation> {
    check_coverage_with(snap, &SnapshotIndex::build(snap))
}

/// [`check_coverage`] against a prebuilt index (the BFS reuses the
/// index's alive-node grid).
#[must_use]
pub fn check_coverage_with(snap: &Snapshot, idx: &SnapshotIndex) -> Vec<Violation> {
    let reachable = connectivity_mask(snap, idx);
    let mut out = Vec::new();
    for (i, n) in snap.nodes.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        if matches!(n.role, RoleView::Bootup) {
            out.push(Violation {
                kind: ViolationKind::Coverage,
                detail: format!("node {} is connected to the big node but in no cell", n.id),
            });
        }
    }
    out
}

/// Extra structural check: a head must sit within `R_t` of its current IL
/// (by construction of `HEAD_SELECT` / head shift).
#[must_use]
pub fn check_heads_on_ideal(snap: &Snapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    for n in snap.heads() {
        let (il, ..) = head_fields(n).expect("head");
        let d = n.pos.distance(il);
        if d > snap.r_t + EPS {
            out.push(Violation {
                kind: ViolationKind::HeadOffIdeal,
                detail: format!("head {} is {d:.1} from its IL (R_t = {})", n.id, snap.r_t),
            });
        }
    }
    out
}

/// The full predicate suite. Builds one [`SnapshotIndex`] and shares it
/// across every geometric check.
#[must_use]
pub fn check_all(snap: &Snapshot, strictness: Strictness) -> Vec<Violation> {
    check_all_with(snap, strictness, &SnapshotIndex::build(snap))
}

/// [`check_all`] against a caller-supplied index (for callers that keep
/// the index alive across several checks of the same snapshot).
#[must_use]
pub fn check_all_with(snap: &Snapshot, strictness: Strictness, idx: &SnapshotIndex) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(check_head_graph_tree(snap));
    out.extend(check_head_graph_physical(snap));
    out.extend(check_neighbor_distances_with(snap, idx));
    out.extend(check_children_counts(snap, strictness));
    out.extend(check_cell_radius_with(snap, 0.0, idx));
    out.extend(check_best_head_with(snap, true, idx));
    out.extend(check_coverage_with(snap, idx));
    out.extend(check_heads_on_ideal(snap));
    out
}

/// Heads whose six lattice-neighbor ILs are all occupied by other heads —
/// the paper's *inner* cells. Everything else is a boundary cell.
#[must_use]
pub fn inner_heads(snap: &Snapshot) -> BTreeSet<NodeId> {
    SnapshotIndex::build(snap).inner
}

/// The set of alive nodes physically connected (multi-hop, links =
/// `max_range`) to the big node. BFS over the index's alive-node grid to
/// stay near-linear.
#[must_use]
pub fn physically_connected_to_big(snap: &Snapshot) -> BTreeSet<NodeId> {
    physically_connected_to_big_with(snap, &SnapshotIndex::build(snap))
}

/// [`physically_connected_to_big`] against a prebuilt index.
///
/// Connectivity is computed as union-find over the alive-node grid's
/// cells rather than a per-node BFS: nodes sharing a cell are within
/// `max_range` by construction (cell diagonal = `max_range`), so each
/// cell unions wholesale, and each pair of nearby cells needs at most one
/// witnessing edge before the whole pair is settled. Union order never
/// leaks into the result — components are a property of the edge set.
#[must_use]
pub fn physically_connected_to_big_with(snap: &Snapshot, idx: &SnapshotIndex) -> BTreeSet<NodeId> {
    let mask = connectivity_mask(snap, idx);
    let mut reachable = BTreeSet::new();
    for (i, n) in snap.nodes.iter().enumerate() {
        if mask[i] {
            reachable.insert(n.id);
        }
    }
    reachable
}

/// `mask[i]` = node `i` is alive and physically connected to the big node.
/// All-false when the big node is dead or out of range of the snapshot.
fn connectivity_mask(snap: &Snapshot, idx: &SnapshotIndex) -> Vec<bool> {
    let big_idx = snap.big.raw() as usize;
    if snap.nodes.get(big_idx).is_none_or(|b| !b.alive) {
        return vec![false; snap.nodes.len()];
    }
    let range = snap.max_range + EPS;
    let mut parent: Vec<usize> = (0..snap.nodes.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[rb] = ra;
        }
    }

    // Pass 1 — within-cell edges. The `max_range/√2` edge guarantees
    // same-cell adjacency unless the edge was clamped (degenerate tiny
    // ranges), in which case fall back to checked pairs.
    let wholesale = idx.alive.cell_edge() * std::f64::consts::SQRT_2 <= range;
    // gs3-lint: allow(d5) -- union-find edge insertion is order-independent: unions commute and only the final partition is consumed (see connectivity_mask_is_iteration_order_independent)
    idx.alive.for_each_cell(|_, members| {
        if wholesale {
            for &m in &members[1..] {
                union(&mut parent, members[0], m);
            }
        } else {
            for (k, &a) in members.iter().enumerate() {
                for &b in &members[k + 1..] {
                    if snap.nodes[a].pos.distance(snap.nodes[b].pos) <= range {
                        union(&mut parent, a, b);
                    }
                }
            }
        }
    });

    // Pass 2 — cross-cell edges. Cells at Chebyshev distance ≤ 2 are the
    // only ones whose gap can be ≤ `max_range`; each unordered pair is
    // visited once via the half-plane offsets, and one witnessing edge
    // settles the pair.
    const OFFSETS: [(i64, i64); 12] = [
        (0, 1),
        (0, 2),
        (1, -2),
        (1, -1),
        (1, 0),
        (1, 1),
        (1, 2),
        (2, -2),
        (2, -1),
        (2, 0),
        (2, 1),
        (2, 2),
    ];
    // gs3-lint: allow(d5) -- same union-find argument as pass 1: the early-skip shortcuts only elide redundant unions, so any cell order yields the same partition
    idx.alive.for_each_cell(|key, members| {
        for (dx, dy) in OFFSETS {
            let Some(other) = idx.alive.cell((key.0 + dx, key.1 + dy)) else {
                continue;
            };
            if find(&mut parent, members[0]) == find(&mut parent, other[0])
                && wholesale
            {
                continue; // both cells already fully in one component
            }
            'pair: for &a in members {
                for &b in other {
                    if snap.nodes[a].pos.distance(snap.nodes[b].pos) <= range {
                        union(&mut parent, a, b);
                        if wholesale {
                            break 'pair; // one edge settles the cell pair
                        }
                    }
                }
            }
        }
    });

    let big_root = find(&mut parent, big_idx);
    let mut mask = vec![false; snap.nodes.len()];
    for (i, n) in snap.nodes.iter().enumerate() {
        if n.alive && find(&mut parent, i) == big_root {
            mask[i] = true;
        }
    }
    mask
}

/// Reference `O(n²)` / BTreeMap implementations of the grid-accelerated
/// checks, retained for differential testing and the micro-benchmarks.
/// Enable the `naive-checks` feature to use them outside this crate's
/// tests.
#[cfg(any(test, feature = "naive-checks"))]
pub mod naive {
    use super::*;
    use std::collections::VecDeque;

    /// All-pairs version of [`check_neighbor_distances`](super::check_neighbor_distances).
    #[must_use]
    pub fn check_neighbor_distances(snap: &Snapshot) -> Vec<Violation> {
        let mut out = Vec::new();
        let spacing = head_spacing(snap.r);
        let heads: Vec<&NodeView> = snap.heads().collect();
        for (i, a) in heads.iter().enumerate() {
            let (il_a, ..) = head_fields(a).expect("head");
            for b in &heads[i + 1..] {
                let (il_b, ..) = head_fields(b).expect("head");
                let ideal = il_a.distance(il_b);
                if ideal > 1.25 * spacing || ideal < EPS {
                    continue;
                }
                let actual = a.pos.distance(b.pos);
                if (actual - ideal).abs() > 2.0 * snap.r_t + EPS {
                    out.push(Violation {
                        kind: ViolationKind::NeighborDistance,
                        detail: format!(
                            "heads {} and {}: |{actual:.1} − {ideal:.1}| > 2·R_t = {:.1}",
                            a.id,
                            b.id,
                            2.0 * snap.r_t
                        ),
                    });
                }
            }
        }
        out
    }

    /// Full-scan version of [`check_best_head`](super::check_best_head).
    #[must_use]
    pub fn check_best_head(snap: &Snapshot, inner_only: bool) -> Vec<Violation> {
        let mut out = Vec::new();
        let heads: Vec<&NodeView> = snap.heads().collect();
        let head_map: BTreeMap<NodeId, &NodeView> = heads.iter().map(|n| (n.id, *n)).collect();
        let inner = inner_heads(snap);
        for n in snap.associates() {
            let RoleView::Associate { head, surrogate, .. } = &n.role else {
                continue;
            };
            if *surrogate {
                continue;
            }
            if inner_only && !inner.contains(head) {
                continue;
            }
            let Some(h) = head_map.get(head) else {
                continue;
            };
            let mine = n.pos.distance(h.pos);
            if let Some(best) = heads.iter().map(|c| n.pos.distance(c.pos)).min_by(f64::total_cmp) {
                if mine > best + 2.0 * snap.r_t + EPS {
                    out.push(Violation {
                        kind: ViolationKind::NotBestHead,
                        detail: format!(
                            "associate {}: its head {} is {mine:.1} away but the closest head is {best:.1}",
                            n.id, h.id
                        ),
                    });
                }
            }
        }
        out
    }

    /// All-pairs version of [`inner_heads`](super::inner_heads).
    #[must_use]
    pub fn inner_heads(snap: &Snapshot) -> BTreeSet<NodeId> {
        let spacing = head_spacing(snap.r);
        let heads: Vec<(NodeId, Point)> = snap
            .heads()
            .filter_map(|n| head_fields(n).map(|(il, ..)| (n.id, il)))
            .collect();
        let mut inner = BTreeSet::new();
        for (id, il) in &heads {
            let neighbor_count = heads
                .iter()
                .filter(|(other, o_il)| {
                    other != id && (il.distance(*o_il) - spacing).abs() <= spacing * 0.25
                })
                .count();
            if neighbor_count >= 6 {
                inner.insert(*id);
            }
        }
        inner
    }

    /// BTreeMap-bucketed version of
    /// [`physically_connected_to_big`](super::physically_connected_to_big).
    #[must_use]
    pub fn physically_connected_to_big(snap: &Snapshot) -> BTreeSet<NodeId> {
        let alive: Vec<&NodeView> = snap.nodes.iter().filter(|n| n.alive).collect();
        let mut reachable = BTreeSet::new();
        if snap.nodes.get(snap.big.raw() as usize).is_none_or(|b| !b.alive) {
            return reachable;
        }
        let cell = snap.max_range.max(1.0);
        let key = |p: Point| ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        let mut grid: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
        for (idx, n) in alive.iter().enumerate() {
            grid.entry(key(n.pos)).or_default().push(idx);
        }
        let mut visited = vec![false; alive.len()];
        let start = alive
            .iter()
            .position(|n| n.id == snap.big)
            .expect("big node is alive by the guard above");
        visited[start] = true;
        reachable.insert(snap.big);
        let mut queue = VecDeque::from([start]);
        while let Some(cur) = queue.pop_front() {
            let p = alive[cur].pos;
            let (cx, cy) = key(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = grid.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &cand in bucket {
                        if !visited[cand] && p.distance(alive[cand].pos) <= snap.max_range + EPS {
                            visited[cand] = true;
                            reachable.insert(alive[cand].id);
                            queue.push_back(cand);
                        }
                    }
                }
            }
        }
        reachable
    }

    /// [`check_all`](super::check_all) wired entirely through the naive
    /// geometric checks (the non-geometric checks are shared).
    #[must_use]
    pub fn check_all(snap: &Snapshot, strictness: Strictness) -> Vec<Violation> {
        let mut out = Vec::new();
        out.extend(super::check_head_graph_tree(snap));
        out.extend(super::check_head_graph_physical(snap));
        out.extend(check_neighbor_distances(snap));
        out.extend(super::check_children_counts(snap, strictness));
        out.extend(check_cell_radius(snap, 0.0));
        out.extend(check_best_head(snap, true));
        out.extend(check_coverage(snap));
        out.extend(super::check_heads_on_ideal(snap));
        out
    }

    /// [`check_cell_radius`](super::check_cell_radius) over the naive
    /// inner-cell classification.
    #[must_use]
    pub fn check_cell_radius(snap: &Snapshot, boundary_slack: f64) -> Vec<Violation> {
        let mut out = Vec::new();
        let heads: BTreeMap<NodeId, &NodeView> = snap.heads().map(|n| (n.id, n)).collect();
        let inner = inner_heads(snap);
        let inner_bound = snap.r + 2.0 * snap.r_t / SQRT_3;
        let boundary_bound = SQRT_3 * snap.r + 2.0 * snap.r_t + boundary_slack;
        for n in snap.associates() {
            let RoleView::Associate { head, surrogate, .. } = &n.role else {
                continue;
            };
            if *surrogate {
                continue;
            }
            let Some(h) = heads.get(head) else {
                continue;
            };
            let d = n.pos.distance(h.pos);
            let bound = if inner.contains(head) { inner_bound } else { boundary_bound };
            if d > bound + EPS {
                out.push(Violation {
                    kind: ViolationKind::CellRadius,
                    detail: format!(
                        "associate {} is {d:.1} from head {} (bound {bound:.1})",
                        n.id, h.id
                    ),
                });
            }
        }
        out
    }

    /// [`check_coverage`](super::check_coverage) over the naive BFS.
    #[must_use]
    pub fn check_coverage(snap: &Snapshot) -> Vec<Violation> {
        let reachable = physically_connected_to_big(snap);
        let mut out = Vec::new();
        for n in &snap.nodes {
            if !n.alive || !reachable.contains(&n.id) {
                continue;
            }
            if matches!(n.role, RoleView::Bootup) {
                out.push(Violation {
                    kind: ViolationKind::Coverage,
                    detail: format!("node {} is connected to the big node but in no cell", n.id),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs3_geometry::spiral::IccIcp;

    fn head(id: u64, pos: Point, il: Point, parent: u64, hops: u32, children: Vec<u64>) -> NodeView {
        NodeView {
            id: NodeId::new(id),
            pos,
            alive: true,
            is_big: id == 0,
            role: RoleView::Head {
                il,
                oil: il,
                icc_icp: IccIcp::ORIGIN,
                parent: NodeId::new(parent),
                hops,
                children: children.into_iter().map(NodeId::new).collect(),
                neighbors: vec![],
                associates: vec![],
                organizing: false,
                is_proxy: false,
            },
            ids_stored: 1,
        }
    }

    fn assoc(id: u64, pos: Point, head: u64) -> NodeView {
        NodeView {
            id: NodeId::new(id),
            pos,
            alive: true,
            is_big: false,
            role: RoleView::Associate {
                head: NodeId::new(head),
                cell_il: Point::ORIGIN,
                surrogate: false,
                is_candidate: false,
            },
            ids_stored: 1,
        }
    }

    fn snap(nodes: Vec<NodeView>) -> Snapshot {
        Snapshot { r: 100.0, r_t: 10.0, big: NodeId::new(0), max_range: 400.0, gr: gs3_geometry::Angle::ZERO, nodes }
    }

    #[test]
    fn healthy_pair_passes() {
        let spacing = head_spacing(100.0);
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![1]),
            head(1, Point::new(spacing, 0.0), Point::new(spacing, 0.0), 0, 1, vec![]),
            assoc(2, Point::new(40.0, 0.0), 0),
        ]);
        assert!(check_all(&s, Strictness::Dynamic).is_empty());
    }

    #[test]
    fn detects_two_roots() {
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]),
            head(1, Point::new(400.0, 0.0), Point::new(400.0, 0.0), 1, 0, vec![]),
        ]);
        let v = check_head_graph_tree(&s);
        assert!(v.iter().any(|x| x.kind == ViolationKind::HeadGraphNotTree));
    }

    #[test]
    fn detects_parent_cycle() {
        let spacing = head_spacing(100.0);
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 1, 0, vec![]),
            head(1, Point::new(spacing, 0.0), Point::new(spacing, 0.0), 0, 1, vec![]),
        ]);
        let v = check_head_graph_tree(&s);
        assert!(v.iter().any(|x| x.detail.contains("cycle") || x.detail.contains("root")));
    }

    #[test]
    fn detects_neighbor_distance_violation() {
        let spacing = head_spacing(100.0);
        // ILs a lattice apart but actual positions far beyond the ±2R_t band.
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]),
            head(1, Point::new(spacing + 50.0, 0.0), Point::new(spacing, 0.0), 0, 1, vec![]),
        ]);
        let v = check_neighbor_distances(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::NeighborDistance);
    }

    #[test]
    fn detects_children_overflow() {
        let kids: Vec<u64> = (1..=7).collect();
        let s = snap(vec![head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, kids)]);
        let v = check_children_counts(&s, Strictness::Dynamic);
        assert_eq!(v.len(), 1);
        // Static is stricter for small heads but the big node's cap is 6
        // in both; 7 children violates either way.
        assert_eq!(check_children_counts(&s, Strictness::Static).len(), 1);
    }

    #[test]
    fn detects_cell_radius_violation() {
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]),
            assoc(1, Point::new(399.0, 0.0), 0),
        ]);
        let v = check_cell_radius(&s, 0.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::CellRadius);
    }

    #[test]
    fn detects_wrong_head_choice() {
        let spacing = head_spacing(100.0);
        let far = Point::new(spacing, 0.0);
        // Associate sits on top of head 1 but belongs to head 0.
        let mut h0 = head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![1]);
        let h1 = head(1, far, far, 0, 1, vec![]);
        let a = assoc(2, Point::new(far.x - 1.0, 0.0), 0);
        // Make both heads inner? They are boundary here; check with
        // inner_only = false.
        if let RoleView::Head { children, .. } = &mut h0.role {
            children.push(NodeId::new(2));
        }
        let s = snap(vec![h0, h1, a]);
        let v = check_best_head(&s, false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::NotBestHead);
    }

    #[test]
    fn detects_uncovered_connected_node() {
        let mut b = assoc(1, Point::new(50.0, 0.0), 0);
        b.role = RoleView::Bootup;
        let s = snap(vec![head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]), b]);
        let v = check_coverage(&s);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn disconnected_bootup_is_fine() {
        let mut b = assoc(1, Point::new(5000.0, 0.0), 0);
        b.role = RoleView::Bootup;
        let s = snap(vec![head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]), b]);
        assert!(check_coverage(&s).is_empty());
    }

    #[test]
    fn detects_head_off_ideal() {
        let s = snap(vec![head(0, Point::new(20.0, 0.0), Point::ORIGIN, 0, 0, vec![])]);
        let v = check_heads_on_ideal(&s);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::HeadOffIdeal);
    }

    #[test]
    fn inner_head_classification() {
        let spacing = head_spacing(100.0);
        let mut nodes = vec![head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![])];
        for k in 0..6 {
            let ang = gs3_geometry::Angle::from_degrees(f64::from(k) * 60.0);
            let p = Point::ORIGIN.offset(ang, spacing);
            nodes.push(head(k as u64 + 1, p, p, 0, 1, vec![]));
        }
        let s = snap(nodes);
        let inner = inner_heads(&s);
        assert!(inner.contains(&NodeId::new(0)));
        assert_eq!(inner.len(), 1, "ring heads are boundary");
    }

    #[test]
    fn physical_connectivity_bfs() {
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![]),
            assoc(1, Point::new(300.0, 0.0), 0),
            assoc(2, Point::new(600.0, 0.0), 0),
            assoc(3, Point::new(5000.0, 0.0), 0),
        ]);
        let r = physically_connected_to_big(&s);
        assert!(r.contains(&NodeId::new(1)));
        assert!(r.contains(&NodeId::new(2)), "two-hop reachability");
        assert!(!r.contains(&NodeId::new(3)));
    }

    // Cited by the `gs3-lint: allow(d5)` justifications inside
    // `connectivity_mask`: the union-find passes iterate the spatial
    // grid's FxHashMap cells in insertion order, which tracks node
    // order. Unions commute, so the resulting partition — and hence the
    // reachability mask — must be identical under any node ordering.
    #[test]
    fn connectivity_mask_is_iteration_order_independent() {
        // Logical layout: 0 = big at the origin, 1..=7 a connected
        // component (chain + an off-axis member sharing grid cells),
        // 8..=9 a mutually-connected far island, 10 a lone stray, 11 a
        // dead node adjacent to the chain.
        let pos = [
            Point::ORIGIN,
            Point::new(300.0, 0.0),
            Point::new(600.0, 0.0),
            Point::new(900.0, 0.0),
            Point::new(1200.0, 0.0),
            Point::new(1200.0, 300.0),
            Point::new(900.0, 300.0),
            Point::new(150.0, 100.0),
            Point::new(10_000.0, 0.0),
            Point::new(10_300.0, 0.0),
            Point::new(-8_000.0, 500.0),
            Point::new(300.0, 50.0),
        ];
        let reachable_logical = |order: &[usize]| -> BTreeSet<usize> {
            let mut nodes = Vec::new();
            for (k, &l) in order.iter().enumerate() {
                let mut n = assoc(k as u64, pos[l], 0);
                if l == 11 {
                    n.alive = false;
                }
                nodes.push(n);
            }
            let mut s = snap(nodes);
            s.big = NodeId::new(order.iter().position(|&l| l == 0).unwrap() as u64);
            physically_connected_to_big(&s)
                .into_iter()
                .map(|id| order[id.raw() as usize])
                .collect()
        };

        let n = pos.len();
        let identity: Vec<usize> = (0..n).collect();
        let reversed: Vec<usize> = (0..n).rev().collect();
        // Interleave evens and odds: a third, structurally different
        // insertion order for the grid's hash maps.
        let mut interleaved: Vec<usize> = (0..n).step_by(2).collect();
        interleaved.extend((1..n).step_by(2));

        let want: BTreeSet<usize> = (0..=7).collect();
        for order in [&identity, &reversed, &interleaved] {
            assert_eq!(
                reachable_logical(order),
                want,
                "connectivity differs under node order {order:?}"
            );
        }
    }

    #[test]
    fn head_sharing_associate_position_is_not_a_violation() {
        // Degenerate geometry: a foreign head exactly on top of the
        // associate (best = 0) and the own head within tolerance. The
        // early `mine ≤ 2R_t` guard must settle this without consulting
        // the grid at all.
        let spacing = head_spacing(100.0);
        let p = Point::new(-3.0, 4.0);
        let s = snap(vec![
            head(0, Point::ORIGIN, Point::ORIGIN, 0, 0, vec![1]),
            head(1, p, Point::new(spacing, 0.0), 0, 1, vec![]),
            assoc(2, p, 0), // belongs to head 0, 5.0 away; head 1 is at 0.0
        ]);
        assert!(check_best_head(&s, false).is_empty());
        assert_eq!(check_best_head(&s, false), naive::check_best_head(&s, false));
    }

    /// A randomized snapshot exercising the index: lattice-ish ILs,
    /// negative coordinates, exact duplicate positions, dead nodes,
    /// dangling head pointers, surrogates, and disconnected components.
    fn random_snapshot(seed: u64) -> Snapshot {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let spacing = head_spacing(100.0);
        let n = rng.gen_range(4usize..60);
        let mut nodes: Vec<NodeView> = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let mut pos = Point::new(rng.gen_range(-800.0..800.0), rng.gen_range(-800.0..800.0));
            if i > 0 && rng.gen_bool(0.15) {
                // Exact duplicate of an earlier node's position.
                pos = nodes[rng.gen_range(0..nodes.len())].pos;
            }
            let roll: f64 = rng.gen_range(0.0..1.0);
            let mut view = if i == 0 || roll < 0.4 {
                // Head with an IL on a half-spacing lattice (so IL pairs
                // land on either side of the 1.25-spacing neighbor cut);
                // position usually near the IL, sometimes wildly off.
                let il = Point::new(
                    (f64::from(rng.gen_range(0u32..9)) - 4.0) * spacing * 0.5,
                    (f64::from(rng.gen_range(0u32..9)) - 4.0) * spacing * 0.5,
                );
                if rng.gen_bool(0.6) {
                    pos = Point::new(
                        il.x + rng.gen_range(-15.0..15.0),
                        il.y + rng.gen_range(-15.0..15.0),
                    );
                }
                head(i, pos, il, rng.gen_range(0..n as u64), rng.gen_range(0u32..5), vec![])
            } else if roll < 0.8 {
                assoc(i, pos, rng.gen_range(0..n as u64))
            } else {
                let mut b = assoc(i, pos, 0);
                b.role = RoleView::Bootup;
                b
            };
            if rng.gen_bool(0.1) {
                view.alive = false;
            }
            if let RoleView::Associate { surrogate, .. } = &mut view.role {
                *surrogate = rng.gen_bool(0.1);
            }
            nodes.push(view);
        }
        snap(nodes)
    }

    /// Canonical view of a grid for equality checks: cell → sorted
    /// members. Cell-member order is insertion-history dependent and never
    /// leaks into check results, so it is erased here.
    fn grid_cells(g: &SpatialGrid) -> BTreeMap<(i64, i64), Vec<usize>> {
        let mut out = BTreeMap::new();
        g.for_each_cell(|k, members| {
            let mut m = members.to_vec();
            m.sort_unstable();
            out.insert(k, m);
        });
        out
    }

    /// Asserts the incrementally-updated index is indistinguishable from a
    /// fresh [`SnapshotIndex::build`] of the same snapshot.
    fn assert_index_matches_rebuild(s: &Snapshot, inc: &SnapshotIndex, ctx: &str) {
        let full = SnapshotIndex::build(s);
        assert_eq!(inc.heads, full.heads, "heads diverge {ctx}");
        assert_eq!(inc.inner, full.inner, "inner set diverges {ctx}");
        assert_eq!(inc.inner_mask, full.inner_mask, "inner mask diverges {ctx}");
        assert_eq!(inc.facts, full.facts, "facts diverge {ctx}");
        assert_eq!(grid_cells(&inc.alive), grid_cells(&full.alive), "alive grid diverges {ctx}");
        assert_eq!(
            grid_cells(&inc.head_pos),
            grid_cells(&full.head_pos),
            "head-pos grid diverges {ctx}"
        );
        assert_eq!(
            grid_cells(&inc.head_il),
            grid_cells(&full.head_il),
            "head-IL grid diverges {ctx}"
        );
        assert_eq!(
            check_all_with(s, Strictness::Dynamic, inc),
            check_all_with(s, Strictness::Dynamic, &full),
            "check results diverge {ctx}"
        );
    }

    /// One random structural delta: spawn, kill, revive, move, head
    /// shift (IL change), or role flip (associate ↔ head) — the event
    /// classes [`SnapshotIndex::update`] maintains the index under.
    fn mutate_snapshot(s: &mut Snapshot, rng: &mut rand::rngs::StdRng) {
        use rand::Rng;
        let spacing = head_spacing(s.r);
        let lattice = |rng: &mut rand::rngs::StdRng| {
            Point::new(
                (f64::from(rng.gen_range(0u32..9)) - 4.0) * spacing * 0.5,
                (f64::from(rng.gen_range(0u32..9)) - 4.0) * spacing * 0.5,
            )
        };
        let i = rng.gen_range(0..s.nodes.len());
        match rng.gen_range(0u32..10) {
            0 => {
                // Spawn (snapshots only grow; the new id is the new tail).
                let id = s.nodes.len() as u64;
                let pos = Point::new(rng.gen_range(-800.0..800.0), rng.gen_range(-800.0..800.0));
                let view = if rng.gen_bool(0.5) {
                    head(id, pos, lattice(rng), 0, 1, vec![])
                } else {
                    assoc(id, pos, rng.gen_range(0..id))
                };
                s.nodes.push(view);
            }
            1 | 2 => s.nodes[i].alive = false,
            3 => s.nodes[i].alive = true,
            4 | 5 => {
                s.nodes[i].pos =
                    Point::new(rng.gen_range(-800.0..800.0), rng.gen_range(-800.0..800.0));
            }
            6 | 7 => {
                // Head shift: move the IL (and usually the head with it).
                let new_il = lattice(rng);
                if let RoleView::Head { il, .. } = &mut s.nodes[i].role {
                    *il = new_il;
                }
                if rng.gen_bool(0.7) {
                    s.nodes[i].pos = Point::new(
                        new_il.x + rng.gen_range(-15.0..15.0),
                        new_il.y + rng.gen_range(-15.0..15.0),
                    );
                }
            }
            8 => {
                // Role flip: promote to head.
                let il = lattice(rng);
                let promoted = head(s.nodes[i].id.raw(), s.nodes[i].pos, il, 0, 1, vec![]);
                s.nodes[i].role = promoted.role;
            }
            _ => {
                // Role flip: demote to associate.
                s.nodes[i].role = RoleView::Associate {
                    head: NodeId::new(rng.gen_range(0..s.nodes.len()) as u64),
                    cell_il: Point::ORIGIN,
                    surrogate: rng.gen_bool(0.1),
                    is_candidate: false,
                };
            }
        }
    }

    #[test]
    fn incremental_index_matches_rebuild_under_churn() {
        use rand::SeedableRng;
        for seed in 0..20 {
            let mut s = random_snapshot(seed);
            let mut idx = SnapshotIndex::build(&s);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
            for step in 0..50 {
                mutate_snapshot(&mut s, &mut rng);
                idx.update(&s);
                assert_index_matches_rebuild(&s, &idx, &format!("at seed {seed} step {step}"));
            }
        }
    }

    #[test]
    fn incremental_update_is_idempotent_on_no_change() {
        let s = random_snapshot(3);
        let mut idx = SnapshotIndex::build(&s);
        idx.update(&s);
        assert_index_matches_rebuild(&s, &idx, "after a no-op update");
    }

    #[test]
    #[should_panic(expected = "never reused")]
    fn incremental_update_rejects_shrinking_snapshots() {
        let mut s = random_snapshot(5);
        let mut idx = SnapshotIndex::build(&s);
        s.nodes.pop();
        idx.update(&s);
    }

    #[test]
    fn grid_checks_match_naive_on_random_snapshots() {
        for seed in 0..60 {
            let s = random_snapshot(seed);
            let idx = SnapshotIndex::build(&s);
            assert_eq!(
                check_neighbor_distances_with(&s, &idx),
                naive::check_neighbor_distances(&s),
                "neighbor distances diverge at seed {seed}"
            );
            for inner_only in [false, true] {
                assert_eq!(
                    check_best_head_with(&s, inner_only, &idx),
                    naive::check_best_head(&s, inner_only),
                    "best-head (inner_only={inner_only}) diverges at seed {seed}"
                );
            }
            assert_eq!(
                idx.inner_heads(),
                &naive::inner_heads(&s),
                "inner classification diverges at seed {seed}"
            );
            assert_eq!(
                physically_connected_to_big_with(&s, &idx),
                naive::physically_connected_to_big(&s),
                "connectivity diverges at seed {seed}"
            );
            assert_eq!(
                check_cell_radius_with(&s, 0.0, &idx),
                naive::check_cell_radius(&s, 0.0),
                "cell radius diverges at seed {seed}"
            );
            assert_eq!(
                check_all_with(&s, Strictness::Dynamic, &idx),
                naive::check_all(&s, Strictness::Dynamic),
                "full suite diverges at seed {seed}"
            );
        }
    }
}
