//! Control-plane reliability layer.
//!
//! Three cooperating mechanisms, all gated by [`ReliabilityConfig`] and all
//! RNG-inert when disabled (no messages, no timers, no RNG draws — runs are
//! bit-identical to a build without the layer):
//!
//! * **Acked retransmission** — one-shot control messages (`head_set`
//!   assignments, `new_child_head`, `child_retire`, `replacing_head`,
//!   `proxy_assign`/`proxy_release`, `parent_seek`) are wrapped in
//!   [`Msg::Reliable`] envelopes carrying a sender-local sequence number.
//!   The receiver acks every copy and dedups through a bounded per-sender
//!   window, so redelivery is idempotent. The sender retransmits with
//!   exponential backoff plus seeded jitter and, after `max_retries`
//!   attempts, fires a protocol-level give-up hook instead of retrying
//!   forever.
//! * **Adaptive failure detection** — a per-neighbor EWMA of heartbeat
//!   inter-arrival times (phi-accrual style). The suspicion threshold
//!   `2·mean + k·dev` (the doubled mean grants one interval of grace) is
//!   clamped so detection is never *slower* than the legacy fixed
//!   `heartbeat × failure_misses` timeout; on calm channels it is faster.
//! * **Quarantine-mode graceful degradation** — a head that exhausts
//!   consecutive `PARENT_SEEK` rounds under persistent partition keeps
//!   serving its cell instead of abandoning it, buffers upward aggregate
//!   reports behind a bounded buffer, and drains the buffer when it
//!   re-attaches to the head graph.
//!
//! All tallies flow through [`Context::count`](gs3_sim::Context::count)
//! into the trace's protocol counters and from there into `ChaosReport`.

use std::collections::{BTreeMap, BTreeSet};

use gs3_sim::{NodeId, SimDuration, SimTime};

use crate::config::ReliabilityConfig;
use crate::messages::Msg;
use crate::node::{Ctx, Gs3Node};
use crate::state::{HeadState, Role};
use crate::timers::Timer;

/// A reliable send awaiting its [`Msg::DeliveryAck`].
#[derive(Debug, Clone)]
pub(crate) struct PendingSend {
    /// The destination.
    pub to: NodeId,
    /// The wrapped control message (kept for retransmission and for the
    /// give-up hook).
    pub msg: Msg,
    /// Transmissions so far beyond the first (drives the backoff exponent).
    pub attempt: u32,
}

/// A per-neighbor heartbeat inter-arrival estimator (integer microseconds;
/// no floats so traces stay platform-stable).
#[derive(Debug, Clone)]
pub(crate) struct Detector {
    /// When the peer was last heard.
    pub last: SimTime,
    /// EWMA of the inter-arrival time.
    pub mean_us: u64,
    /// EWMA of the absolute deviation from the mean.
    pub dev_us: u64,
    /// Inter-arrival samples folded in so far (warm-up guard).
    pub samples: u32,
}

/// A per-sender anti-replay window, value-ordered (IPsec-style): `hi` is
/// the highest sequence accepted so far and `recent` holds every accepted
/// sequence still inside `(hi − window, hi]`. A delivery is rejected as a
/// duplicate when its sequence is in `recent` *or* at-or-below the window
/// floor.
///
/// The floor rule is what makes readmission impossible: an accepted
/// sequence leaves `recent` only by falling below the floor, where the
/// floor keeps rejecting it forever. The previous FIFO-evicting window
/// lacked that property — under reordering, a sequence *higher* than the
/// survivors could be evicted first and a late duplicate of it would
/// dispatch twice (found by `gs3 mc`'s `no-dedup-readmit` oracle; replayed
/// in `tests/mc_regressions.rs`). The price is that a first delivery
/// arriving below the floor (delayed behind `window` fresh sequences) is
/// rejected as stale; liveness is preserved by retransmission and, past
/// the retry budget, the protocol-level give-up fallback.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct SeenWindow {
    /// Highest sequence accepted from this sender.
    pub hi: u64,
    /// Accepted sequences in `(hi − window, hi]`.
    pub recent: BTreeSet<u64>,
}

impl SeenWindow {
    /// Admits or rejects one delivered sequence. Returns true when `seq`
    /// is fresh (dispatch the inner message), false when it is a duplicate
    /// or below the window floor.
    pub fn admit(&mut self, seq: u64, window: u64) -> bool {
        let window = window.max(1);
        if seq.saturating_add(window) <= self.hi {
            return false;
        }
        if !self.recent.insert(seq) {
            return false;
        }
        self.hi = self.hi.max(seq);
        let floor = self.hi.saturating_sub(window);
        while self.recent.first().is_some_and(|&lo| lo <= floor) {
            self.recent.pop_first();
        }
        true
    }
}

/// Reliability-layer state carried by every node across role transitions.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReliableState {
    /// Next sequence number to allocate (monotone across destinations).
    pub next_seq: u64,
    /// Unacked reliable sends by sequence number.
    pub pending: BTreeMap<u64, PendingSend>,
    /// Per-sender anti-replay windows (dedup).
    pub seen: BTreeMap<NodeId, SeenWindow>,
    /// Per-neighbor inter-arrival estimators.
    pub detectors: BTreeMap<NodeId, Detector>,
    /// Peers suspected by the adaptive detector *earlier* than the legacy
    /// timeout would have fired, mapped to that legacy deadline — hearing
    /// the peer again before it proves the suspicion false.
    pub suspected: BTreeMap<NodeId, SimTime>,
}

/// The adaptive per-peer suspicion timeout: `2·mean + k·dev` once the
/// estimator is warm (≥ 4 samples), clamped to never exceed `legacy`.
/// Falls back to `legacy` when adaptive detection is off or the peer is
/// still unknown.
pub(crate) fn suspect_after(
    rel: &ReliableState,
    cfg: &ReliabilityConfig,
    peer: NodeId,
    legacy: SimDuration,
) -> SimDuration {
    if !cfg.adaptive_detection {
        return legacy;
    }
    match rel.detectors.get(&peer) {
        Some(d) if d.samples >= 4 => {
            let adaptive_us = (2 * d.mean_us).saturating_add(cfg.phi_k.saturating_mul(d.dev_us));
            legacy.min(SimDuration::from_micros(adaptive_us.max(1)))
        }
        _ => legacy,
    }
}

/// Records that `peer` was suspected ahead of the legacy deadline, so a
/// later sighting before that deadline can be tallied as a false suspicion.
pub(crate) fn mark_suspected(rel: &mut ReliableState, peer: NodeId, legacy_deadline: SimTime) {
    rel.suspected.insert(peer, legacy_deadline);
    if rel.suspected.len() > 64 {
        // Opportunistic bound: drop the stalest entries (deadline long
        // past — they can never be proven false anymore).
        let cutoff = *rel.suspected.values().min().expect("nonempty");
        rel.suspected.retain(|_, d| *d > cutoff);
    }
}

/// Bumps the failed-seek counter of a partitioned head and enters
/// quarantine once the configured limit is reached.
pub(crate) fn note_seek_failed(h: &mut HeadState, cfg: &ReliabilityConfig, ctx: &mut Ctx<'_>) {
    h.failed_seeks = h.failed_seeks.saturating_add(1);
    if cfg.quarantine && !h.quarantined && h.failed_seeks >= cfg.quarantine_seek_limit {
        h.quarantined = true;
        ctx.count("quarantine_entries");
        ctx.event("quarantine_enter", u64::from(h.failed_seeks));
    }
}

/// A head re-attached to the head graph (accepted a `parent_seek_ack`,
/// adopted a better parent, or heard its silent parent again): reset the
/// seek bookkeeping and, when leaving quarantine, drain the buffered
/// aggregates to the new parent as one summed report.
///
/// With the data plane enabled the quarantine buffer is the head's
/// aggregation queue instead (`quarantine_buf` stays empty, so the summed
/// drain below is a no-op): the queued batches replay through the
/// ordinary credit-gated drain at the next report tick, and the sink's
/// `(origin, seq)` dedup keeps any overlap from double-counting.
pub(crate) fn head_reattached(h: &mut HeadState, ctx: &mut Ctx<'_>) {
    h.failed_seeks = 0;
    h.pending_seek = None;
    ctx.event("head_reattached", h.parent.raw());
    if h.quarantined {
        h.quarantined = false;
        ctx.count("quarantine_exits");
        ctx.event("quarantine_exit", 0);
        let total: u64 = h.quarantine_buf.iter().map(|&c| u64::from(c)).sum();
        h.quarantine_buf.clear();
        if total > 0 {
            let count = u32::try_from(total).unwrap_or(u32::MAX);
            if h.parent != ctx.id() {
                ctx.unicast(h.parent, Msg::AggregateReport { count });
            }
            ctx.count_by("quarantine_drained", u64::from(count));
        }
    }
}

impl Gs3Node {
    /// Sends a one-shot control message, reliably when the layer is
    /// enabled (envelope + retransmission timer), as a plain unicast
    /// otherwise.
    pub(crate) fn send_ctrl(&mut self, ctx: &mut Ctx<'_>, to: NodeId, msg: Msg) {
        if !self.cfg.reliability.enabled {
            ctx.unicast(to, msg);
            return;
        }
        self.rel.next_seq += 1;
        let seq = self.rel.next_seq;
        self.rel.pending.insert(seq, PendingSend { to, msg: msg.clone(), attempt: 0 });
        ctx.unicast(to, Msg::Reliable { seq, inner: Box::new(msg) });
        ctx.count("reliable_sent");
        let rto = self.retransmit_after(ctx, 0);
        ctx.set_timer(rto, Timer::Retransmit { seq });
    }

    /// The backoff delay before the next retransmission of an attempt:
    /// `base_rto × 2^attempt` plus jitter uniform in `[0, base_rto/2)`
    /// drawn from the seeded engine RNG.
    fn retransmit_after(&self, ctx: &mut Ctx<'_>, attempt: u32) -> SimDuration {
        use rand::Rng as _;
        let base = self.cfg.reliability.base_rto;
        let mult = 1u64 << attempt.min(10);
        let jitter_max = (base.as_micros() / 2).max(1);
        let jitter = SimDuration::from_micros(ctx.rng().gen_range(0..jitter_max));
        base * mult + jitter
    }

    /// Handles an incoming [`Msg::Reliable`]: ack every copy, dedup through
    /// the per-sender anti-replay window, and dispatch the inner message
    /// at most once, ever (see [`SeenWindow`]).
    pub(crate) fn on_reliable(
        &mut self,
        from: NodeId,
        seq: u64,
        inner: Msg,
        ctx: &mut Ctx<'_>,
    ) {
        ctx.unicast(from, Msg::DeliveryAck { seq });
        let window = self.cfg.reliability.dedup_window.max(1) as u64;
        let seen = self.rel.seen.entry(from).or_default();
        if !seen.admit(seq, window) {
            ctx.count("reliable_dedup_hits");
            return;
        }
        // The accept point, visible to the model checker's no-readmission
        // oracle through the flight recorder (recorded only in Full mode;
        // digest-inert). Sender id and sequence packed into one word.
        ctx.event("rel_apply", (from.raw() << 40) | (seq & 0xFF_FFFF_FFFF));
        <Self as gs3_sim::Node>::on_message(self, from, inner, ctx);
    }

    /// Handles a [`Msg::DeliveryAck`]: settle the pending send and cancel
    /// its retransmission timer.
    pub(crate) fn on_delivery_ack(&mut self, from: NodeId, seq: u64, ctx: &mut Ctx<'_>) {
        if self.rel.pending.get(&seq).is_some_and(|p| p.to == from) {
            self.rel.pending.remove(&seq);
            ctx.cancel_timers(Timer::Retransmit { seq });
            ctx.count("reliable_acked");
        }
    }

    /// A retransmission deadline fired: resend with deeper backoff, or —
    /// past `max_retries` — give up and run the protocol-level fallback
    /// for the abandoned message.
    pub(crate) fn on_retransmit(&mut self, seq: u64, ctx: &mut Ctx<'_>) {
        // Retransmit timers are only armed on enabled-layer paths, but the
        // gate must be explicit: with reliability disabled this handler has
        // to stay RNG-inert even if a stale timer fires, or the shared
        // seeded stream shifts and every digest changes.
        if !self.cfg.reliability.enabled {
            return;
        }
        let max_retries = self.cfg.reliability.max_retries;
        let Some(p) = self.rel.pending.get_mut(&seq) else { return };
        p.attempt += 1;
        if p.attempt > max_retries {
            let p = self.rel.pending.remove(&seq).expect("pending send present");
            ctx.count("reliable_give_ups");
            ctx.event("reliable_give_up", p.to.raw());
            self.on_reliable_give_up(p.to, p.msg, ctx);
            return;
        }
        let (to, msg, attempt) = (p.to, p.msg.clone(), p.attempt);
        ctx.unicast(to, Msg::Reliable { seq, inner: Box::new(msg) });
        ctx.count("reliable_retransmits");
        let rto = self.retransmit_after(ctx, attempt);
        ctx.set_timer(rto, Timer::Retransmit { seq });
    }

    /// Protocol-level fallback when a reliable send is abandoned: instead
    /// of pretending delivery, repair the state that depended on it.
    fn on_reliable_give_up(&mut self, to: NodeId, msg: Msg, ctx: &mut Ctx<'_>) {
        let cfg = &self.cfg.reliability;
        match msg {
            Msg::NewChildHead { .. } => {
                // The adoption never registered: the chosen parent is
                // unreachable. Forget it and inflate hops so the next
                // inter heartbeat re-runs parent selection.
                if let Role::Head(h) = &mut self.role {
                    if h.parent == to {
                        h.neighbors.remove(&to);
                        h.hops = u32::MAX / 2;
                        h.parent_last_heard = SimTime::ZERO;
                    }
                }
            }
            Msg::ParentSeek { round, .. } => {
                // The probed neighbor never answered: strike it from the
                // neighbor table so the next seek round tries the
                // next-closest head, and count the round as failed.
                if let Role::Head(h) = &mut self.role {
                    h.neighbors.remove(&to);
                    if h.pending_seek == Some(round) {
                        h.pending_seek = None;
                        note_seek_failed(h, cfg, ctx);
                    }
                }
            }
            Msg::ProxyAssign => {
                // The chosen proxy is unreachable: forget it so the next
                // BigCheck picks the next-closest known head.
                if let Role::BigAway(b) = &mut self.role {
                    if b.proxy == Some(to) {
                        b.proxy = None;
                        b.known_heads.remove(&to);
                    }
                }
            }
            // ChildRetire / ReplacingHead / ProxyRelease are courtesy
            // notifications; the receiver's own failure detection covers
            // the loss.
            // gs3-lint: allow(t1) -- deliberately partial: only messages with give-up repair actions are named; courtesy messages need no fallback
            _ => {}
        }
    }

    /// Feeds a heartbeat sighting of `from` into its inter-arrival
    /// estimator and clears (and tallies) any suspicion the sighting
    /// proves false. No-op unless adaptive detection is on.
    pub(crate) fn detector_observe(&mut self, from: NodeId, ctx: &mut Ctx<'_>) {
        if !self.cfg.reliability.adaptive_detection {
            return;
        }
        let now = ctx.now();
        if let Some(legacy_deadline) = self.rel.suspected.remove(&from) {
            if now < legacy_deadline {
                ctx.count("detector_false_suspicions");
            }
        }
        let alpha = self.cfg.reliability.ewma_alpha_num.min(16);
        match self.rel.detectors.get_mut(&from) {
            None => {
                self.rel
                    .detectors
                    .insert(from, Detector { last: now, mean_us: 0, dev_us: 0, samples: 0 });
                if self.rel.detectors.len() > 128 {
                    // Opportunistic bound: forget peers not heard for the
                    // longest (mobile networks churn neighbor sets).
                    let cutoff = self
                        .rel
                        .detectors
                        .values()
                        .map(|d| d.last)
                        .min()
                        .expect("nonempty");
                    self.rel.detectors.retain(|_, d| d.last > cutoff);
                }
            }
            Some(d) => {
                let sample = now.saturating_since(d.last).as_micros();
                d.last = now;
                if sample == 0 {
                    return; // duplicate delivery at the same instant
                }
                if d.samples == 0 {
                    d.mean_us = sample;
                    d.dev_us = sample / 2;
                } else {
                    d.mean_us = ((16 - alpha) * d.mean_us + alpha * sample) / 16;
                    let dev_sample = d.mean_us.abs_diff(sample);
                    d.dev_us = ((16 - alpha) * d.dev_us + alpha * dev_sample) / 16;
                }
                d.samples = d.samples.saturating_add(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm_detector(mean_us: u64, dev_us: u64) -> ReliableState {
        let mut rel = ReliableState::default();
        rel.detectors.insert(
            NodeId::new(7),
            Detector { last: SimTime::ZERO, mean_us, dev_us, samples: 8 },
        );
        rel
    }

    #[test]
    fn suspect_after_clamps_to_legacy() {
        let cfg = ReliabilityConfig { adaptive_detection: true, ..ReliabilityConfig::disabled() };
        let legacy = SimDuration::from_secs(9);
        // Warm detector with a huge mean: clamp wins.
        let rel = warm_detector(100_000_000, 0);
        assert_eq!(suspect_after(&rel, &cfg, NodeId::new(7), legacy), legacy);
        // Calm channel: 2·mean + k·dev well under legacy.
        let rel = warm_detector(1_000_000, 10_000);
        let adaptive = suspect_after(&rel, &cfg, NodeId::new(7), legacy);
        assert_eq!(adaptive, SimDuration::from_micros(2_040_000));
    }

    #[test]
    fn suspect_after_needs_warmup_and_flag() {
        let legacy = SimDuration::from_secs(9);
        let mut rel = warm_detector(1_000_000, 0);
        rel.detectors.get_mut(&NodeId::new(7)).unwrap().samples = 2;
        let on = ReliabilityConfig { adaptive_detection: true, ..ReliabilityConfig::disabled() };
        assert_eq!(suspect_after(&rel, &on, NodeId::new(7), legacy), legacy, "cold detector");
        let rel = warm_detector(1_000_000, 0);
        let off = ReliabilityConfig::disabled();
        assert_eq!(suspect_after(&rel, &off, NodeId::new(7), legacy), legacy, "flag off");
        assert_eq!(
            suspect_after(&rel, &on, NodeId::new(99), legacy),
            legacy,
            "unknown peer"
        );
    }

    #[test]
    fn suspected_map_stays_bounded() {
        let mut rel = ReliableState::default();
        for i in 0..200 {
            mark_suspected(&mut rel, NodeId::new(i), SimTime::from_micros(i));
        }
        assert!(rel.suspected.len() <= 64 + 1);
    }

    #[test]
    fn seen_window_basic_dedup() {
        let mut w = SeenWindow::default();
        assert!(w.admit(1, 16));
        assert!(!w.admit(1, 16), "immediate duplicate rejected");
        assert!(w.admit(2, 16));
        assert!(!w.admit(2, 16));
        assert!(!w.admit(1, 16));
    }

    // The readmission counterexample `gs3 mc` minimized against the old
    // FIFO-evicting window (window = 2): accept 100, then the reordered
    // 99 and 98, then 101 — FIFO eviction would push out 100 while 98/99
    // stayed, so a late duplicate of 100 dispatched twice. The
    // value-ordered window must reject every re-delivery of an accepted
    // sequence, forever.
    #[test]
    fn seen_window_never_readmits_under_reordering() {
        let mut w = SeenWindow::default();
        assert!(w.admit(100, 2));
        assert!(w.admit(99, 2), "in-window reordered arrival accepted");
        assert!(!w.admit(98, 2), "below the floor: stale-rejected");
        assert!(w.admit(101, 2));
        assert!(!w.admit(100, 2), "accepted seq must never readmit");
        assert!(!w.admit(99, 2), "accepted seq must never readmit");
        assert!(!w.admit(101, 2));
        assert!(w.admit(102, 2));
        assert!(!w.admit(100, 2), "still rejected after more traffic");
    }

    // Regression for the `d4` lint finding on `on_retransmit`: with the
    // reliability layer disabled (the digest-pinned default), a stale
    // Retransmit deadline must return before touching the shared seeded
    // RNG — otherwise one forged timer shifts the stream and every
    // subsequent draw (hence every digest) diverges. Compare a run with
    // an injected stale timer against an untouched control run.
    #[test]
    fn stale_retransmit_is_rng_inert_when_disabled() {
        use crate::harness::NetworkBuilder;

        let run = |inject: bool| {
            let mut net = NetworkBuilder::new()
                .area_radius(200.0)
                .expected_nodes(120)
                .seed(11)
                .build()
                .unwrap();
            net.run_for(SimDuration::from_secs(30));
            assert!(
                !net.config().reliability.enabled,
                "control premise: reliability defaults to disabled"
            );
            if inject {
                let big = net.big_id();
                net.engine_mut()
                    .inject_timer(big, Timer::Retransmit { seq: 9_999 }, SimDuration::from_millis(1))
                    .unwrap();
            }
            net.run_for(SimDuration::from_secs(5));
            (net.engine().rng_state(), net.engine().trace().digest())
        };
        assert_eq!(
            run(false),
            run(true),
            "a stale Retransmit timer perturbed the RNG stream or traffic digest"
        );
    }

    #[test]
    fn seen_window_memory_stays_bounded() {
        let mut w = SeenWindow::default();
        for seq in 1..=10_000u64 {
            assert!(w.admit(seq, 16));
        }
        assert!(w.recent.len() <= 16, "window holds at most `window` seqs");
        assert_eq!(w.hi, 10_000);
        assert!(!w.admit(5, 16), "ancient seq stays rejected");
    }
}
