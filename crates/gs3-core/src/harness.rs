//! The network harness: builds a deployed GS³ network on the simulator,
//! runs it to its fixpoint, injects every perturbation class of the paper's
//! model, and extracts [`Snapshot`]s for checking and measurement.

use gs3_geometry::{Point, Vec2};
use gs3_sim::deploy::Deployment;
use gs3_sim::faults::{BurstLoss, FaultConfig};
use gs3_sim::radio::{EnergyModel, RadioModel};
use gs3_sim::{Engine, NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gs3_sim::ContentionConfig;

use crate::config::{CongestionConfig, ConfigError, Gs3Config, Mode, ReliabilityConfig};
use crate::node::Gs3Node;
use crate::snapshot::{view_role, NodeView, RoleView, Snapshot};
use crate::state::Role;

/// Builder for a deployed GS³ [`Network`].
///
/// ```rust
/// use gs3_core::harness::NetworkBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = NetworkBuilder::new()
///     .ideal_radius(100.0)
///     .radius_tolerance(15.0)
///     .area_radius(250.0)
///     .expected_nodes(600)
///     .seed(1)
///     .build()?;
/// assert!(net.engine().node_count() > 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    r: f64,
    r_t: f64,
    area_radius: f64,
    lambda: f64,
    seed: u64,
    mode: Mode,
    gaps: Vec<(Point, f64)>,
    position_noise: f64,
    radio: Option<RadioModel>,
    energy: Option<(EnergyModel, f64)>,
    big_pos: Point,
    extra_bigs: Vec<Point>,
    config_override: Option<Gs3Config>,
    broadcast_loss: f64,
    traffic_period: Option<SimDuration>,
    faults: FaultConfig,
    reliability: Option<ReliabilityConfig>,
    contention: Option<ContentionConfig>,
    congestion: Option<CongestionConfig>,
    dataplane: Option<gs3_dataplane::DataplaneConfig>,
    flight_recorder: Option<usize>,
    explicit_nodes: Vec<Point>,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        NetworkBuilder {
            r: 100.0,
            r_t: 15.0,
            area_radius: 300.0,
            lambda: 0.02,
            seed: 0,
            mode: Mode::Dynamic,
            gaps: Vec::new(),
            position_noise: 0.0,
            radio: None,
            energy: None,
            big_pos: Point::ORIGIN,
            extra_bigs: Vec::new(),
            config_override: None,
            broadcast_loss: 0.0,
            traffic_period: None,
            faults: FaultConfig::none(),
            reliability: None,
            contention: None,
            congestion: None,
            dataplane: None,
            flight_recorder: None,
            explicit_nodes: Vec::new(),
        }
    }
}

impl NetworkBuilder {
    /// A builder with the default scenario (R=100, R_t=15, disk radius
    /// 300, λ=0.02 ⇒ ≈1800 nodes).
    #[must_use]
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Sets the ideal cell radius `R`.
    #[must_use]
    pub fn ideal_radius(mut self, r: f64) -> Self {
        self.r = r;
        self
    }

    /// Sets the radius tolerance `R_t`.
    #[must_use]
    pub fn radius_tolerance(mut self, r_t: f64) -> Self {
        self.r_t = r_t;
        self
    }

    /// Sets the deployment disk radius (centered on the big node).
    #[must_use]
    pub fn area_radius(mut self, radius: f64) -> Self {
        self.area_radius = radius;
        self
    }

    /// Sets the paper's density λ (expected nodes per unit-radius disk).
    #[must_use]
    pub fn density(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the density via a target expected node count over the
    /// deployment area.
    #[must_use]
    pub fn expected_nodes(mut self, n: usize) -> Self {
        self.lambda = n as f64 / (self.area_radius * self.area_radius);
        self
    }

    /// Sets the RNG seed (deployment and channel jitter are fully
    /// deterministic given the seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the protocol variant.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Clears a disk of nodes (an `R_t`-gap) from the deployment.
    #[must_use]
    pub fn with_gap(mut self, center: Point, radius: f64) -> Self {
        self.gaps.push((center, radius));
        self
    }

    /// Adds Gaussian localization noise (σ meters).
    #[must_use]
    pub fn position_noise(mut self, sigma: f64) -> Self {
        self.position_noise = sigma;
        self
    }

    /// Sets the broadcast loss probability (in `[0, 1)`).
    #[must_use]
    pub fn broadcast_loss(mut self, loss: f64) -> Self {
        self.broadcast_loss = loss;
        self
    }

    /// Sets the unicast loss probability (in `[0, 1)`) — breaks the
    /// paper's reliable destination-aware transmission assumption.
    /// Lost org replies, acks, and handshakes must be recovered by the
    /// protocol's periodic timers.
    #[must_use]
    pub fn unicast_loss(mut self, loss: f64) -> Self {
        self.faults.unicast_loss = loss;
        self
    }

    /// Enables Gilbert–Elliott burst loss: the channel enters a total-loss
    /// bad state with probability `p_enter` per delivery attempt and stays
    /// there for bursts of `mean_burst` attempts on average (see
    /// [`gs3_sim::faults::BurstLoss`]).
    #[must_use]
    pub fn burst_loss(mut self, p_enter: f64, mean_burst: f64) -> Self {
        self.faults.burst = BurstLoss::bursty(p_enter, mean_burst);
        self
    }

    /// Installs a full adversarial-channel configuration (overrides any
    /// individual `unicast_loss` / `burst_loss` knobs set earlier).
    #[must_use]
    pub fn fault_config(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the radio model entirely.
    #[must_use]
    pub fn radio(mut self, radio: RadioModel) -> Self {
        self.radio = Some(radio);
        self
    }

    /// Enables energy accounting with the given model and per-node budget.
    #[must_use]
    pub fn energy(mut self, model: EnergyModel, budget: f64) -> Self {
        self.energy = Some((model, budget));
        self
    }

    /// Places the big node (default: origin, the deployment center).
    #[must_use]
    pub fn big_position(mut self, pos: Point) -> Self {
        self.big_pos = pos;
        self
    }

    /// Adds an additional big node (gateway) at `pos` — the paper's
    /// Section 7 extension: each small node ends up in the structure of
    /// its best (closest) big node, and the head graphs form a forest with
    /// one tree per gateway.
    #[must_use]
    pub fn with_extra_big(mut self, pos: Point) -> Self {
        self.extra_bigs.push(pos);
        self
    }

    /// Uses a fully custom protocol configuration (overrides `r`, `r_t`,
    /// and `mode` set on the builder).
    #[must_use]
    pub fn config(mut self, cfg: Gs3Config) -> Self {
        self.config_override = Some(cfg);
        self
    }

    /// Enables the sensing workload: associates report to their head and
    /// heads aggregate-and-relay up the head graph every `period` (the
    /// paper's data-aggregation traffic model).
    #[must_use]
    pub fn traffic(mut self, period: SimDuration) -> Self {
        self.traffic_period = Some(period);
        self
    }

    /// Configures the control-plane reliability layer (acked
    /// retransmission, adaptive failure detection, quarantine). Applied on
    /// top of `config` overrides; the default is the inert
    /// [`ReliabilityConfig::disabled`].
    #[must_use]
    pub fn reliability(mut self, rc: ReliabilityConfig) -> Self {
        self.reliability = Some(rc);
        self
    }

    /// Configures the shared-medium contention layer (airtime occupancy,
    /// carrier-sense backoff, receiver-side collisions). The default is
    /// the inert [`ContentionConfig::disabled`], under which runs are
    /// bit-identical to a contention-free build.
    #[must_use]
    pub fn contention(mut self, cc: ContentionConfig) -> Self {
        self.contention = Some(cc);
        self
    }

    /// Configures congestion-adaptive graceful degradation (heartbeat
    /// stretching and broadcast suppression under observed MAC
    /// contention). Applied on top of `config` overrides; the default is
    /// the inert [`CongestionConfig::disabled`].
    #[must_use]
    pub fn congestion(mut self, cc: CongestionConfig) -> Self {
        self.congestion = Some(cc);
        self
    }

    /// Configures the convergecast data plane (sequenced batches, bounded
    /// per-head queues, credit-based backpressure, sink-side delivery
    /// ledger) riding on the sensing workload — requires `traffic` to
    /// produce anything. Applied on top of `config` overrides; the
    /// default is the inert [`gs3_dataplane::DataplaneConfig::disabled`],
    /// under which runs are byte-identical to a build without the layer.
    #[must_use]
    pub fn dataplane(mut self, dc: gs3_dataplane::DataplaneConfig) -> Self {
        self.dataplane = Some(dc);
        self
    }

    /// Enables the full flight recorder with a ring of `capacity` events
    /// (see [`gs3_sim::telemetry::FlightRecorder`]). Recording is pure
    /// observation: scheduled-delivery digests are bit-identical with the
    /// recorder on or off. Without this knob only the cheap per-class
    /// counters run.
    #[must_use]
    pub fn flight_recorder(mut self, capacity: usize) -> Self {
        self.flight_recorder = Some(capacity);
        self
    }

    /// Places a small node at an exact position. Once any explicit node is
    /// given, `build` skips the Poisson deployment entirely and spawns
    /// exactly these nodes (plus the big node(s)) — the model checker uses
    /// this to define tiny fully-pinned fields whose state space does not
    /// depend on deployment sampling.
    #[must_use]
    pub fn with_small_node(mut self, pos: Point) -> Self {
        self.explicit_nodes.push(pos);
        self
    }

    /// Deploys the network.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the geometric parameters are invalid.
    pub fn build(self) -> Result<Network, ConfigError> {
        let mut cfg = match self.config_override {
            Some(c) => c,
            None => Gs3Config::new(self.r, self.r_t)?.with_mode(self.mode),
        };
        if let Some(period) = self.traffic_period {
            cfg.report_period = period;
        }
        if let Some(rc) = self.reliability {
            cfg.reliability = rc;
        }
        if let Some(cc) = self.congestion {
            cfg.congestion = cc;
        }
        if let Some(dc) = self.dataplane {
            cfg.dataplane = dc;
        }
        // With energy accounting on, heads retreat proactively while they
        // can still afford the handover chatter (head shift / cell shift
        // instead of abrupt death). ~40 coordination broadcasts of slack.
        if let Some((model, _)) = &self.energy {
            if cfg.head_retreat_energy == 0.0 {
                cfg.head_retreat_energy = model.tx_cost(
                    gs3_geometry::coordination_radius(cfg.r, cfg.r_t),
                ) * 40.0;
            }
        }
        let radio = self.radio.unwrap_or_else(|| {
            let mut m = RadioModel::ideal(cfg.coord_radius() * 1.05);
            m.broadcast_loss = self.broadcast_loss;
            m
        });
        let (energy_model, budget) = match self.energy {
            Some((m, b)) => (m, Some(b)),
            None => (EnergyModel::disabled(), None),
        };
        let mut eng: Engine<Gs3Node> = Engine::new(radio, energy_model, self.seed);
        eng.set_fault_config(self.faults);
        if let Some(cc) = self.contention {
            eng.set_contention(cc);
        }
        if let Some(capacity) = self.flight_recorder {
            eng.set_recording(gs3_sim::telemetry::RecorderMode::Full { capacity });
        }

        // The big node anchors the structure; spawn it first so the
        // diffusion starts at t=0. As the gateway/access point it is
        // mains-powered: the energy budget applies to small nodes only.
        let big = eng.spawn_at(Gs3Node::big(cfg.clone()), self.big_pos, SimTime::ZERO, None);
        let mut bigs = vec![big];
        for pos in &self.extra_bigs {
            bigs.push(eng.spawn_at(Gs3Node::big(cfg.clone()), *pos, SimTime::ZERO, None));
        }

        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if self.explicit_nodes.is_empty() {
            // `lambda` is the paper's λ (expected nodes per unit-radius
            // disk), which Deployment::disk takes directly: expected
            // count = λ·r².
            let mut deploy = Deployment::disk(self.area_radius, self.lambda)
                .with_position_noise(self.position_noise);
            for (c, g) in &self.gaps {
                deploy = deploy.with_gap(*c, *g);
            }
            for pos in deploy.generate(&mut rng) {
                eng.spawn_at(Gs3Node::small(cfg.clone()), pos, SimTime::ZERO, budget);
            }
        } else {
            for pos in &self.explicit_nodes {
                eng.spawn_at(Gs3Node::small(cfg.clone()), *pos, SimTime::ZERO, budget);
            }
        }

        Ok(Network { eng, big, bigs, cfg, rng, budget, scratch: Vec::new(), inv: None })
    }
}

/// How a [`Network::run_to_fixpoint`] run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The structure stabilized (structural signature unchanged over the
    /// required number of polls, no `HEAD_ORG` in flight).
    Fixpoint {
        /// Simulation time at which stabilization was *detected* (the
        /// structure settled up to one stability window earlier).
        at: SimTime,
        /// How many polls it took.
        polls: u32,
    },
    /// The deadline passed without stabilization.
    TimedOut {
        /// The deadline.
        at: SimTime,
    },
}

/// A deployed GS³ network under simulation.
///
/// `Clone` forks the entire simulation (engine, nodes, queue, RNG) into an
/// independent copy — the model checker's state save/restore primitive.
#[derive(Debug, Clone)]
pub struct Network {
    eng: Engine<Gs3Node>,
    big: NodeId,
    bigs: Vec<NodeId>,
    cfg: Gs3Config,
    rng: StdRng,
    budget: Option<f64>,
    // Reused id scratch for the perturbation helpers (kill_disk candidate
    // collection, kill_random's alive census) — empty between calls.
    scratch: Vec<NodeId>,
    // Snapshot buffer + incrementally-maintained index for
    // check_invariants_incremental; populated lazily on first use.
    inv: Option<(Snapshot, crate::invariants::SnapshotIndex)>,
}

impl Network {
    /// The underlying simulator.
    #[must_use]
    pub fn engine(&self) -> &Engine<Gs3Node> {
        &self.eng
    }

    /// Mutable access to the simulator (for advanced perturbations).
    pub fn engine_mut(&mut self) -> &mut Engine<Gs3Node> {
        &mut self.eng
    }

    /// The (primary) big node's id.
    #[must_use]
    pub fn big_id(&self) -> NodeId {
        self.big
    }

    /// All big nodes' ids (the primary plus any extras).
    #[must_use]
    pub fn big_ids(&self) -> &[NodeId] {
        &self.bigs
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> &Gs3Config {
        &self.cfg
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.eng.now()
    }

    /// Runs the simulation for a span of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        self.eng.run_for(span);
    }

    /// Runs until the cell structure stabilizes: the structural signature
    /// is unchanged for `stable_polls` consecutive polls of `poll` each.
    /// Gives up at `deadline`.
    ///
    /// Periodic boundary re-probes open no-op `HEAD_ORG` rounds forever in
    /// dynamic networks, so an *in-flight* round does not count as
    /// instability — only signature changes (a round that selects someone
    /// changes the signature and resets the counter).
    pub fn run_to_fixpoint_with(
        &mut self,
        poll: SimDuration,
        stable_polls: u32,
        deadline: SimTime,
    ) -> RunOutcome {
        let mut last_sig = self.structural_signature();
        let mut stable = 0u32;
        let mut polls = 0u32;
        while self.eng.now() < deadline {
            self.eng.run_for(poll);
            polls += 1;
            let sig = self.structural_signature();
            if sig == last_sig {
                stable += 1;
                if stable >= stable_polls {
                    return RunOutcome::Fixpoint { at: self.eng.now(), polls };
                }
            } else {
                stable = 0;
                last_sig = sig;
            }
        }
        RunOutcome::TimedOut { at: deadline }
    }

    /// [`run_to_fixpoint_with`](Network::run_to_fixpoint_with) using
    /// defaults sized to the configuration (poll = one intra heartbeat,
    /// 4 stable polls, deadline = now + 600 s).
    ///
    /// # Errors
    ///
    /// Returns the same outcome as `run_to_fixpoint_with`; the `Result`
    /// never carries an error today but reserves the right to (kept for
    /// API stability with the facade examples).
    pub fn run_to_fixpoint(&mut self) -> Result<RunOutcome, ConfigError> {
        let poll = self.cfg.intra_heartbeat;
        // The stability window must exceed the failure-detection windows
        // (intra and inter timeouts, twice over), or a perturbation still
        // inside its silent detection phase would read as "stable".
        let detect = (self.cfg.intra_timeout() * 2) + (self.cfg.inter_timeout() * 2);
        let polls = (detect.as_micros() / poll.as_micros().max(1)) as u32 + 2;
        let deadline = self.eng.now() + SimDuration::from_secs(600);
        Ok(self.run_to_fixpoint_with(poll, polls, deadline))
    }

    /// Extracts a full structural snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut out = Snapshot {
            r: 0.0,
            r_t: 0.0,
            big: self.big,
            max_range: 0.0,
            gr: self.cfg.gr,
            nodes: Vec::new(),
        };
        self.snapshot_into(&mut out);
        out
    }

    /// Extracts a snapshot into `out`, reusing its `nodes` buffer. Polling
    /// loops (fixpoint detection, chaos oracles) call this once per tick;
    /// reuse keeps the outer allocation out of the hot path.
    pub fn snapshot_into(&self, out: &mut Snapshot) {
        let r_t = self.cfg.r_t;
        out.r = self.cfg.r;
        out.r_t = r_t;
        out.big = self.big;
        out.max_range = self.eng.radio().max_range;
        out.gr = self.cfg.gr;
        out.nodes.clear();
        out.nodes.reserve(self.eng.node_count());
        for id in self.eng.ids() {
            let node = self.eng.node(id).expect("ids() yields valid ids");
            let pos = self.eng.position(id).expect("valid id");
            let alive = self.eng.is_alive(id).expect("valid id");
            let (mut role, ids_stored) = view_role(&node.role);
            if let RoleView::Associate { cell_il, is_candidate, surrogate, .. } = &mut role {
                *is_candidate = !*surrogate && pos.distance(*cell_il) <= r_t;
            }
            out.nodes.push(NodeView { id, pos, alive, is_big: node.is_big(), role, ids_stored });
        }
    }

    /// The structural signature of the current state, computed straight
    /// from engine state with no allocation — bit-identical to
    /// `self.snapshot().structural_signature()`. The fixpoint detector
    /// polls this every tick; none of the hashed fields require the
    /// collection clones a full snapshot makes.
    #[must_use]
    pub fn structural_signature(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        for id in self.eng.ids() {
            let node = self.eng.node(id).expect("ids() yields valid ids");
            id.raw().hash(&mut hasher);
            self.eng.is_alive(id).expect("valid id").hash(&mut hasher);
            match &node.role {
                Role::Bootup(_) => 0u8.hash(&mut hasher),
                Role::Head(h) => {
                    1u8.hash(&mut hasher);
                    h.parent.raw().hash(&mut hasher);
                    h.hops.hash(&mut hasher);
                    h.icc_icp.icc.hash(&mut hasher);
                    h.icc_icp.icp.hash(&mut hasher);
                    ((h.il.x * 1000.0).round() as i64).hash(&mut hasher);
                    ((h.il.y * 1000.0).round() as i64).hash(&mut hasher);
                }
                Role::Associate(a) => {
                    2u8.hash(&mut hasher);
                    a.head.raw().hash(&mut hasher);
                    a.surrogate.hash(&mut hasher);
                }
                Role::BigAway(b) => {
                    3u8.hash(&mut hasher);
                    b.proxy.map(NodeId::raw).hash(&mut hasher);
                    b.mobile.hash(&mut hasher);
                }
            }
        }
        hasher.finish()
    }

    /// Runs the full invariant suite against the current state.
    #[must_use]
    pub fn check_invariants(&self) -> Vec<crate::invariants::Violation> {
        let strictness = match self.cfg.mode {
            Mode::Static => crate::invariants::Strictness::Static,
            _ => crate::invariants::Strictness::Dynamic,
        };
        crate::invariants::check_all(&self.snapshot(), strictness)
    }

    /// [`check_invariants`](Network::check_invariants) against a cached
    /// snapshot buffer and an incrementally-maintained
    /// [`SnapshotIndex`](crate::invariants::SnapshotIndex): each call
    /// refills the buffer and applies only the deltas since the previous
    /// call to the index, so a polling loop pays for churn, not
    /// population. Results are identical to `check_invariants`.
    pub fn check_invariants_incremental(&mut self) -> Vec<crate::invariants::Violation> {
        let strictness = match self.cfg.mode {
            Mode::Static => crate::invariants::Strictness::Static,
            _ => crate::invariants::Strictness::Dynamic,
        };
        let (mut snap, prev_idx) = match self.inv.take() {
            Some((snap, idx)) => (snap, Some(idx)),
            None => (self.snapshot(), None),
        };
        self.snapshot_into(&mut snap);
        let idx = match prev_idx {
            Some(mut idx) => {
                idx.update(&snap);
                idx
            }
            None => crate::invariants::SnapshotIndex::build(&snap),
        };
        let out = crate::invariants::check_all_with(&snap, strictness, &idx);
        self.inv = Some((snap, idx));
        out
    }

    // ------------------------------------------------------------------
    // Perturbations (the paper's system model, Section 2.1)
    // ------------------------------------------------------------------

    /// Fail-stop one node (leave/death).
    pub fn kill(&mut self, id: NodeId) {
        let _ = self.eng.kill(id);
    }

    /// Fail-stop every alive node within `radius` of `center` (a
    /// contiguous perturbed area of diameter `2·radius`). Returns the
    /// killed ids. The big node survives (killing the root is a different
    /// experiment).
    pub fn kill_disk(&mut self, center: Point, radius: f64) -> Vec<NodeId> {
        // Candidate collection goes through the spatial grid (cells
        // overlapping the disk, not a full population scan) into the reused
        // scratch; only the exact-size victim list the caller keeps is
        // allocated. The grid query yields ascending id order — the same
        // kill order the old alive_ids() scan produced, so digests match.
        let mut candidates = std::mem::take(&mut self.scratch);
        debug_assert!(candidates.is_empty());
        self.eng.alive_in_disk_into(center, radius, &mut candidates);
        candidates.retain(|id| *id != self.big);
        let victims = candidates.clone();
        for &id in &victims {
            let _ = self.eng.kill(id);
        }
        candidates.clear();
        self.scratch = candidates;
        victims
    }

    /// Kills a uniformly random sample of `count` alive small nodes.
    pub fn kill_random(&mut self, count: usize) -> Vec<NodeId> {
        // The n-sized alive census lives in the reused scratch; only the
        // count-sized victim list is allocated per call.
        let mut alive = std::mem::take(&mut self.scratch);
        debug_assert!(alive.is_empty());
        alive.extend(self.eng.alive_ids().filter(|id| *id != self.big));
        let n = count.min(alive.len());
        let mut victims = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = self.rng.gen_range(0..alive.len());
            let id = alive.swap_remove(idx);
            let _ = self.eng.kill(id);
            victims.push(id);
        }
        alive.clear();
        self.scratch = alive;
        victims
    }

    /// Spawns (joins) a new small node at `pos`.
    pub fn join_node(&mut self, pos: Point) -> NodeId {
        self.eng
            .spawn_at(Gs3Node::small(self.cfg.clone()), pos, self.eng.now(), self.budget)
    }

    /// Moves a node to an absolute position (mobility step).
    pub fn move_node(&mut self, id: NodeId, pos: Point) {
        let _ = self.eng.set_position(id, pos);
    }

    /// Moves the big node to an absolute position.
    pub fn move_big(&mut self, pos: Point) {
        let _ = self.eng.set_position(self.big, pos);
    }

    /// State corruption: displaces a head's stored IL by `offset`,
    /// violating the hexagonal relation so `SANITY_CHECK` must catch it.
    /// Returns false when the node is not currently a head.
    pub fn corrupt_head_il(&mut self, id: NodeId, offset: Vec2) -> bool {
        match self.eng.node_mut(id) {
            Ok(node) => match &mut node.role {
                Role::Head(h) => {
                    h.il += offset;
                    true
                }
                _ => false,
            },
            Err(_) => false,
        }
    }

    /// State corruption: scrambles a head's hop count (drives the head
    /// graph toward an arbitrary state; inter-cell maintenance must
    /// restore the min-distance tree).
    pub fn corrupt_head_hops(&mut self, id: NodeId, hops: u32) -> bool {
        match self.eng.node_mut(id) {
            Ok(node) => match &mut node.role {
                Role::Head(h) => {
                    h.hops = hops;
                    true
                }
                _ => false,
            },
            Err(_) => false,
        }
    }

    /// State corruption: points a head's parent pointer at itself,
    /// breaking the head-graph tree (a cycle of length one). Inter-cell
    /// maintenance must time the fake parent out and `PARENT_SEEK` a real
    /// one. Returns false when the node is not currently a head.
    pub fn corrupt_head_parent(&mut self, id: NodeId) -> bool {
        match self.eng.node_mut(id) {
            Ok(node) => match &mut node.role {
                Role::Head(h) => {
                    h.parent = id;
                    true
                }
                _ => false,
            },
            Err(_) => false,
        }
    }

    /// Drains a node's battery to `energy` (predictable-death lever).
    pub fn set_energy(&mut self, id: NodeId, energy: f64) {
        let _ = self.eng.set_energy(id, energy);
    }

    /// The sink-side data-plane delivery ledger on the primary big node
    /// (None until the first delivery, or when the data plane is off).
    #[must_use]
    pub fn sink_ledger(&self) -> Option<&gs3_dataplane::SinkLedger> {
        self.eng.node(self.big).ok().and_then(|n| n.sink_ledger())
    }

    // ------------------------------------------------------------------
    // Adversarial channel (gs3_sim::faults)
    // ------------------------------------------------------------------

    /// Replaces the adversarial-channel configuration mid-run (jams and
    /// the burst-chain state are kept).
    pub fn set_fault_config(&mut self, config: FaultConfig) {
        self.eng.set_fault_config(config);
    }

    /// Starts jamming the disk of `radius` around `center` (no message can
    /// be sent from or delivered to any node inside); returns a handle for
    /// [`Network::stop_jam`].
    pub fn start_jam(&mut self, center: Point, radius: f64) -> u64 {
        self.eng.faults_mut().start_jam(center, radius)
    }

    /// Stops a jam started with [`Network::start_jam`]; returns whether it
    /// existed.
    pub fn stop_jam(&mut self, jam: u64) -> bool {
        self.eng.faults_mut().stop_jam(jam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_deploys_big_plus_small() {
        let net = NetworkBuilder::new()
            .area_radius(200.0)
            .expected_nodes(300)
            .seed(3)
            .build()
            .unwrap();
        assert!(net.engine().node_count() > 200);
        assert_eq!(net.big_id(), NodeId::new(0));
        let snap = net.snapshot();
        assert_eq!(snap.nodes.len(), net.engine().node_count());
    }

    #[test]
    fn expected_nodes_sets_lambda() {
        let b = NetworkBuilder::new().area_radius(100.0).expected_nodes(500);
        assert!((b.lambda - 0.05).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        assert!(NetworkBuilder::new().ideal_radius(-1.0).build().is_err());
    }

    #[test]
    fn direct_signature_matches_snapshot_signature() {
        let mut net = NetworkBuilder::new()
            .area_radius(150.0)
            .expected_nodes(200)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(net.structural_signature(), net.snapshot().structural_signature());
        net.run_for(SimDuration::from_secs(30));
        assert_eq!(net.structural_signature(), net.snapshot().structural_signature());
        net.kill_random(5);
        net.run_for(SimDuration::from_secs(10));
        assert_eq!(net.structural_signature(), net.snapshot().structural_signature());
    }

    #[test]
    fn snapshot_into_reuses_buffer_and_matches() {
        let mut net = NetworkBuilder::new()
            .area_radius(150.0)
            .expected_nodes(200)
            .seed(9)
            .build()
            .unwrap();
        net.run_for(SimDuration::from_secs(20));
        let mut buf = Snapshot {
            r: 0.0,
            r_t: 0.0,
            big: NodeId::new(0),
            max_range: 0.0,
            gr: gs3_geometry::Angle::ZERO,
            nodes: Vec::new(),
        };
        net.snapshot_into(&mut buf);
        assert_eq!(buf, net.snapshot());
        net.run_for(SimDuration::from_secs(10));
        net.snapshot_into(&mut buf);
        assert_eq!(buf, net.snapshot(), "refill after state change");
    }

    #[test]
    fn kill_disk_respects_big() {
        let mut net = NetworkBuilder::new()
            .area_radius(150.0)
            .expected_nodes(200)
            .seed(4)
            .build()
            .unwrap();
        let victims = net.kill_disk(Point::ORIGIN, 50.0);
        assert!(!victims.contains(&net.big_id()));
        assert!(net.engine().is_alive(net.big_id()).unwrap());
    }

    #[test]
    fn trace_digest_is_pinned_across_queue_implementations() {
        // CI runs this test once against the default radix queue and once
        // with `--features gs3-sim/heap-queue`: the pinned constant is the
        // executable statement that both queues pop in the exact same
        // ascending (at, seq) order. Regenerate it only with a justified
        // event-ordering change — a drift here means replay broke.
        let mut net = NetworkBuilder::new()
            .area_radius(150.0)
            .expected_nodes(200)
            .seed(23)
            .build()
            .unwrap();
        net.run_for(SimDuration::from_secs(60));
        net.kill_disk(Point::new(40.0, 10.0), 40.0);
        net.run_for(SimDuration::from_secs(60));
        assert_eq!(
            net.engine().trace().digest(),
            0xF306_5DB7_008D_9A1E,
            "scheduled-delivery digest drifted"
        );
    }

    #[test]
    fn incremental_invariants_match_full_rebuild() {
        let mut net = NetworkBuilder::new()
            .area_radius(180.0)
            .expected_nodes(250)
            .seed(11)
            .build()
            .unwrap();
        // Polled across configuration, a crash-disk heal, random deaths,
        // and joins: the incremental path must stay indistinguishable
        // from the rebuild-per-call one.
        net.run_for(SimDuration::from_secs(40));
        assert_eq!(net.check_invariants_incremental(), net.check_invariants());
        net.kill_disk(Point::new(60.0, 0.0), 45.0);
        for _ in 0..4 {
            net.run_for(SimDuration::from_secs(15));
            assert_eq!(net.check_invariants_incremental(), net.check_invariants());
        }
        net.kill_random(8);
        net.join_node(Point::new(-90.0, 40.0));
        for _ in 0..4 {
            net.run_for(SimDuration::from_secs(15));
            assert_eq!(net.check_invariants_incremental(), net.check_invariants());
        }
    }
}
