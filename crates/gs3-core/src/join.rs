//! Node join (`SMALL_NODE_BOOT_UP`, `HEAD_JOIN_RESP`,
//! `ASSOCIATE_JOIN_RESP`) — paper Section 4.2.
//!
//! A booting node probes its coordination neighborhood; heads offer
//! membership directly, associates offer themselves as *surrogate* heads
//! when no real head is in range. The prober joins the best (closest) head,
//! falls back to the best associate, and otherwise retries with backoff.

use gs3_geometry::spiral::IccIcp;
use gs3_geometry::Point;
use gs3_sim::{NodeId, SimDuration};

use crate::config::MAX_JOIN_BACKOFF_FACTOR;
use crate::messages::{CellInfo, Msg};
use crate::node::{Ctx, Gs3Node};
use crate::state::Role;
use crate::timers::Timer;

impl Gs3Node {
    /// The periodic join probe while in bootup (or surrogate) state.
    pub(crate) fn on_join_probe(&mut self, ctx: &mut Ctx<'_>) {
        let coord = self.cfg.coord_radius();
        let window = self.cfg.join_window;
        let retry = self.cfg.join_retry;
        // Uncovered nodes are the densest broadcast source in a young or
        // damaged network; their probe cadence must shed load under
        // contention or the join storm starves the very HEAD_ORG rounds
        // that would absorb them.
        self.cong_observe(ctx);
        match &mut self.role {
            Role::Bootup(b) => {
                if b.awaiting_decision.is_some() {
                    // An organizing head may claim us — don't probe over it.
                    ctx.set_timer(retry, Timer::JoinProbe);
                    return;
                }
                b.attempts += 1;
                b.probe_round += 1;
                b.collecting = true;
                b.head_offers.clear();
                b.assoc_offers.clear();
                let round = b.probe_round;
                let backoff_factor = u64::from(b.attempts).min(MAX_JOIN_BACKOFF_FACTOR);
                ctx.event("join_probe", round);
                ctx.broadcast(coord, Msg::BootupProbe { pos: ctx.position() });
                ctx.set_timer(window, Timer::JoinDecision { round });
                // Jitter must scale WITH the backoff: a fixed ±retry/2
                // spread shrinks relative to the growing base delay, so
                // nodes that collided once re-probe in near-lockstep at
                // every subsequent attempt (phase-lock). Spread each
                // attempt over half its own base, capped at the named
                // config bound.
                use rand::Rng as _;
                let jitter_max = (retry.as_micros() * backoff_factor / 2).max(1);
                let jitter = SimDuration::from_micros(ctx.rng().gen_range(0..jitter_max));
                let delay = (retry * backoff_factor + jitter).min(self.cfg.max_join_backoff());
                ctx.set_timer(self.cong_stretch(delay), Timer::JoinProbe);
            }
            Role::Associate(a) if a.surrogate => {
                // A surrogate keeps looking for a real head.
                ctx.broadcast(coord, Msg::BootupProbe { pos: ctx.position() });
                let delay = self.cong_stretch(retry);
                ctx.set_timer(delay, Timer::JoinProbe);
            }
            _ => {}
        }
    }

    /// `bootup_probe` received: offer membership per role.
    pub(crate) fn on_bootup_probe(&mut self, from: NodeId, pos: Point, ctx: &mut Ctx<'_>) {
        let _ = pos;
        match &self.role {
            Role::Head(h) => {
                ctx.unicast(
                    from,
                    Msg::HeadJoinResp { pos: ctx.position(), il: h.il, hops: h.hops },
                );
            }
            Role::Associate(a) if !a.surrogate => {
                ctx.unicast(from, Msg::AssociateJoinResp { pos: ctx.position(), head: a.head });
            }
            _ => {}
        }
    }

    /// `head_join_resp` received by a probing node.
    pub(crate) fn on_head_join_resp(
        &mut self,
        from: NodeId,
        pos: Point,
        il: Point,
        hops: u32,
        ctx: &mut Ctx<'_>,
    ) {
        let my_pos = ctx.position();
        match &mut self.role {
            Role::Bootup(b)
                if b.collecting && !b.head_offers.iter().any(|(id, ..)| *id == from) => {
                    b.head_offers.push((from, pos, hops));
                }
            Role::Associate(a) if a.surrogate => {
                // A real head appeared: leave the surrogate relationship.
                let cell = CellInfo {
                    head: from,
                    head_pos: pos,
                    il,
                    oil: il,
                    icc_icp: IccIcp::ORIGIN,
                    hops,
                    parent: from,
                    parent_il: il,
                    candidates: Vec::new(),
                    root_pos: il,
                };
                let _ = my_pos;
                self.become_associate(ctx, from, pos, cell, false, true);
            }
            _ => {}
        }
    }

    /// `associate_join_resp` received by a probing node.
    pub(crate) fn on_associate_join_resp(
        &mut self,
        from: NodeId,
        pos: Point,
        head: NodeId,
        _ctx: &mut Ctx<'_>,
    ) {
        if let Role::Bootup(b) = &mut self.role {
            if b.collecting && !b.assoc_offers.iter().any(|(id, _)| *id == from) {
                b.assoc_offers.push((from, pos));
                let _ = head;
            }
        }
    }

    /// The join offer window closed: pick the best offer.
    pub(crate) fn on_join_decision(&mut self, round: u64, ctx: &mut Ctx<'_>) {
        let my_pos = ctx.position();
        let Role::Bootup(b) = &mut self.role else {
            return;
        };
        if b.probe_round != round || !b.collecting {
            return;
        }
        b.collecting = false;

        // Best head = closest (the paper's default "best" criterion).
        let best_head = b
            .head_offers
            .iter()
            .min_by(|a, bo| my_pos.distance(a.1).total_cmp(&my_pos.distance(bo.1)))
            .copied();
        if let Some((head, pos, hops)) = best_head {
            let cell = CellInfo {
                head,
                head_pos: pos,
                il: pos,
                oil: pos,
                icc_icp: IccIcp::ORIGIN,
                hops,
                parent: head,
                parent_il: pos,
                candidates: Vec::new(),
                root_pos: pos,
            };
            ctx.event("joined_head", head.raw());
            self.become_associate(ctx, head, pos, cell, false, true);
            return;
        }

        // Fall back to the closest associate as surrogate head.
        let best_assoc = b
            .assoc_offers
            .iter()
            .min_by(|a, bo| my_pos.distance(a.1).total_cmp(&my_pos.distance(bo.1)))
            .copied();
        if let Some((assoc, pos)) = best_assoc {
            let cell = CellInfo {
                head: assoc,
                head_pos: pos,
                il: pos,
                oil: pos,
                icc_icp: IccIcp::ORIGIN,
                hops: u32::MAX / 2,
                parent: assoc,
                parent_il: pos,
                candidates: Vec::new(),
                root_pos: pos,
            };
            ctx.event("joined_surrogate", assoc.raw());
            self.become_associate(ctx, assoc, pos, cell, true, false);
            // Surrogates keep probing; ensure a probe is queued.
            ctx.set_timer(self.cfg.join_retry + SimDuration::from_millis(1), Timer::JoinProbe);
        }
        // Neither: the standing JoinProbe timer retries with backoff.
    }
}
