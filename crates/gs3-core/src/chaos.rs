//! Declarative fault plans and the chaos harness.
//!
//! GS³'s central claim is *local self-healing*: the structure recovers from
//! fails, joins, state corruption, and mobility (paper Theorems 8–13). This
//! module turns that from a hand-tested property into a certified one. A
//! [`FaultPlan`] is a time-ordered schedule of fault events — crash waves,
//! jamming windows, state corruption, channel reconfiguration — that
//! [`Network::run_chaos`] executes at the right simulation times while
//! polling the invariant suite. The result is a [`ChaosReport`] carrying
//! per-fault *healing latency* (time from injection until the invariants
//! are clean again), the adversarial-channel drop counters, and the run's
//! [`Trace`](gs3_sim::trace::Trace) digest for bit-reproducibility checks.
//!
//! Everything is deterministic: the same builder seed and the same plan
//! produce the same digest and the same report, delivery for delivery.
//!
//! ```rust
//! use gs3_core::chaos::{FaultKind, FaultPlan};
//! use gs3_core::harness::NetworkBuilder;
//! use gs3_geometry::Point;
//! use gs3_sim::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = NetworkBuilder::new()
//!     .area_radius(200.0)
//!     .expected_nodes(400)
//!     .seed(7)
//!     .build()?;
//! net.run_to_fixpoint()?;
//! let plan = FaultPlan::new()
//!     .at(SimDuration::from_secs(1), FaultKind::CrashRandom { count: 3 })
//!     .at(SimDuration::from_secs(2), FaultKind::Join { pos: Point::new(50.0, 0.0) });
//! let report = net.run_chaos(&plan);
//! assert_eq!(report.outcomes.len(), 2);
//! # Ok(())
//! # }
//! ```

use gs3_geometry::{Point, Vec2};
use gs3_sim::faults::{Fate, FaultConfig};
use gs3_sim::telemetry::Episode;
use gs3_sim::{NodeId, SimDuration, SimTime};

use std::collections::BTreeMap;

use crate::harness::Network;
use crate::invariants::{self, Strictness};
use crate::json::{self, JsonValue};
use crate::snapshot::Snapshot;

/// Which head field a [`FaultKind::CorruptState`] event scrambles.
///
/// Each variant violates a different predicate family, exercising a
/// different repair path: a displaced IL breaks the hexagonal relation
/// (`SANITY_CHECK` demotes the head), scrambled hops corrupt the
/// min-distance tree (inter-cell maintenance restores it), and a
/// self-pointing parent breaks the tree itself (`PARENT_SEEK` re-attaches).
#[derive(Debug, Clone, PartialEq)]
pub enum Corruption {
    /// Displace the head's stored ideal location by `offset`.
    Il {
        /// Offset applied to the stored IL.
        offset: Vec2,
    },
    /// Overwrite the head's hop count.
    Hops {
        /// The bogus hop count.
        hops: u32,
    },
    /// Point the head's parent pointer at itself (a one-cycle).
    Parent,
}

/// One fault event a [`FaultPlan`] can schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Fail-stop every alive small node within `radius` of `center`.
    CrashDisk {
        /// Disk center.
        center: Point,
        /// Disk radius, meters.
        radius: f64,
    },
    /// Fail-stop `count` uniformly random alive small nodes (drawn from
    /// the network's seeded RNG — deterministic per seed).
    CrashRandom {
        /// How many nodes to kill.
        count: usize,
    },
    /// Spawn (join/recover) a new small node at `pos`.
    Join {
        /// Where the newcomer boots.
        pos: Point,
    },
    /// Overwrite the remaining energy of every alive small node within
    /// `radius` of `center` (only meaningful with energy accounting on).
    EnergyShock {
        /// Disk center.
        center: Point,
        /// Disk radius, meters.
        radius: f64,
        /// The energy level every victim is set to.
        energy: f64,
    },
    /// Corrupt the state of the alive non-big head closest to `near`.
    CorruptState {
        /// Picks the victim: the closest currently-serving small head.
        near: Point,
        /// What to scramble.
        corruption: Corruption,
    },
    /// Teleport the big node to `to` (GS³-M mobility step).
    MoveBig {
        /// Destination.
        to: Point,
    },
    /// Start jamming the disk of `radius` around `center`; `label` names
    /// the jam for a later [`FaultKind::StopJam`].
    StartJam {
        /// Plan-local jam name.
        label: u32,
        /// Disk center.
        center: Point,
        /// Disk radius, meters.
        radius: f64,
    },
    /// Stop the jam started under `label`.
    StopJam {
        /// The [`FaultKind::StartJam`] label to stop.
        label: u32,
    },
    /// Replace the adversarial-channel configuration (burst loss, unicast
    /// loss, duplication, delay) from this point on.
    SetChannel {
        /// The new configuration.
        config: FaultConfig,
    },
    /// Fail-stop one specific node by id. The model checker's precise
    /// crash-replay primitive: where [`FaultKind::CrashRandom`] draws
    /// victims from the harness RNG, this kills exactly the node a
    /// counterexample named.
    CrashNode {
        /// The victim (killing an already-dead or unknown id is a no-op).
        id: NodeId,
    },
    /// Install scripted per-attempt delivery fates (see
    /// [`gs3_sim::faults::Fate`]). Attempt indices are global and
    /// deterministic for a given seed, so a script recorded by the model
    /// checker replays verbatim through the ordinary chaos harness.
    SetScript {
        /// `(attempt index, fate)` pairs, merged into any installed script.
        ops: Vec<(u64, Fate)>,
    },
}

impl FaultKind {
    /// A short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::CrashDisk { .. } => "crash_disk",
            FaultKind::CrashRandom { .. } => "crash_random",
            FaultKind::Join { .. } => "join",
            FaultKind::EnergyShock { .. } => "energy_shock",
            FaultKind::CorruptState { .. } => "corrupt_state",
            FaultKind::MoveBig { .. } => "move_big",
            FaultKind::StartJam { .. } => "start_jam",
            FaultKind::StopJam { .. } => "stop_jam",
            FaultKind::SetChannel { .. } => "set_channel",
            FaultKind::CrashNode { .. } => "crash_node",
            FaultKind::SetScript { .. } => "set_script",
        }
    }
}

/// One scheduled fault: `kind` injected `after` the start of the chaos
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFault {
    /// Offset from the start of [`Network::run_chaos`].
    pub after: SimDuration,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// A time-ordered schedule of fault events.
///
/// Times are offsets from the moment `run_chaos` is called, so a plan is
/// independent of how long initial configuration took. Events at equal
/// times fire in insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `kind` to fire `after` the start of the chaos run.
    #[must_use]
    pub fn at(mut self, after: SimDuration, kind: FaultKind) -> Self {
        self.events.push(PlannedFault { after, kind });
        self
    }

    /// The scheduled events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[PlannedFault] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The offset of the last event (ZERO for an empty plan).
    #[must_use]
    pub fn span(&self) -> SimDuration {
        self.events.iter().map(|e| e.after).max().unwrap_or(SimDuration::ZERO)
    }

    /// Serializes the plan to a deterministic JSON document.
    ///
    /// Durations are integer microseconds; floats use Rust's
    /// shortest-round-trip formatting, so [`FaultPlan::from_json`] on the
    /// output reconstructs a structurally equal plan (the property the
    /// model checker's counterexample fixtures rely on).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_kv(&mut out, "after_us", &e.after.as_micros().to_string());
            out.push(',');
            push_kv(&mut out, "kind", &json_string(e.kind.name()));
            match &e.kind {
                FaultKind::CrashDisk { center, radius } => {
                    out.push(',');
                    push_kv(&mut out, "center", &point_json(*center));
                    out.push(',');
                    push_kv(&mut out, "radius", &format!("{radius:?}"));
                }
                FaultKind::CrashRandom { count } => {
                    out.push(',');
                    push_kv(&mut out, "count", &count.to_string());
                }
                FaultKind::Join { pos } => {
                    out.push(',');
                    push_kv(&mut out, "pos", &point_json(*pos));
                }
                FaultKind::EnergyShock { center, radius, energy } => {
                    out.push(',');
                    push_kv(&mut out, "center", &point_json(*center));
                    out.push(',');
                    push_kv(&mut out, "radius", &format!("{radius:?}"));
                    out.push(',');
                    push_kv(&mut out, "energy", &format!("{energy:?}"));
                }
                FaultKind::CorruptState { near, corruption } => {
                    out.push(',');
                    push_kv(&mut out, "near", &point_json(*near));
                    out.push(',');
                    let c = match corruption {
                        Corruption::Il { offset } => format!(
                            "{{\"what\":\"il\",\"offset\":[{:?},{:?}]}}",
                            offset.x, offset.y
                        ),
                        Corruption::Hops { hops } => {
                            format!("{{\"what\":\"hops\",\"hops\":{hops}}}")
                        }
                        Corruption::Parent => "{\"what\":\"parent\"}".to_string(),
                    };
                    push_kv(&mut out, "corruption", &c);
                }
                FaultKind::MoveBig { to } => {
                    out.push(',');
                    push_kv(&mut out, "to", &point_json(*to));
                }
                FaultKind::StartJam { label, center, radius } => {
                    out.push(',');
                    push_kv(&mut out, "label", &label.to_string());
                    out.push(',');
                    push_kv(&mut out, "center", &point_json(*center));
                    out.push(',');
                    push_kv(&mut out, "radius", &format!("{radius:?}"));
                }
                FaultKind::StopJam { label } => {
                    out.push(',');
                    push_kv(&mut out, "label", &label.to_string());
                }
                FaultKind::SetChannel { config } => {
                    out.push(',');
                    let b = &config.burst;
                    let cfg = format!(
                        "{{\"burst\":{{\"p_enter\":{:?},\"p_exit\":{:?},\"loss_good\":{:?},\
                         \"loss_bad\":{:?}}},\"unicast_loss\":{:?},\"duplicate\":{:?},\
                         \"delay_prob\":{:?},\"delay_max_us\":{}}}",
                        b.p_enter,
                        b.p_exit,
                        b.loss_good,
                        b.loss_bad,
                        config.unicast_loss,
                        config.duplicate,
                        config.delay_prob,
                        config.delay_max.as_micros()
                    );
                    push_kv(&mut out, "config", &cfg);
                }
                FaultKind::CrashNode { id } => {
                    out.push(',');
                    push_kv(&mut out, "id", &id.raw().to_string());
                }
                FaultKind::SetScript { ops } => {
                    out.push(',');
                    let mut arr = String::from("[");
                    for (j, (attempt, fate)) in ops.iter().enumerate() {
                        if j > 0 {
                            arr.push(',');
                        }
                        match fate {
                            Fate::Deliver => {
                                arr.push_str(&format!(
                                    "{{\"attempt\":{attempt},\"fate\":\"deliver\"}}"
                                ));
                            }
                            Fate::Drop => {
                                arr.push_str(&format!(
                                    "{{\"attempt\":{attempt},\"fate\":\"drop\"}}"
                                ));
                            }
                            Fate::Duplicate => {
                                arr.push_str(&format!(
                                    "{{\"attempt\":{attempt},\"fate\":\"duplicate\"}}"
                                ));
                            }
                            Fate::Delay(d) => {
                                arr.push_str(&format!(
                                    "{{\"attempt\":{attempt},\"fate\":\"delay\",\"delay_us\":{}}}",
                                    d.as_micros()
                                ));
                            }
                            Fate::Collide => {
                                arr.push_str(&format!(
                                    "{{\"attempt\":{attempt},\"fate\":\"collide\"}}"
                                ));
                            }
                        }
                    }
                    arr.push(']');
                    push_kv(&mut out, "ops", &arr);
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a plan previously produced by [`FaultPlan::to_json`] (or
    /// written by hand — `gs3 chaos --plan FILE` loads this format).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the document is not valid
    /// JSON or does not match the plan schema.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let version = doc
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing numeric \"version\"")?;
        if version != 1 {
            return Err(format!("unsupported plan version {version}"));
        }
        let events = doc.get("events").and_then(JsonValue::as_arr).ok_or("missing \"events\" array")?;
        let mut plan = FaultPlan::new();
        for (i, ev) in events.iter().enumerate() {
            let ctx = |field: &str| format!("event {i}: missing or malformed \"{field}\"");
            let after = ev
                .get("after_us")
                .and_then(JsonValue::as_u64)
                .map(SimDuration::from_micros)
                .ok_or_else(|| ctx("after_us"))?;
            let kind_name = ev.get("kind").and_then(JsonValue::as_str).ok_or_else(|| ctx("kind"))?;
            let point = |field: &str| -> Result<Point, String> {
                let arr = ev.get(field).and_then(JsonValue::as_arr).ok_or_else(|| ctx(field))?;
                match arr {
                    [x, y] => Ok(Point::new(
                        x.as_f64().ok_or_else(|| ctx(field))?,
                        y.as_f64().ok_or_else(|| ctx(field))?,
                    )),
                    _ => Err(ctx(field)),
                }
            };
            let f64_field = |field: &str| -> Result<f64, String> {
                ev.get(field).and_then(JsonValue::as_f64).ok_or_else(|| ctx(field))
            };
            let u64_field = |field: &str| -> Result<u64, String> {
                ev.get(field).and_then(JsonValue::as_u64).ok_or_else(|| ctx(field))
            };
            let kind = match kind_name {
                "crash_disk" => {
                    FaultKind::CrashDisk { center: point("center")?, radius: f64_field("radius")? }
                }
                "crash_random" => FaultKind::CrashRandom { count: u64_field("count")? as usize },
                "join" => FaultKind::Join { pos: point("pos")? },
                "energy_shock" => FaultKind::EnergyShock {
                    center: point("center")?,
                    radius: f64_field("radius")?,
                    energy: f64_field("energy")?,
                },
                "corrupt_state" => {
                    let c = ev.get("corruption").ok_or_else(|| ctx("corruption"))?;
                    let what =
                        c.get("what").and_then(JsonValue::as_str).ok_or_else(|| ctx("corruption"))?;
                    let corruption = match what {
                        "il" => {
                            let arr = c
                                .get("offset")
                                .and_then(JsonValue::as_arr)
                                .ok_or_else(|| ctx("corruption.offset"))?;
                            match arr {
                                [x, y] => Corruption::Il {
                                    offset: Vec2::new(
                                        x.as_f64().ok_or_else(|| ctx("corruption.offset"))?,
                                        y.as_f64().ok_or_else(|| ctx("corruption.offset"))?,
                                    ),
                                },
                                _ => return Err(ctx("corruption.offset")),
                            }
                        }
                        "hops" => Corruption::Hops {
                            hops: c
                                .get("hops")
                                .and_then(JsonValue::as_u64)
                                .ok_or_else(|| ctx("corruption.hops"))?
                                as u32,
                        },
                        "parent" => Corruption::Parent,
                        other => return Err(format!("event {i}: unknown corruption {other:?}")),
                    };
                    FaultKind::CorruptState { near: point("near")?, corruption }
                }
                "move_big" => FaultKind::MoveBig { to: point("to")? },
                "start_jam" => FaultKind::StartJam {
                    label: u64_field("label")? as u32,
                    center: point("center")?,
                    radius: f64_field("radius")?,
                },
                "stop_jam" => FaultKind::StopJam { label: u64_field("label")? as u32 },
                "set_channel" => {
                    let c = ev.get("config").ok_or_else(|| ctx("config"))?;
                    let nested = |path: &str, field: &str| -> Result<f64, String> {
                        c.get(path)
                            .and_then(|b| b.get(field))
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| ctx(&format!("config.{path}.{field}")))
                    };
                    let top = |field: &str| -> Result<f64, String> {
                        c.get(field)
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| ctx(&format!("config.{field}")))
                    };
                    FaultKind::SetChannel {
                        config: FaultConfig {
                            burst: gs3_sim::faults::BurstLoss {
                                p_enter: nested("burst", "p_enter")?,
                                p_exit: nested("burst", "p_exit")?,
                                loss_good: nested("burst", "loss_good")?,
                                loss_bad: nested("burst", "loss_bad")?,
                            },
                            unicast_loss: top("unicast_loss")?,
                            duplicate: top("duplicate")?,
                            delay_prob: top("delay_prob")?,
                            delay_max: SimDuration::from_micros(
                                c.get("delay_max_us")
                                    .and_then(JsonValue::as_u64)
                                    .ok_or_else(|| ctx("config.delay_max_us"))?,
                            ),
                        },
                    }
                }
                "crash_node" => FaultKind::CrashNode { id: NodeId::new(u64_field("id")?) },
                "set_script" => {
                    let raw = ev.get("ops").and_then(JsonValue::as_arr).ok_or_else(|| ctx("ops"))?;
                    let mut ops = Vec::with_capacity(raw.len());
                    for (j, op) in raw.iter().enumerate() {
                        let octx = || format!("event {i}: malformed script op {j}");
                        let attempt =
                            op.get("attempt").and_then(JsonValue::as_u64).ok_or_else(octx)?;
                        let fate =
                            match op.get("fate").and_then(JsonValue::as_str).ok_or_else(octx)? {
                                "deliver" => Fate::Deliver,
                                "drop" => Fate::Drop,
                                "duplicate" => Fate::Duplicate,
                                "delay" => Fate::Delay(SimDuration::from_micros(
                                    op.get("delay_us").and_then(JsonValue::as_u64).ok_or_else(octx)?,
                                )),
                                "collide" => Fate::Collide,
                                other => {
                                    return Err(format!("event {i}: unknown fate {other:?}"))
                                }
                            };
                        ops.push((attempt, fate));
                    }
                    FaultKind::SetScript { ops }
                }
                other => return Err(format!("event {i}: unknown fault kind {other:?}")),
            };
            plan = plan.at(after, kind);
        }
        Ok(plan)
    }
}

fn point_json(p: Point) -> String {
    format!("[{:?},{:?}]", p.x, p.y)
}

/// Pacing knobs for [`Network::run_chaos_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOptions {
    /// How often the oracle (invariant suite) is polled.
    pub poll: SimDuration,
    /// How long past the last scheduled event the run keeps polling for
    /// the structure to heal before giving up.
    pub settle: SimDuration,
}

impl ChaosOptions {
    /// Defaults sized to a configuration: poll every intra-cell heartbeat,
    /// settle for 300 s (covering the failure-detection and sanity-check
    /// windows several times over).
    #[must_use]
    pub fn for_config(cfg: &crate::config::Gs3Config) -> Self {
        ChaosOptions { poll: cfg.intra_heartbeat, settle: SimDuration::from_secs(300) }
    }
}

/// What happened to one injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// The fault's stable name (see [`FaultKind::name`]).
    pub kind: &'static str,
    /// Human-readable specifics of the injection.
    pub detail: String,
    /// Absolute simulation time of injection.
    pub injected_at: SimTime,
    /// Nodes this fault killed (crash/shock faults; 0 otherwise).
    pub killed: usize,
    /// Time from injection until the oracle next reported zero violations
    /// — the fault's *healing latency*. `None` when the structure never
    /// came clean before the settle deadline.
    pub heal_latency: Option<SimDuration>,
    /// The telemetry episode opened for this fault (`None` for
    /// channel-shaping faults — jams and channel reconfiguration perturb
    /// the medium, not the structure, so no causal taint is seeded).
    pub episode: Option<u32>,
}

/// Control-plane reliability counters accumulated during a chaos run
/// (deltas over the run window, taken from the trace's protocol counters).
///
/// All zero when the reliability layer is disabled — the layer is
/// RNG-inert and counter-inert off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReliabilityCounters {
    /// Reliable envelopes re-sent after an ack timeout.
    pub retransmits: u64,
    /// Duplicate deliveries suppressed by the receiver dedup window.
    pub dedup_hits: u64,
    /// Reliable sends abandoned after the retry budget (fallback paths
    /// triggered).
    pub give_ups: u64,
    /// Adaptive-detector suspicions retracted because the peer spoke up
    /// before the legacy deadline.
    pub false_suspicions: u64,
    /// Heads that entered quarantine mode.
    pub quarantine_entries: u64,
    /// Heads that left quarantine mode (re-attached).
    pub quarantine_exits: u64,
    /// Buffered aggregates dropped because a quarantine buffer overflowed.
    pub quarantine_drops: u64,
}

/// Shared-medium contention counters accumulated during a chaos run
/// (deltas over the run window, taken from the trace's MAC counters and
/// the congestion-adaptation protocol counters).
///
/// All zero when medium contention is disabled — the contention layer is
/// RNG-inert and counter-inert off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContentionCounters {
    /// Frames corrupted by an overlapping transmission at the receiver.
    pub collisions: u64,
    /// Send attempts deferred by carrier sense (backoff scheduled).
    pub defers: u64,
    /// Frames dropped after exhausting the backoff retry budget.
    pub backoff_exhausted: u64,
    /// Times a node stretched its timer periods under observed congestion.
    pub congestion_stretches: u64,
    /// Times a node relaxed a previous stretch after the medium cleared.
    pub congestion_relaxes: u64,
    /// Periodic broadcasts suppressed while congested.
    pub suppressed_broadcasts: u64,
}

/// Convergecast data-plane counters accumulated during a chaos run
/// (deltas over the run window, taken from the trace's protocol counters).
///
/// All zero when the data plane is disabled — the layer is RNG-inert and
/// counter-inert off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataCounters {
    /// Leaf reports produced (one per sequenced `sensor_report`, plus one
    /// per head tick for the cell's own observation).
    pub reports_produced: u64,
    /// Leaf reports inside batches the sink consumed.
    pub reports_delivered: u64,
    /// Batches the sink consumed.
    pub batches_delivered: u64,
    /// Aggregation-queue overflows (each evicting one oldest batch).
    pub queue_drops: u64,
    /// Leaf reports inside evicted batches.
    pub reports_dropped: u64,
    /// Leaf reports inside batches that arrived at a non-head (stale
    /// parent pointer) and were lost.
    pub reports_misrouted: u64,
    /// Stall-recovery firings (a starved head self-restoring one credit).
    pub credit_recoveries: u64,
    /// Per-leaf sequence gaps observed by heads (reports lost leaf→head).
    pub leaf_gaps: u64,
    /// Per-leaf duplicate reports observed by heads.
    pub leaf_dups: u64,
}

/// The structured result of a chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// When the chaos run started.
    pub started: SimTime,
    /// When it finished (early when everything healed).
    pub finished: SimTime,
    /// Per-fault outcomes, in injection order.
    pub outcomes: Vec<FaultOutcome>,
    /// Violations at the final poll.
    pub final_violations: usize,
    /// The worst violation count seen at any poll.
    pub max_violations: usize,
    /// How many oracle polls ran.
    pub polls: u32,
    /// The engine's [`Trace`](gs3_sim::trace::Trace) digest at finish —
    /// compare across runs to assert bit-reproducibility.
    pub digest: u64,
    /// Delivery attempts lost to burst loss during the run.
    pub dropped_by_burst: u64,
    /// Delivery attempts blocked by jamming during the run.
    pub dropped_by_jam: u64,
    /// Unicast deliveries lost to the unicast-loss knob during the run.
    pub dropped_unicast: u64,
    /// Deliveries duplicated during the run.
    pub duplicated: u64,
    /// Deliveries held back by extra delay during the run.
    pub delayed: u64,
    /// Reliability-layer counters accumulated during the run.
    pub reliability: ReliabilityCounters,
    /// Medium-contention counters accumulated during the run.
    pub mac: ContentionCounters,
    /// Convergecast data-plane counters accumulated during the run.
    pub data: DataCounters,
    /// Per-message-kind send counts over the run window (deltas vs the
    /// start-of-run trace), sorted by kind; zero-delta kinds are omitted.
    pub sent_by_kind: Vec<(&'static str, u64)>,
    /// Healing episodes opened during the run (per-perturbation healing
    /// latency, message cost, and spatial radius — the empirical side of
    /// the paper's locality theorems). Episodes still open at the finish
    /// keep `closed_us = None`.
    pub episodes: Vec<Episode>,
}

impl ChaosReport {
    /// True when every fault healed and the final poll was clean — the
    /// self-healing certificate.
    #[must_use]
    pub fn healed(&self) -> bool {
        self.final_violations == 0 && self.outcomes.iter().all(|o| o.heal_latency.is_some())
    }

    /// The worst per-fault healing latency (None when nothing healed or
    /// nothing was injected).
    #[must_use]
    pub fn max_heal_latency(&self) -> Option<SimDuration> {
        self.outcomes.iter().filter_map(|o| o.heal_latency).max()
    }

    /// Serializes the report as a JSON object (stable key order, no
    /// external dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        push_kv(&mut out, "started_us", &self.started.as_micros().to_string());
        out.push(',');
        push_kv(&mut out, "finished_us", &self.finished.as_micros().to_string());
        out.push(',');
        push_kv(&mut out, "healed", if self.healed() { "true" } else { "false" });
        out.push(',');
        push_kv(&mut out, "final_violations", &self.final_violations.to_string());
        out.push(',');
        push_kv(&mut out, "max_violations", &self.max_violations.to_string());
        out.push(',');
        push_kv(&mut out, "polls", &self.polls.to_string());
        out.push(',');
        push_kv(&mut out, "digest", &format!("\"{:016x}\"", self.digest));
        out.push(',');
        for (key, v) in [
            ("dropped_by_burst", self.dropped_by_burst),
            ("dropped_by_jam", self.dropped_by_jam),
            ("dropped_unicast", self.dropped_unicast),
            ("duplicated", self.duplicated),
            ("delayed", self.delayed),
        ] {
            push_kv(&mut out, key, &v.to_string());
            out.push(',');
        }
        out.push_str("\"reliability\":{");
        for (i, (key, v)) in [
            ("retransmits", self.reliability.retransmits),
            ("dedup_hits", self.reliability.dedup_hits),
            ("give_ups", self.reliability.give_ups),
            ("false_suspicions", self.reliability.false_suspicions),
            ("quarantine_entries", self.reliability.quarantine_entries),
            ("quarantine_exits", self.reliability.quarantine_exits),
            ("quarantine_drops", self.reliability.quarantine_drops),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            push_kv(&mut out, key, &v.to_string());
        }
        out.push_str("},");
        out.push_str("\"mac\":{");
        for (i, (key, v)) in [
            ("collisions", self.mac.collisions),
            ("defers", self.mac.defers),
            ("backoff_exhausted", self.mac.backoff_exhausted),
            ("congestion_stretches", self.mac.congestion_stretches),
            ("congestion_relaxes", self.mac.congestion_relaxes),
            ("suppressed_broadcasts", self.mac.suppressed_broadcasts),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            push_kv(&mut out, key, &v.to_string());
        }
        out.push_str("},");
        out.push_str("\"data\":{");
        for (i, (key, v)) in [
            ("reports_produced", self.data.reports_produced),
            ("reports_delivered", self.data.reports_delivered),
            ("batches_delivered", self.data.batches_delivered),
            ("queue_drops", self.data.queue_drops),
            ("reports_dropped", self.data.reports_dropped),
            ("reports_misrouted", self.data.reports_misrouted),
            ("credit_recoveries", self.data.credit_recoveries),
            ("leaf_gaps", self.data.leaf_gaps),
            ("leaf_dups", self.data.leaf_dups),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            push_kv(&mut out, key, &v.to_string());
        }
        out.push_str("},");
        out.push_str("\"sent_by_kind\":{");
        for (i, (kind, count)) in self.sent_by_kind.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_kv(&mut out, kind, &count.to_string());
        }
        out.push_str("},");
        out.push_str("\"faults\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_kv(&mut out, "kind", &json_string(o.kind));
            out.push(',');
            push_kv(&mut out, "detail", &json_string(&o.detail));
            out.push(',');
            push_kv(&mut out, "injected_at_us", &o.injected_at.as_micros().to_string());
            out.push(',');
            push_kv(&mut out, "killed", &o.killed.to_string());
            out.push(',');
            match o.heal_latency {
                Some(l) => push_kv(&mut out, "heal_latency_us", &l.as_micros().to_string()),
                None => push_kv(&mut out, "heal_latency_us", "null"),
            }
            out.push(',');
            match o.episode {
                Some(ep) => push_kv(&mut out, "episode", &ep.to_string()),
                None => push_kv(&mut out, "episode", "null"),
            }
            out.push('}');
        }
        out.push_str("],");
        out.push_str("\"episodes\":[");
        for (i, ep) in self.episodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ep.to_json());
        }
        out.push_str("]}");
        out
    }
}

fn push_kv(out: &mut String, key: &str, raw_value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(raw_value);
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Network {
    /// Runs `plan` against this network, polling the full invariant suite
    /// at [`Strictness::Dynamic`], and returns the [`ChaosReport`].
    ///
    /// Pacing comes from [`ChaosOptions::for_config`]. The run ends early
    /// once every event fired and the structure polled clean, and gives up
    /// `settle` after the last event otherwise.
    pub fn run_chaos(&mut self, plan: &FaultPlan) -> ChaosReport {
        let opts = ChaosOptions::for_config(self.config());
        self.run_chaos_opts(plan, opts)
    }

    /// [`Network::run_chaos`] with explicit pacing but the standard
    /// invariant oracle — for runs whose settle window must outlast the
    /// default (congestion-stretched timers heal correctly but slowly).
    pub fn run_chaos_opts(&mut self, plan: &FaultPlan, opts: ChaosOptions) -> ChaosReport {
        // One SnapshotIndex for the whole run, incrementally brought up to
        // date each poll — the oracle's cost tracks the churn between
        // polls, not the population.
        let mut idx: Option<invariants::SnapshotIndex> = None;
        self.run_chaos_with(plan, opts, move |snap| {
            let idx = match &mut idx {
                Some(idx) => {
                    idx.update(snap);
                    idx
                }
                slot => slot.insert(invariants::SnapshotIndex::build(snap)),
            };
            invariants::check_all_with(snap, Strictness::Dynamic, idx).len()
        })
    }

    /// [`Network::run_chaos`] with explicit pacing and a custom oracle.
    ///
    /// The oracle maps a snapshot to a violation count; zero means the
    /// structure is currently sound. Every fault injected since the last
    /// clean poll is credited with a healing latency at the next clean
    /// poll.
    pub fn run_chaos_with<F>(
        &mut self,
        plan: &FaultPlan,
        opts: ChaosOptions,
        mut oracle: F,
    ) -> ChaosReport
    where
        F: FnMut(&Snapshot) -> usize,
    {
        assert!(!opts.poll.is_zero(), "the oracle poll period must be positive");
        let start = self.now();
        let trace0 = self.engine().trace().clone();
        // Stable sort by offset: equal-time events keep insertion order.
        let mut events: Vec<&PlannedFault> = plan.events().iter().collect();
        events.sort_by_key(|e| e.after);
        let deadline = start + plan.span() + opts.settle;

        let mut jams: BTreeMap<u32, u64> = BTreeMap::new();
        let mut outcomes: Vec<FaultOutcome> = Vec::new();
        let mut pending: Vec<usize> = Vec::new();
        let mut next_event = 0usize;
        let mut next_poll = start + opts.poll;
        let mut polls = 0u32;
        let mut max_violations = 0usize;
        // Every loop exit is dominated by a poll, so this is always
        // assigned before the report is built.
        let mut final_violations;
        // One snapshot buffer for the whole run; each poll refills it
        // in place instead of allocating a fresh node list.
        let mut snap = self.snapshot();

        loop {
            let event_at = events.get(next_event).map(|e| start + e.after);
            let target = match event_at {
                Some(t) if t <= next_poll => t,
                _ => next_poll.min(deadline),
            };
            self.engine_mut().run_until(target);
            if event_at == Some(target) {
                while let Some(e) = events.get(next_event) {
                    if start + e.after != target {
                        break;
                    }
                    let outcome = self.apply_fault(&e.kind, &mut jams);
                    pending.push(outcomes.len());
                    outcomes.push(outcome);
                    next_event += 1;
                }
                // Restart the poll clock so healing is never measured at
                // the injection instant itself (detection timeouts have
                // had no chance to fire yet).
                next_poll = target + opts.poll;
                continue;
            }
            polls += 1;
            self.snapshot_into(&mut snap);
            let violations = oracle(&snap);
            max_violations = max_violations.max(violations);
            final_violations = violations;
            if violations == 0 {
                for &i in &pending {
                    outcomes[i].heal_latency = Some(target.since(outcomes[i].injected_at));
                }
                pending.clear();
                // The same clean poll that credits healing latencies closes
                // the telemetry episodes (recording their latency into the
                // heal-latency histogram).
                self.engine_mut().close_episodes();
            }
            if target >= deadline || (next_event >= events.len() && pending.is_empty()) {
                break;
            }
            next_poll = target + opts.poll;
        }

        let trace = self.engine().trace();
        let delta = |name: &str| trace.proto(name).saturating_sub(trace0.proto(name));
        let sent_by_kind: Vec<(&'static str, u64)> = trace
            .sent_by_kind()
            .iter()
            .filter_map(|(kind, &count)| {
                let d = count.saturating_sub(trace0.sent_of_kind(kind));
                (d > 0).then_some((*kind, d))
            })
            .collect();
        let started_us = start.as_micros();
        let episodes: Vec<Episode> = self
            .engine()
            .telemetry()
            .episodes
            .episodes()
            .iter()
            .filter(|e| e.opened_us >= started_us)
            .cloned()
            .collect();
        ChaosReport {
            started: start,
            finished: self.now(),
            outcomes,
            final_violations,
            max_violations,
            polls,
            digest: trace.digest(),
            dropped_by_burst: trace.dropped_by_burst() - trace0.dropped_by_burst(),
            dropped_by_jam: trace.dropped_by_jam() - trace0.dropped_by_jam(),
            dropped_unicast: trace.dropped_unicast() - trace0.dropped_unicast(),
            duplicated: trace.duplicated() - trace0.duplicated(),
            delayed: trace.delayed() - trace0.delayed(),
            reliability: ReliabilityCounters {
                retransmits: delta("reliable_retransmits"),
                dedup_hits: delta("reliable_dedup_hits"),
                give_ups: delta("reliable_give_ups"),
                false_suspicions: delta("detector_false_suspicions"),
                quarantine_entries: delta("quarantine_entries"),
                quarantine_exits: delta("quarantine_exits"),
                quarantine_drops: delta("quarantine_drops"),
            },
            mac: ContentionCounters {
                collisions: trace.mac_collisions() - trace0.mac_collisions(),
                defers: trace.mac_defers() - trace0.mac_defers(),
                backoff_exhausted: trace.mac_backoff_exhausted()
                    - trace0.mac_backoff_exhausted(),
                congestion_stretches: delta("congestion_stretch"),
                congestion_relaxes: delta("congestion_relax"),
                suppressed_broadcasts: delta("suppressed_broadcast"),
            },
            data: DataCounters {
                reports_produced: delta("data_reports_produced"),
                reports_delivered: delta("data_reports_delivered"),
                batches_delivered: delta("data_batches_delivered"),
                queue_drops: delta("data_queue_drops"),
                reports_dropped: delta("data_reports_dropped"),
                reports_misrouted: delta("data_reports_lost_misroute"),
                credit_recoveries: delta("data_credit_recovered"),
                leaf_gaps: delta("data_leaf_gaps"),
                leaf_dups: delta("data_leaf_dups"),
            },
            sent_by_kind,
            episodes,
        }
    }

    /// Executes one fault event now and describes what it did.
    ///
    /// Structural faults open a telemetry episode labelled with the
    /// fault's name and seed its causal taint set: crash faults taint the
    /// survivors within one cell radius (`R + R_t`) of each victim — the
    /// farthest a steady-state dialogue partner (cell-mate or neighbor
    /// head) can be, i.e. the nodes that will observe the silence and
    /// react. Joins and state corruption taint the perturbed node itself,
    /// and big-node moves taint both endpoints of the hop. Channel-shaping
    /// faults (jam / channel config) seed no episode — they perturb the
    /// medium, not the structure.
    pub fn apply_fault(&mut self, kind: &FaultKind, jams: &mut BTreeMap<u32, u64>) -> FaultOutcome {
        let now = self.now();
        let detect = self.config().r + self.config().r_t;
        let mut episode = None;
        let (detail, killed) = match kind {
            FaultKind::CrashDisk { center, radius } => {
                let victims = self.kill_disk(*center, *radius);
                let ep = self.engine_mut().open_episode(kind.name());
                // Seed the ring of survivors around the hole: the grid
                // holds only alive nodes, so the dead disk itself stays
                // untainted (the dead cannot send anyway).
                self.engine_mut().taint_episode_near(ep, *center, radius + detect);
                episode = Some(ep);
                (format!("killed {} nodes in r={radius} at {center}", victims.len()), victims.len())
            }
            FaultKind::CrashRandom { count } => {
                let victims = self.kill_random(*count);
                let ep = self.engine_mut().open_episode(kind.name());
                for id in &victims {
                    if let Ok(pos) = self.engine().position(*id) {
                        self.engine_mut().taint_episode_near(ep, pos, detect);
                    }
                }
                episode = Some(ep);
                (format!("killed {} random nodes", victims.len()), victims.len())
            }
            FaultKind::Join { pos } => {
                let id = self.join_node(*pos);
                let ep = self.engine_mut().open_episode(kind.name());
                self.engine_mut().taint_episode_near(ep, *pos, 1e-9);
                self.engine_mut().taint_episode_node(ep, id);
                episode = Some(ep);
                (format!("joined {id} at {pos}"), 0)
            }
            FaultKind::EnergyShock { center, radius, energy } => {
                let victims: Vec<NodeId> = self
                    .engine()
                    .alive_ids()
                    .filter(|id| {
                        !self.big_ids().contains(id)
                            && self
                                .engine()
                                .position(*id)
                                .map(|p| center.distance(p) <= *radius)
                                .unwrap_or(false)
                    })
                    .collect();
                for id in &victims {
                    self.set_energy(*id, *energy);
                }
                let ep = self.engine_mut().open_episode(kind.name());
                self.engine_mut().taint_episode_near(ep, *center, *radius);
                episode = Some(ep);
                (format!("set {} nodes in r={radius} at {center} to energy {energy}", victims.len()), 0)
            }
            FaultKind::CorruptState { near, corruption } => {
                let victim = {
                    let snap = self.snapshot();
                    let mut best: Option<(NodeId, f64)> = None;
                    for h in snap.heads().filter(|h| !h.is_big && h.alive) {
                        let d = near.distance(h.pos);
                        if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                            best = Some((h.id, d));
                        }
                    }
                    best.map(|(id, _)| id)
                };
                match victim {
                    None => ("no alive small head to corrupt".to_string(), 0),
                    Some(id) => {
                        let (what, ok) = match corruption {
                            Corruption::Il { offset } => {
                                ("il", self.corrupt_head_il(id, *offset))
                            }
                            Corruption::Hops { hops } => {
                                ("hops", self.corrupt_head_hops(id, *hops))
                            }
                            Corruption::Parent => ("parent", self.corrupt_head_parent(id)),
                        };
                        debug_assert!(ok, "victim was selected as a head");
                        let ep = self.engine_mut().open_episode(kind.name());
                        if let Ok(pos) = self.engine().position(id) {
                            self.engine_mut().taint_episode_near(ep, pos, 1e-9);
                        }
                        self.engine_mut().taint_episode_node(ep, id);
                        episode = Some(ep);
                        (format!("corrupted {what} of head {id}"), 0)
                    }
                }
            }
            FaultKind::MoveBig { to } => {
                let from = self
                    .engine()
                    .position(self.big_id())
                    .unwrap_or(*to);
                self.move_big(*to);
                let ep = self.engine_mut().open_episode(kind.name());
                self.engine_mut().taint_episode_near(ep, from, detect);
                self.engine_mut().taint_episode_near(ep, *to, detect);
                let big = self.big_id();
                self.engine_mut().taint_episode_node(ep, big);
                episode = Some(ep);
                (format!("moved big node to {to}"), 0)
            }
            FaultKind::StartJam { label, center, radius } => {
                let handle = self.start_jam(*center, *radius);
                jams.insert(*label, handle);
                (format!("jam {label}: r={radius} at {center}"), 0)
            }
            FaultKind::StopJam { label } => match jams.remove(label) {
                Some(handle) => {
                    self.stop_jam(handle);
                    (format!("stopped jam {label}"), 0)
                }
                None => (format!("jam {label} was never started"), 0),
            },
            FaultKind::SetChannel { config } => {
                let desc = format!(
                    "channel: burst(p_enter={}, mean={:.1}) unicast_loss={} dup={} delay={}",
                    config.burst.p_enter,
                    config.burst.mean_burst(),
                    config.unicast_loss,
                    config.duplicate,
                    config.delay_prob
                );
                self.set_fault_config(config.clone());
                (desc, 0)
            }
            FaultKind::CrashNode { id } => {
                if self.engine().is_alive(*id).unwrap_or(false) {
                    let pos = self.engine().position(*id).ok();
                    self.engine_mut().kill(*id).expect("liveness was just checked");
                    let ep = self.engine_mut().open_episode(kind.name());
                    if let Some(p) = pos {
                        self.engine_mut().taint_episode_near(ep, p, detect);
                    }
                    episode = Some(ep);
                    (format!("killed node {id}"), 1)
                } else {
                    (format!("node {id} already dead or unknown"), 0)
                }
            }
            FaultKind::SetScript { ops } => {
                self.engine_mut().faults_mut().install_script(ops.iter().copied());
                (format!("installed {} scripted delivery fates", ops.len()), 0)
            }
        };
        FaultOutcome { kind: kind.name(), detail, injected_at: now, killed, heal_latency: None, episode }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::NetworkBuilder;

    fn small_net(seed: u64) -> Network {
        NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(180.0)
            .expected_nodes(320)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn plan_builder_orders_and_spans() {
        let plan = FaultPlan::new()
            .at(SimDuration::from_secs(10), FaultKind::CrashRandom { count: 1 })
            .at(SimDuration::from_secs(5), FaultKind::Join { pos: Point::ORIGIN });
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.span(), SimDuration::from_secs(10));
        assert_eq!(plan.events()[0].kind.name(), "crash_random");
    }

    #[test]
    fn plan_json_round_trips_every_kind() {
        let plan = FaultPlan::new()
            .at(
                SimDuration::from_millis(1500),
                FaultKind::CrashDisk { center: Point::new(12.5, -3.25), radius: 40.0 },
            )
            .at(SimDuration::from_secs(2), FaultKind::CrashRandom { count: 3 })
            .at(SimDuration::from_secs(3), FaultKind::Join { pos: Point::new(0.1, 0.2) })
            .at(
                SimDuration::from_secs(4),
                FaultKind::EnergyShock {
                    center: Point::new(-7.0, 8.0),
                    radius: 25.0,
                    energy: 0.125,
                },
            )
            .at(
                SimDuration::from_secs(5),
                FaultKind::CorruptState {
                    near: Point::ORIGIN,
                    corruption: Corruption::Il { offset: Vec2::new(3.0, -4.0) },
                },
            )
            .at(
                SimDuration::from_secs(6),
                FaultKind::CorruptState {
                    near: Point::new(1.0, 1.0),
                    corruption: Corruption::Hops { hops: 9 },
                },
            )
            .at(
                SimDuration::from_secs(7),
                FaultKind::CorruptState { near: Point::new(2.0, 2.0), corruption: Corruption::Parent },
            )
            .at(SimDuration::from_secs(8), FaultKind::MoveBig { to: Point::new(55.0, 66.0) })
            .at(
                SimDuration::from_secs(9),
                FaultKind::StartJam { label: 4, center: Point::new(10.0, 10.0), radius: 30.0 },
            )
            .at(SimDuration::from_secs(10), FaultKind::StopJam { label: 4 })
            .at(
                SimDuration::from_secs(11),
                FaultKind::SetChannel {
                    config: FaultConfig {
                        burst: gs3_sim::faults::BurstLoss::bursty(0.05, 3.0),
                        unicast_loss: 0.01,
                        duplicate: 0.02,
                        delay_prob: 0.1,
                        delay_max: SimDuration::from_millis(250),
                    },
                },
            )
            .at(SimDuration::from_secs(12), FaultKind::CrashNode { id: NodeId::new(17) })
            .at(
                SimDuration::from_secs(13),
                FaultKind::SetScript {
                    ops: vec![
                        (0, Fate::Drop),
                        (3, Fate::Duplicate),
                        (5, Fate::Deliver),
                        (9, Fate::Delay(SimDuration::from_millis(40))),
                        (11, Fate::Collide),
                    ],
                },
            );
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("round trip parses");
        assert_eq!(back, plan);
        // Serialization is deterministic: re-encoding is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn plan_from_json_rejects_malformed() {
        assert!(FaultPlan::from_json("not json").is_err());
        assert!(FaultPlan::from_json("{\"events\":[]}").is_err(), "missing version");
        assert!(FaultPlan::from_json("{\"version\":2,\"events\":[]}").is_err());
        assert!(
            FaultPlan::from_json(
                "{\"version\":1,\"events\":[{\"after_us\":0,\"kind\":\"bogus\"}]}"
            )
            .is_err()
        );
        let empty = FaultPlan::from_json("{\"version\":1,\"events\":[]}").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_plan_reports_clean_immediately() {
        let mut net = small_net(21);
        net.run_to_fixpoint().unwrap();
        let report = net.run_chaos(&FaultPlan::new());
        assert!(report.healed());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.final_violations, 0);
        assert!(report.polls >= 1);
    }

    #[test]
    fn crash_wave_heals_with_latency() {
        let mut net = small_net(22);
        net.run_to_fixpoint().unwrap();
        let plan = FaultPlan::new()
            .at(SimDuration::from_secs(1), FaultKind::CrashRandom { count: 5 });
        let report = net.run_chaos(&plan);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].killed, 5);
        assert!(report.healed(), "crash wave must heal: {}", report.to_json());
        assert!(report.outcomes[0].heal_latency.is_some());
        // The crash opened a healing episode; the tainted survivors'
        // traffic is attributed to it and the clean poll closed it.
        assert_eq!(report.outcomes[0].episode, Some(1));
        assert_eq!(report.episodes.len(), 1);
        let ep = &report.episodes[0];
        assert_eq!(ep.label, "crash_random");
        assert!(ep.closed_us.is_some(), "episode must close on heal");
        assert!(ep.messages > 0, "tainted survivors must have sent traffic");
        assert!(ep.tainted > 0);
    }

    #[test]
    fn jam_labels_resolve() {
        let mut net = small_net(23);
        net.run_to_fixpoint().unwrap();
        let plan = FaultPlan::new()
            .at(SimDuration::from_secs(1), FaultKind::StartJam {
                label: 7,
                center: Point::new(120.0, 0.0),
                radius: 60.0,
            })
            .at(SimDuration::from_secs(40), FaultKind::StopJam { label: 7 })
            .at(SimDuration::from_secs(41), FaultKind::StopJam { label: 9 });
        let report = net.run_chaos(&plan);
        assert_eq!(report.outcomes[0].kind, "start_jam");
        assert_eq!(report.outcomes[1].detail, "stopped jam 7");
        assert!(report.outcomes[2].detail.contains("never started"));
        assert!(net.engine().faults().jams().is_empty(), "jam must be lifted");
        assert!(report.dropped_by_jam > 0, "the jam must have blocked traffic");
    }

    #[test]
    fn report_json_shape() {
        let report = ChaosReport {
            started: SimTime::from_micros(5),
            finished: SimTime::from_micros(10),
            outcomes: vec![FaultOutcome {
                kind: "join",
                detail: "say \"hi\"".to_string(),
                injected_at: SimTime::from_micros(7),
                killed: 0,
                heal_latency: None,
                episode: None,
            }],
            final_violations: 1,
            max_violations: 2,
            polls: 3,
            digest: 0xabc,
            dropped_by_burst: 0,
            dropped_by_jam: 0,
            dropped_unicast: 0,
            duplicated: 0,
            delayed: 0,
            reliability: ReliabilityCounters { retransmits: 4, ..ReliabilityCounters::default() },
            mac: ContentionCounters { collisions: 6, ..ContentionCounters::default() },
            data: DataCounters { reports_delivered: 9, ..DataCounters::default() },
            sent_by_kind: vec![("org", 12), ("org_reply", 3)],
            episodes: Vec::new(),
        };
        let json = report.to_json();
        assert!(json.contains("\"healed\":false"));
        assert!(json.contains("\"digest\":\"0000000000000abc\""));
        assert!(json.contains("\"reliability\":{\"retransmits\":4,"));
        assert!(json.contains("\"quarantine_drops\":0}"));
        assert!(json.contains("\"mac\":{\"collisions\":6,"));
        assert!(json.contains("\"suppressed_broadcasts\":0}"));
        assert!(json.contains("\"data\":{\"reports_produced\":0,\"reports_delivered\":9,"));
        assert!(json.contains("\"leaf_dups\":0}"));
        assert!(json.contains("\"sent_by_kind\":{\"org\":12,\"org_reply\":3}"));
        assert!(json.contains("\"heal_latency_us\":null"));
        assert!(json.contains("\"episode\":null"));
        assert!(json.contains("\"episodes\":[]"));
        assert!(json.contains("say \\\"hi\\\""));
        assert!(!report.healed());
        assert_eq!(report.max_heal_latency(), None);
    }

    #[test]
    fn corrupt_state_picks_nearest_head() {
        let mut net = small_net(24);
        net.run_to_fixpoint().unwrap();
        let plan = FaultPlan::new().at(
            SimDuration::from_secs(1),
            FaultKind::CorruptState { near: Point::ORIGIN, corruption: Corruption::Parent },
        );
        let report = net.run_chaos(&plan);
        assert!(report.outcomes[0].detail.contains("corrupted parent"));
        assert!(report.healed(), "parent corruption must heal: {}", report.to_json());
    }
}
