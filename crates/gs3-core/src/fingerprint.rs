//! Canonical protocol-state fingerprints for model-checking dedup.
//!
//! The bounded model checker ([`gs3-mc`](../../gs3-mc)) explores a tree of
//! forked simulations and must recognize when two different histories have
//! reached *the same* protocol state, or the search degenerates into pure
//! tree enumeration. [`Network::fingerprint`] folds everything that can
//! influence future behavior into one 128-bit FNV-1a hash:
//!
//! * every node's liveness, position, energy, channel-arbiter view, and
//!   full [`Role`] state,
//! * each node's reliability-layer state (outstanding sends, anti-replay
//!   windows, failure-detector estimators),
//! * the pending event queue, in canonical `(fire time, seq)` order,
//! * the channel-reservation arbiter,
//! * the adversarial-channel state (configuration, Gilbert–Elliott chain
//!   phase, jams, and any unconsumed delivery script),
//! * the RNG state words — two states with equal protocol state but
//!   diverged random streams schedule different jitter and must **not**
//!   merge.
//!
//! What is deliberately **excluded**:
//!
//! * the absolute simulation clock — every stored [`SimTime`] is folded
//!   as an age (`now − t`) and every queued event as a delay
//!   (`at − now`), so states that differ only by a rigid time shift
//!   dedup together (the checker's main source of merging, since jittered
//!   heartbeats otherwise make every state unique),
//! * event-queue sequence numbers and timer ids — they encode *history*
//!   (how many events were ever scheduled), not future behavior; only
//!   the canonical ordering and each timer's liveness are folded,
//! * the global delivery-attempt counter and the attempt log — the
//!   checker re-probes attempt indices from whichever representative
//!   state it resumes, so the counter is bookkeeping, not behavior,
//! * traces, counters, and telemetry — observational by construction.
//!
//! Two states with equal fingerprints are treated as interchangeable
//! futures; a collision of the 128-bit hash is possible in principle but
//! vanishingly unlikely at model-checking scale (billions of states would
//! be needed before birthday effects matter).

use std::fmt::Write as _;

use gs3_sim::{NodeId, SimTime};

use crate::harness::Network;
use crate::node::Gs3Node;
use crate::reliable::ReliableState;
use crate::state::{
    AssocState, BigAwayState, BootupState, HeadState, NeighborInfo, Role, SanityRound,
};

/// 128-bit FNV-1a, folded byte-by-byte.
///
/// FNV is not cryptographic — fine here: fingerprints defend against
/// accidental collision between explored states, not an adversary.
#[derive(Debug, Clone)]
pub struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    /// The digest so far.
    #[must_use]
    pub fn digest(&self) -> u128 {
        self.0
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Folds a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds an `i64` (little-endian).
    pub fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.bytes(&[u8::from(v)]);
    }

    /// Folds an `f64` by its bit pattern (`-0.0` and `0.0` differ; all
    /// state floats are produced deterministically, so bitwise equality
    /// is the right notion).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Folds a string, length-prefixed so concatenations can't alias.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn id(&mut self, id: NodeId) {
        self.u64(id.raw());
    }

    fn opt_id(&mut self, id: Option<NodeId>) {
        match id {
            None => self.bytes(&[0]),
            Some(id) => {
                self.bytes(&[1]);
                self.id(id);
            }
        }
    }

    fn point(&mut self, p: gs3_geometry::Point) {
        self.f64(p.x);
        self.f64(p.y);
    }

    /// A stored past timestamp, normalized to an age relative to `now`.
    fn age(&mut self, now: SimTime, t: SimTime) {
        self.u64(now.saturating_since(t).as_micros());
    }

    /// A stored timestamp that may lie in the future (deadlines),
    /// normalized to a signed offset from `now`.
    fn offset(&mut self, now: SimTime, t: SimTime) {
        self.i64(t.as_micros() as i64 - now.as_micros() as i64);
    }
}

fn fold_neighbor(h: &mut Fnv128, now: SimTime, info: &NeighborInfo) {
    h.point(info.pos);
    h.point(info.il);
    h.u64(u64::from(info.icc_icp.icc));
    h.u64(u64::from(info.icc_icp.icp));
    h.u64(u64::from(info.hops));
    h.age(now, info.last_heard);
}

fn fold_sanity(h: &mut Fnv128, round: &SanityRound) {
    h.u64(round.round);
    h.u64(round.asked.len() as u64);
    for id in &round.asked {
        h.id(*id);
    }
    h.u64(round.valid.len() as u64);
    for id in &round.valid {
        h.id(*id);
    }
}

fn fold_bootup(h: &mut Fnv128, b: &BootupState) {
    h.opt_id(b.awaiting_decision);
    h.u64(b.probe_round);
    h.bool(b.collecting);
    h.u64(b.head_offers.len() as u64);
    for (id, pos, hops) in &b.head_offers {
        h.id(*id);
        h.point(*pos);
        h.u64(u64::from(*hops));
    }
    h.u64(b.assoc_offers.len() as u64);
    for (id, pos) in &b.assoc_offers {
        h.id(*id);
        h.point(*pos);
    }
    h.u64(u64::from(b.attempts));
}

fn fold_head(h: &mut Fnv128, now: SimTime, s: &HeadState) {
    h.point(s.il);
    h.point(s.oil);
    h.u64(u64::from(s.icc_icp.icc));
    h.u64(u64::from(s.icc_icp.icp));
    h.id(s.parent);
    h.point(s.parent_il);
    h.point(s.parent_pos);
    h.point(s.root_pos);
    h.u64(u64::from(s.hops));
    h.age(now, s.parent_last_heard);
    for (label, map) in [("children", &s.children), ("neighbors", &s.neighbors)] {
        h.str(label);
        h.u64(map.len() as u64);
        for (id, info) in map {
            h.id(*id);
            fold_neighbor(h, now, info);
        }
    }
    h.u64(s.associates.len() as u64);
    for (id, info) in &s.associates {
        h.id(*id);
        h.point(info.pos);
        h.f64(info.energy);
        h.age(now, info.last_heard);
    }
    match &s.org {
        None => h.bytes(&[0]),
        Some(org) => {
            h.bytes(&[1]);
            h.u64(org.round);
            h.bool(org.soliciting);
            h.u64(org.small.len() as u64);
            for (id, pos, current) in &org.small {
                h.id(*id);
                h.point(*pos);
                match current {
                    None => h.bytes(&[0]),
                    Some((head, d)) => {
                        h.bytes(&[1]);
                        h.id(*head);
                        h.f64(*d);
                    }
                }
            }
            h.u64(org.heads.len() as u64);
            for (id, pos, il) in &org.heads {
                h.id(*id);
                h.point(*pos);
                h.point(*il);
            }
        }
    }
    h.u64(s.org_rounds);
    h.bool(s.organized_once);
    match &s.sanity {
        None => h.bytes(&[0]),
        Some(round) => {
            h.bytes(&[1]);
            fold_sanity(h, round);
        }
    }
    h.u64(s.sanity_rounds);
    h.bool(s.is_proxy);
    h.age(now, s.proxy_refreshed);
    h.u64(u64::from(s.pending_reports));
    h.u64(s.seek_rounds);
    match s.pending_seek {
        None => h.bytes(&[0]),
        Some(round) => {
            h.bytes(&[1]);
            h.u64(round);
        }
    }
    h.u64(u64::from(s.failed_seeks));
    h.bool(s.quarantined);
    h.u64(s.quarantine_buf.len() as u64);
    for v in &s.quarantine_buf {
        h.u64(u64::from(*v));
    }
}

fn fold_assoc(h: &mut Fnv128, now: SimTime, a: &AssocState) {
    h.id(a.head);
    h.point(a.head_pos);
    let c = &a.cell;
    h.id(c.head);
    h.point(c.head_pos);
    h.point(c.il);
    h.point(c.oil);
    h.u64(u64::from(c.icc_icp.icc));
    h.u64(u64::from(c.icc_icp.icp));
    h.u64(u64::from(c.hops));
    h.id(c.parent);
    h.point(c.parent_il);
    h.u64(c.candidates.len() as u64);
    for id in &c.candidates {
        h.id(*id);
    }
    h.point(c.root_pos);
    h.age(now, a.last_heard);
    h.bool(a.surrogate);
    h.opt_id(a.election_pending);
}

fn fold_big_away(h: &mut Fnv128, now: SimTime, b: &BigAwayState) {
    h.bool(b.mobile);
    h.opt_id(b.proxy);
    h.u64(b.known_heads.len() as u64);
    for (id, (pos, il, when)) in &b.known_heads {
        h.id(*id);
        h.point(*pos);
        h.point(*il);
        h.age(now, *when);
    }
    h.age(now, b.since);
}

fn fold_role(h: &mut Fnv128, now: SimTime, role: &Role) {
    match role {
        Role::Bootup(b) => {
            h.bytes(&[0]);
            fold_bootup(h, b);
        }
        Role::Head(s) => {
            h.bytes(&[1]);
            fold_head(h, now, s);
        }
        Role::Associate(a) => {
            h.bytes(&[2]);
            fold_assoc(h, now, a);
        }
        Role::BigAway(b) => {
            h.bytes(&[3]);
            fold_big_away(h, now, b);
        }
    }
}

fn fold_reliable(h: &mut Fnv128, now: SimTime, rel: &ReliableState) {
    h.u64(rel.next_seq);
    h.u64(rel.pending.len() as u64);
    let mut scratch = String::new();
    for (seq, send) in &rel.pending {
        h.u64(*seq);
        h.id(send.to);
        scratch.clear();
        let _ = write!(scratch, "{:?}", send.msg);
        h.str(&scratch);
        h.u64(u64::from(send.attempt));
    }
    h.u64(rel.seen.len() as u64);
    for (id, win) in &rel.seen {
        h.id(*id);
        h.u64(win.hi);
        h.u64(win.recent.len() as u64);
        for seq in &win.recent {
            h.u64(*seq);
        }
    }
    h.u64(rel.detectors.len() as u64);
    for (id, det) in &rel.detectors {
        h.id(*id);
        h.age(now, det.last);
        h.u64(det.mean_us);
        h.u64(det.dev_us);
        h.u64(u64::from(det.samples));
    }
    h.u64(rel.suspected.len() as u64);
    for (id, deadline) in &rel.suspected {
        h.id(*id);
        h.offset(now, *deadline);
    }
}

fn fold_node(h: &mut Fnv128, now: SimTime, node: &Gs3Node) {
    h.bool(node.is_big);
    fold_role(h, now, node.role());
    fold_reliable(h, now, &node.rel);
}

impl Network {
    /// The canonical 128-bit fingerprint of the current protocol state.
    ///
    /// Two networks with equal fingerprints behave identically under
    /// identical future inputs; see the [module docs](self) for exactly
    /// what is folded and what is normalized away. The fingerprint is a
    /// pure function of the state — computing it never mutates anything
    /// (in particular, it draws no RNG).
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        let eng = self.engine();
        let now = eng.now();
        let mut h = Fnv128::new();

        // Per-node physical + protocol state, in id order.
        let ids: Vec<NodeId> = eng.ids().collect();
        h.u64(ids.len() as u64);
        for id in ids {
            h.id(id);
            let alive = eng.is_alive(id).expect("id came from the engine");
            h.bool(alive);
            if !alive {
                // A dead node's residual state can't influence anything.
                continue;
            }
            h.point(eng.position(id).expect("alive node has a position"));
            h.f64(eng.energy(id).expect("alive node has an energy"));
            fold_node(&mut h, now, eng.node(id).expect("alive node exists"));
        }

        // Pending events, canonically ordered and time-normalized by the
        // engine (queue seq and timer ids are masked there).
        let pending = eng.pending_event_hashes();
        h.u64(pending.len() as u64);
        for ev in pending {
            h.u64(ev);
        }

        // Channel arbiter: granted claims + waiting queue. The Debug
        // form is deterministic and time-free (claims hold no SimTime).
        h.str(&format!("{:?}", eng.channel_state()));

        // Adversarial channel: configuration, chain phase, jams, and any
        // unconsumed script ops (the attempt counter and log are
        // bookkeeping, not behavior — see module docs).
        let faults = eng.faults();
        h.str(&format!("{:?}", faults.config()));
        h.bool(faults.burst_in_bad_state());
        h.u64(faults.jams().len() as u64);
        for jam in faults.jams() {
            h.u64(jam.id);
            h.point(jam.center);
            h.f64(jam.radius);
        }
        h.u64(faults.script().len() as u64);
        for (attempt, fate) in faults.script() {
            h.u64(*attempt);
            h.str(&format!("{fate:?}"));
        }

        // The random stream: protocol jitter draws from it, so states
        // with diverged streams must not merge.
        for word in eng.rng_state() {
            h.u64(word);
        }

        h.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::NetworkBuilder;
    use gs3_geometry::Point;
    use gs3_sim::SimDuration;

    fn pinned_net(seed: u64) -> Network {
        NetworkBuilder::new()
            .ideal_radius(80.0)
            .radius_tolerance(18.0)
            .area_radius(150.0)
            .seed(seed)
            .with_small_node(Point::new(70.0, 10.0))
            .with_small_node(Point::new(-60.0, 40.0))
            .with_small_node(Point::new(10.0, -75.0))
            .with_small_node(Point::new(100.0, -20.0))
            .build()
            .unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_pure() {
        let mut net = pinned_net(11);
        net.run_to_fixpoint().unwrap();
        let a = net.fingerprint();
        let b = net.fingerprint();
        assert_eq!(a, b, "computing a fingerprint must not perturb the state");
        // An identically-built twin lands on the same fingerprint.
        let mut twin = pinned_net(11);
        twin.run_to_fixpoint().unwrap();
        assert_eq!(a, twin.fingerprint());
    }

    #[test]
    fn fingerprint_separates_different_states() {
        let mut net = pinned_net(11);
        net.run_to_fixpoint().unwrap();
        let configured = net.fingerprint();

        let fresh = pinned_net(11);
        assert_ne!(fresh.fingerprint(), configured, "bootup vs configured");

        let mut other_seed = pinned_net(12);
        other_seed.run_to_fixpoint().unwrap();
        assert_ne!(
            other_seed.fingerprint(),
            configured,
            "diverged RNG streams must not merge"
        );

        let mut crashed = net.clone();
        let big = crashed.big_id();
        let victim = crashed
            .engine()
            .alive_ids()
            .find(|id| *id != big)
            .expect("a small node exists");
        crashed.engine_mut().kill(victim).unwrap();
        assert_ne!(crashed.fingerprint(), net.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_rigid_time_shift() {
        // Two copies of a quiescent network run to different absolute
        // times have identical future behavior; the fingerprint must
        // agree. (While events are pending the clock offset *does* show
        // up — as changed event delays and state ages — so this only
        // holds at quiescence, which is exactly the normalization the
        // model checker needs for its terminal states.)
        let mut net = pinned_net(13);
        net.run_to_fixpoint().unwrap();
        let mut later = net.clone();
        if !later.engine().is_quiescent() {
            // The protocol keeps heartbeating forever; a truly quiescent
            // state needs the run to have drained, which run_to_fixpoint
            // does not guarantee. In that case the shifted copy advances
            // through real events and the states legitimately differ —
            // nothing to assert. Only the drained case is checked.
            return;
        }
        let now = later.engine().now();
        later.engine_mut().run_until(now + SimDuration::from_secs(50));
        assert_eq!(net.fingerprint(), later.fingerprint());
    }
}
