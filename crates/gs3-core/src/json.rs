//! A minimal dependency-free JSON reader.
//!
//! The workspace writes JSON by hand (string concatenation with escaping —
//! see [`crate::chaos::ChaosReport::to_json`]) because a serde dependency
//! would be heavier than the handful of report shapes justify. Reading
//! JSON back, however, needs a real parser: `gs3 chaos --plan FILE` and
//! the model checker's counterexample fixtures both round-trip
//! [`crate::chaos::FaultPlan`] through disk. This module is that parser —
//! a small recursive-descent reader producing a [`JsonValue`] tree.
//!
//! Numbers are kept **lossless** as their raw source text
//! ([`JsonValue::Num`] holds a `String`), converted on demand by
//! [`JsonValue::as_u64`] / [`JsonValue::as_f64`]. Combined with Rust's
//! shortest-round-trip `{:?}` float formatting on the writing side, a
//! plan serialized and re-parsed is structurally identical — the property
//! the counterexample-replay tests depend on.

use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw (already validated) source text.
    Num(String),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys are kept as-is; lookups
    /// return the first match).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as an `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This number as a `u64`, if it is a non-negative integer literal
    /// (no fraction, no exponent) in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This number as an `i64`, if it is an integer literal in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field slice, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// Human-readable description of the failure.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus optional surrounding
/// whitespace; trailing garbage is an error).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos past the digits; skip the
                            // generic advance below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number chars are ASCII")
            .to_string();
        Ok(JsonValue::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(parse("\"hi\\n\\\"there\\\"\"").unwrap().as_str(), Some("hi\n\"there\""));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": false}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(doc.get("c").unwrap().get("d").unwrap().as_bool(), Some(false));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn numbers_round_trip_losslessly() {
        // The raw text survives parsing even when f64 would lose digits.
        let doc = parse("18446744073709551615").unwrap();
        assert_eq!(doc, JsonValue::Num("18446744073709551615".to_string()));
        assert_eq!(doc.as_u64(), Some(u64::MAX));
        // Shortest-round-trip floats re-parse to the identical value.
        let v = 0.1f64 + 0.2f64;
        let doc = parse(&format!("{v:?}")).unwrap();
        assert_eq!(doc.as_f64(), Some(v));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"x", "01abc"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
